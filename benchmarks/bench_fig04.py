"""Fig. 4 — mean + frequency estimation on BR/MX-like mixed data."""

from _common import record_rows, run_once, series

from repro.experiments import fig04
from repro.experiments.runner import EstimationConfig

CONFIG = EstimationConfig(
    n=20_000, repeats=3, epsilons=(0.5, 1.0, 2.0, 4.0), seed=2019
)


def test_fig04(benchmark):
    rows = run_once(benchmark, lambda: fig04.run(CONFIG))
    data = series(rows)

    for ds in ("BR", "MX"):
        for eps in CONFIG.epsilons:
            numeric = {
                m: data[f"{ds}-numeric/{m}"][eps]
                for m in ("laplace", "scdf", "staircase", "duchi", "pm", "hm")
            }
            # Panels (a)/(b): the proposed collectors beat every baseline.
            assert max(numeric["pm"], numeric["hm"]) < min(
                numeric["laplace"], numeric["scdf"],
                numeric["staircase"], numeric["duchi"],
            )
            # Panels (c)/(d): proposed beats per-attribute OUE splitting.
            assert (
                data[f"{ds}-categorical/hm"][eps]
                < data[f"{ds}-categorical/oue-split"][eps]
            )
        # MSE decreases with eps for the proposed solution.
        hm_curve = [data[f"{ds}-numeric/hm"][e] for e in CONFIG.epsilons]
        assert hm_curve[-1] < hm_curve[0]

    record_rows(
        "fig04",
        rows,
        f"Fig. 4: estimation MSE on BR/MX-like data (n={CONFIG.n}, "
        f"{CONFIG.repeats} repeats)",
    )
