"""Sharded encode+absorb throughput through the parallel runtime.

For each workload the same :class:`repro.runtime.ShardPlan` is executed

* serially (the 1-worker baseline),
* on a 4-worker thread pool, and
* on a 4-worker process pool,

and the script records reports/second, the speedups over the serial
baseline, and — the runtime's core guarantee — that every parallel run
reproduces the serial run's estimates (bitwise for the count-based
frequency protocol; float sums are also bitwise because merge order is
fixed by shard index).  A second section times the OLH support-count
hot path (vectorized in this change set) against the per-value loop it
replaced.

Results land in a JSON whose committed baseline is
``benchmarks/results/sharded_throughput_baseline.json``; CI runs
``--smoke`` on every push and uploads the JSON as an artifact so the
throughput trajectory accumulates.

Run:  PYTHONPATH=src python benchmarks/bench_sharded_throughput.py
      PYTHONPATH=src python benchmarks/bench_sharded_throughput.py --smoke

Note: the ≥2x speedup target at 4 workers requires >= 2 physical CPUs;
on fewer the script still verifies bitwise equivalence, records the
actual numbers and flags the hardware limit instead of failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.frequency.olh import OptimizedLocalHashing  # noqa: E402
from repro.protocol import Protocol  # noqa: E402
from repro.runtime import ParallelRunner, ShardPlan  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "sharded_throughput_baseline.json"

NUM_SHARDS = 8
WORKERS = 4
SEED = 2019
TARGET_SPEEDUP = 2.0


def _workloads(n: int):
    rng = np.random.default_rng(0)
    return {
        "frequency-oue": {
            "protocol": Protocol.frequency(1.0, domain=32),
            "values": rng.integers(0, 32, n),
            "count_based": True,
        },
        "multidim-hm": {
            "protocol": Protocol.multidim(4.0, d=8, mechanism="hm"),
            "values": rng.uniform(-1, 1, (n, 8)),
            "count_based": False,
        },
    }


def _estimate_array(estimate):
    return np.atleast_1d(np.asarray(estimate, dtype=float))


def _timed_run(runner, protocol, values, plan, repeats: int):
    best, estimate = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        acc = runner.run(protocol, values, plan)
        best = min(best, time.perf_counter() - start)
        estimate = _estimate_array(acc.estimate())
    return best, estimate


def bench_workloads(n: int, batch_size: int, repeats: int) -> dict:
    plan = ShardPlan(n=n, num_shards=NUM_SHARDS, seed=SEED,
                     batch_size=batch_size)
    out = {}
    for name, spec in _workloads(n).items():
        protocol, values = spec["protocol"], spec["values"]
        serial_s, reference = _timed_run(
            ParallelRunner("serial"), protocol, values, plan, repeats
        )
        entry = {
            "count_based": spec["count_based"],
            "serial": {
                "seconds": serial_s,
                "reports_per_second": n / serial_s,
            },
        }
        for executor in ("thread", "process"):
            seconds, estimate = _timed_run(
                ParallelRunner(executor, max_workers=WORKERS),
                protocol, values, plan, repeats,
            )
            bitwise = bool(np.array_equal(estimate, reference))
            entry[f"{executor}_{WORKERS}workers"] = {
                "seconds": seconds,
                "reports_per_second": n / seconds,
                "speedup_vs_serial": serial_s / seconds,
                "bitwise_equal_to_serial": bitwise,
            }
            if not bitwise:
                raise AssertionError(
                    f"{name}/{executor}: parallel estimates diverged from "
                    "the serial run of the same plan"
                )
        entry["speedup_at_4_workers"] = max(
            entry[f"{e}_{WORKERS}workers"]["speedup_vs_serial"]
            for e in ("thread", "process")
        )
        out[name] = entry
    return {"plan": plan.to_dict(), "workloads": out}


def bench_olh_hot_path(n: int, k: int, repeats: int) -> dict:
    """Vectorized support counting vs the per-value loop it replaced."""
    oracle = OptimizedLocalHashing(1.0, k=k)
    rng = np.random.default_rng(1)
    reports = oracle.privatize(rng.integers(0, k, n), rng)

    def loop_counts():
        counts = np.empty(oracle.k)
        for v in range(oracle.k):
            hashed_v = oracle._hash(
                reports.seeds, np.full(len(reports), v, dtype=np.int64)
            )
            counts[v] = float(np.count_nonzero(hashed_v == reports.buckets))
        return counts

    def best_of(fn):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    loop_s, loop_counts_out = best_of(loop_counts)
    vec_s, vec_counts_out = best_of(lambda: oracle.support_counts(reports))
    if not np.array_equal(loop_counts_out, vec_counts_out):
        raise AssertionError("vectorized OLH support counts diverged")
    return {
        "n_reports": n,
        "domain": k,
        "loop_seconds": loop_s,
        "vectorized_seconds": vec_s,
        "speedup": loop_s / vec_s,
        "bitwise_equal": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1_200_000,
                        help="reports per workload (default 1.2M)")
    parser.add_argument("--batch-size", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats; best-of is recorded")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (n=60k, 1 repeat)")
    parser.add_argument("--out", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    n = 60_000 if args.smoke else args.n
    repeats = 1 if args.smoke else args.repeats
    cpus = os.cpu_count() or 1

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "n_reports": n,
        "num_shards": NUM_SHARDS,
        "workers": WORKERS,
        "cpu_count": cpus,
        **bench_workloads(n, args.batch_size, repeats),
        "olh_support_hot_path": bench_olh_hot_path(
            30_000 if args.smoke else 300_000, 64, repeats
        ),
    }

    speedups = {
        name: entry["speedup_at_4_workers"]
        for name, entry in payload["workloads"].items()
    }
    target_met = all(s >= TARGET_SPEEDUP for s in speedups.values())
    payload["target"] = {
        "required_speedup_at_4_workers": TARGET_SPEEDUP,
        "measured": speedups,
        "met": target_met,
        "note": (
            "met on this hardware"
            if target_met
            else (
                f"only {cpus} CPU(s) visible to this run; a 4-worker "
                "process pool cannot exceed 1x on CPU-bound encoding — "
                "correctness (bitwise equality across executors) is "
                "verified above, throughput scaling requires >= "
                f"{int(TARGET_SPEEDUP)} cores"
                if cpus < 2
                else "not met — investigate scheduling/pickling overhead"
            )
        ),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["target"], indent=2))
    print(f"wrote {args.out}")
    if not target_met and cpus >= 2 and not args.smoke:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
