"""Table I — regenerate the worst-case variance regime table."""

from _common import record, run_once

from repro.experiments import table1


def test_table1(benchmark):
    checks = run_once(benchmark, table1.run)

    # Every predicted ordering must hold, in every regime.
    assert all(check.holds for check in checks)
    # All five d = 1 regimes and the d > 1 block are covered.
    regimes = {check.regime for check in checks}
    assert regimes == {
        "eps > eps#",
        "eps = eps#",
        "eps* < eps < eps#",
        "0 < eps <= eps*",
        "d > 1",
    }

    lines = [
        f"{c.regime:<20} d={c.d:<3} eps={c.epsilon:<8.4f} "
        f"HM={c.var_hm:<12.5f} PM={c.var_pm:<12.5f} Du={c.var_duchi:<12.5f} "
        f"{c.expected}"
        for c in checks
    ]
    record("table1", "Table I regime verification\n" + "\n".join(lines))
