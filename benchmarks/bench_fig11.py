"""Fig. 11 — linear regression MSE vs eps."""

from _common import record_rows, run_once, series

from repro.experiments import fig11
from repro.experiments.erm import ERMConfig

CONFIG = ERMConfig(
    n=20_000, folds=3, repeats=1, epsilons=(0.5, 1.0, 2.0, 4.0), seed=2019
)


def test_fig11(benchmark):
    rows = run_once(benchmark, lambda: fig11.run(CONFIG))
    data = series(rows)

    for ds in ("BR", "MX"):
        non_private = data[f"{ds}/non-private"][4.0]
        hm_curve = [data[f"{ds}/hm"][e] for e in CONFIG.epsilons]
        pm_curve = [data[f"{ds}/pm"][e] for e in CONFIG.epsilons]
        # MSE decreases with the privacy budget for the proposed methods.
        assert hm_curve[-1] < hm_curve[0]
        assert pm_curve[-1] < pm_curve[0]
        # Proposed methods approach the non-private MSE at eps = 4...
        assert hm_curve[-1] < 3.0 * max(non_private, 1e-3)
        # ...and beat the Laplace baseline (paper omits it: off the chart).
        for eps in CONFIG.epsilons:
            assert data[f"{ds}/hm"][eps] < data[f"{ds}/laplace"][eps]

    record_rows(
        "fig11",
        rows,
        f"Fig. 11: linear regression MSE (n={CONFIG.n}, "
        f"{CONFIG.folds}-fold CV)",
        value_format="{:.4f}",
    )
