"""Fig. 2 — PM output density shape for t in {0, 0.5, 1}."""

import numpy as np
from _common import record, run_once

from repro.core import PiecewiseMechanism
from repro.experiments import fig02
from repro.experiments.results import format_table


def test_fig02(benchmark):
    epsilon = 1.0
    rows = run_once(benchmark, lambda: fig02.run(epsilon, grid_size=13))
    pm = PiecewiseMechanism(epsilon)

    # Shape assertions mirroring the paper's three panels:
    # (a) t = 0: symmetric density, plateau centered at 0.
    assert float(pm.left(0.0)) == -float(pm.right(0.0))
    # (b) t = 0.5: plateau strictly inside, both wings present.
    assert -pm.c < float(pm.left(0.5)) < float(pm.right(0.5)) < pm.c
    # (c) t = 1: right wing vanished — plateau ends exactly at C.
    assert float(pm.right(1.0)) == pm.c

    # Every sampled density is one of the two levels (or 0 outside).
    levels = {round(pm.p, 12), round(pm.p / np.exp(epsilon), 12), 0.0}
    for row in rows:
        assert round(row.value, 12) in levels

    record(
        "fig02",
        f"Fig. 2: PM pdf at eps={epsilon} (C={pm.c:.4f}, p={pm.p:.4f})\n"
        + format_table(rows, x_label="x", value_format="{:.4f}"),
    )


def test_fig02_sampling_histogram(benchmark):
    """Empirical histogram of PM samples reproduces the step shape."""
    pm = PiecewiseMechanism(1.0)
    t = 0.5

    def sample():
        return pm.privatize(np.full(200_000, t), 42)

    out = run_once(benchmark, sample)
    hist, edges = np.histogram(
        out, bins=np.linspace(-pm.c, pm.c, 41), density=True
    )
    centers = (edges[:-1] + edges[1:]) / 2.0
    want = pm.pdf(centers, t)
    keep = (np.abs(centers - float(pm.left(t))) > 0.2) & (
        np.abs(centers - float(pm.right(t))) > 0.2
    )
    assert np.allclose(hist[keep], want[keep], atol=0.02)
