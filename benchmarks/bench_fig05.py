"""Fig. 5 — 16-dim truncated Gaussian data, mu in {0, 1/3, 2/3, 1}."""

from _common import record_rows, run_once, series

from repro.experiments import fig05
from repro.experiments.runner import EstimationConfig

CONFIG = EstimationConfig(
    n=20_000, repeats=3, epsilons=(0.5, 1.0, 2.0, 4.0), seed=2019
)


def test_fig05(benchmark):
    rows = run_once(benchmark, lambda: fig05.run(CONFIG))
    data = series(rows)

    for mu in (0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0):
        prefix = f"mu={mu:.2f}"
        for eps in CONFIG.epsilons:
            pm = data[f"{prefix}/pm"][eps]
            hm = data[f"{prefix}/hm"][eps]
            duchi = data[f"{prefix}/duchi"][eps]
            laplace = data[f"{prefix}/laplace"][eps]
            # PM and HM beat Duchi in all settings (paper, Fig. 5), and
            # everything beats eps/d Laplace splitting.
            assert max(pm, hm) < duchi < laplace

    record_rows(
        "fig05",
        rows,
        f"Fig. 5: MSE on 16-dim truncated Gaussians (n={CONFIG.n})",
    )
