"""Shared plumbing for the benchmark harness.

Every bench regenerates one of the paper's tables/figures at a
laptop-sized configuration, records the rendered table under
``benchmarks/results/`` (the inputs to EXPERIMENTS.md), asserts the
paper's qualitative *shape* (who wins, where crossovers fall) and times
the run via pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.experiments.results import Row, format_table, rows_to_series

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Persist a rendered results table for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_rows(
    name: str,
    rows: Sequence[Row],
    title: str,
    x_label: str = "eps",
    value_format: str = "{:.3e}",
) -> None:
    """Render + persist a row set."""
    record(name, format_table(rows, title=title, x_label=x_label,
                              value_format=value_format))


def series(rows: Sequence[Row]):
    """Shortcut for rows_to_series."""
    return rows_to_series(rows)


def run_once(benchmark, fn):
    """Time a single execution of an experiment (they are too slow for
    pytest-benchmark's default calibration loop)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
