"""Old collect() path vs new protocol absorb() path.

Measures, for the Algorithm 4 multidimensional protocol:

* reports/second through the legacy monolithic ``collect()`` (dense
  (n, d) submissions, one-shot aggregation), and
* reports/second through the protocol path (compact
  ``SampledNumericReports`` encoding, batched ``absorb()`` into a
  mergeable accumulator),

plus the peak traced allocation of each path (the protocol path holds
one batch at a time; the legacy path materializes all n dense rows).
The measurements are recorded to
``benchmarks/results/protocol_throughput_baseline.json`` so later PRs
can diff against this PR's baseline.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_protocol_throughput.py -q
"""

import json
import tracemalloc
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.multidim import MultidimNumericCollector
from repro.protocol import Protocol
from repro.runtime import run_inline

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "protocol_throughput_baseline.json"

N = 50_000
D = 16
EPSILON = 4.0
BATCH = 5_000
TUPLES = np.random.default_rng(0).uniform(-1, 1, (N, D))

#: Measurements accumulated by the benchmarks, written by the last test.
_RESULTS = {}


def _legacy_collect():
    collector = MultidimNumericCollector(EPSILON, D, "hm")
    rng = np.random.default_rng(1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return collector.collect(TUPLES, rng)


def _protocol_absorb():
    # The runtime's inline path: batched encode_batch/absorb with one
    # accumulator, identical stream consumption to the manual loop.
    protocol = Protocol.multidim(EPSILON, d=D, mechanism="hm")
    rng = np.random.default_rng(1)
    return run_inline(protocol, TUPLES, rng, batch_size=BATCH).estimate()


_PATHS = {
    "legacy_collect": _legacy_collect,
    "protocol_absorb": _protocol_absorb,
}


@pytest.mark.parametrize("path", sorted(_PATHS))
def test_throughput(benchmark, path):
    fn = _PATHS[path]
    estimates = benchmark(fn)
    assert estimates.shape == (D,)

    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    mean_seconds = benchmark.stats.stats.mean
    _RESULTS[path] = {
        "reports_per_second": N / mean_seconds,
        "mean_seconds": mean_seconds,
        "peak_traced_bytes": int(peak),
    }


def test_record_baseline():
    """Runs after the parametrized benchmarks (pytest preserves file order)."""
    if len(_RESULTS) != len(_PATHS):  # pragma: no cover - partial runs
        pytest.skip("benchmarks did not run; nothing to record")
    payload = {
        "n_reports": N,
        "d": D,
        "epsilon": EPSILON,
        "batch_size": BATCH,
        "paths": _RESULTS,
        "speedup_protocol_over_legacy": (
            _RESULTS["protocol_absorb"]["reports_per_second"]
            / _RESULTS["legacy_collect"]["reports_per_second"]
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    # The protocol path streams batches; it must never hold the full
    # dense (n, d) matrix the legacy path materializes.
    assert (
        _RESULTS["protocol_absorb"]["peak_traced_bytes"]
        < _RESULTS["legacy_collect"]["peak_traced_bytes"]
    )
