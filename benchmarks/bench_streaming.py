"""Streaming-path cost: windowed panes and memoized re-reports.

Two questions, each answered against the live networked service:

1. **What does windowing cost?**  The same pre-encoded report stream is
   ingested twice — once into a plain all-time campaign, once into a
   windowed campaign with per-round pane routing — and the sustained
   rate is compared.  The pane ring buys sliding-window and decayed
   estimates; the contract is that it costs **<= 15%** of plain ingest
   throughput (asserted on full runs; smoke runs record the ratio).
   Correctness rides along: the windowed campaign's sliding-window
   estimate must be bitwise-equal to a fresh accumulator absorbing only
   the in-window rounds' reports, and its all-time estimate must match
   the plain campaign's.

2. **What does an unchanged round cost?**  A memoizing fleet submits
   the same values for two consecutive rounds.  Round 1 perturbs and
   pays; round 2 replays cached reports — the asserted contract is
   **zero** additional epsilon across the entire ledger and zero cache
   misses, with the wall-clock ratio recorded (replay skips the
   perturbation work, so it should not be slower).

Results land in a JSON whose committed baseline is
``benchmarks/results/streaming_baseline.json``; CI runs ``--smoke`` on
every push and uploads the JSON as an artifact.

Run:  PYTHONPATH=src python benchmarks/bench_streaming.py
      PYTHONPATH=src python benchmarks/bench_streaming.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.protocol import Protocol  # noqa: E402
from repro.service import IngestionServer, ServiceClient  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "streaming_baseline.json"

DOMAIN = 32
EPSILON = 1.0
ROUNDS = 5
PANES = 4
SEED = 2019

#: Windowed ingest may cost at most this fraction over plain ingest.
MAX_WINDOW_OVERHEAD = 1.15


def _round_batches(protocol, n, batch_size):
    """Per-round pre-encoded (reports, users) chunks, deterministic."""
    rng = np.random.default_rng(0)
    encoder = protocol.client()
    rounds = []
    for r in range(ROUNDS):
        values = rng.integers(0, DOMAIN, n)
        chunks = []
        for i, lo in enumerate(range(0, n, batch_size)):
            chunk = values[lo : lo + batch_size]
            chunks.append(
                (
                    encoder.encode_batch(
                        chunk, np.random.default_rng(SEED + 100 * r + i)
                    ),
                    [f"r{r}-u{lo + j}" for j in range(len(chunk))],
                )
            )
        rounds.append(chunks)
    return rounds


def _ingest(protocol, rounds, window=None):
    """Time the full submission path; return (seconds, client, server)."""
    server = IngestionServer(protocol, window=window).run_in_thread()
    client = ServiceClient("127.0.0.1", server.port)
    client.fetch_spec()  # outside the timed window
    start = time.perf_counter()
    for r, chunks in enumerate(rounds):
        round_ = r if window is not None else None
        for reports, users in chunks:
            client.submit_reports(reports, users, round=round_)
    elapsed = time.perf_counter() - start
    return elapsed, client, server


def bench_windowed_overhead(n, batch_size, smoke) -> dict:
    protocol = Protocol.frequency(EPSILON, domain=DOMAIN)
    rounds = _round_batches(protocol, n, batch_size)
    total = n * ROUNDS

    plain_s, plain_client, plain_server = _ingest(protocol, rounds)
    windowed_s, windowed_client, windowed_server = _ingest(
        protocol, rounds, window={"panes": PANES}
    )
    try:
        # Correctness before speed: the sliding window must be bitwise
        # what recomputing from only the in-window rounds gives...
        in_window = protocol.server()
        for chunks in rounds[ROUNDS - PANES :]:
            for reports, _ in chunks:
                in_window.absorb(reports)
        served = np.asarray(windowed_client.estimate(window=PANES))
        if not np.array_equal(served, np.asarray(in_window.estimate())):
            raise AssertionError(
                "windowed estimate diverged from recomputation over "
                "in-window reports"
            )
        # ...and evicted panes must still count toward all-time.
        all_time = np.asarray(windowed_client.estimate())
        if not np.array_equal(all_time, np.asarray(plain_client.estimate())):
            raise AssertionError(
                "windowed all-time estimate diverged from the plain "
                "campaign's"
            )
    finally:
        plain_server.stop()
        windowed_server.stop()

    overhead = windowed_s / plain_s
    if not smoke and overhead > MAX_WINDOW_OVERHEAD:
        raise AssertionError(
            f"windowed ingest overhead {overhead:.3f}x exceeds the "
            f"{MAX_WINDOW_OVERHEAD:.2f}x contract"
        )
    print(
        f"{'windowed-ingest':>16}: {total / plain_s:>10.0f} reports/s "
        f"plain, {total / windowed_s:>10.0f} reports/s windowed "
        f"[{overhead:.3f}x overhead, bitwise ok]"
    )
    return {
        "rounds": ROUNDS,
        "panes": PANES,
        "total_reports": total,
        "bitwise_equal_to_recomputation": True,
        "plain": {
            "seconds": plain_s,
            "reports_per_second": total / plain_s,
        },
        "windowed": {
            "seconds": windowed_s,
            "reports_per_second": total / windowed_s,
            "overhead_vs_plain": overhead,
            "max_overhead_contract": MAX_WINDOW_OVERHEAD,
        },
    }


def bench_memoization(n, batch_size) -> dict:
    protocol = Protocol.frequency(EPSILON, domain=DOMAIN)
    server = IngestionServer(
        protocol,
        lifetime_epsilon=EPSILON * (ROUNDS + 1),
        window={"panes": PANES},
    ).run_in_thread()
    try:
        client = ServiceClient("127.0.0.1", server.port, memoize=True)
        client.fetch_spec()
        values = np.random.default_rng(7).integers(0, DOMAIN, n)
        users = [f"u{i}" for i in range(n)]
        chunks = [
            (values[lo : lo + batch_size], users[lo : lo + batch_size])
            for lo in range(0, n, batch_size)
        ]

        def _round(r):
            start = time.perf_counter()
            for i, (chunk, chunk_users) in enumerate(chunks):
                client.submit(
                    chunk, users=chunk_users, rng=SEED + 10 * r + i, round=r
                )
            return time.perf_counter() - start

        round1_s = _round(0)
        spent_round1 = sum(server.ledger.spent(u) for u in users)
        round2_s = _round(1)
        spent_round2 = sum(server.ledger.spent(u) for u in users)

        epsilon_delta = spent_round2 - spent_round1
        if epsilon_delta != 0.0:
            raise AssertionError(
                f"memoized round 2 charged {epsilon_delta:g} epsilon; "
                f"the contract is exactly zero"
            )
        if client.encoder.misses != n or client.encoder.hits != n:
            raise AssertionError(
                f"expected {n} misses then {n} hits, got "
                f"{client.encoder.misses}/{client.encoder.hits}"
            )
    finally:
        server.stop()

    print(
        f"{'memoized-rounds':>16}: {n / round1_s:>10.0f} reports/s fresh, "
        f"{n / round2_s:>10.0f} reports/s replayed "
        f"[round-2 epsilon cost: 0, {round2_s / round1_s:.3f}x time]"
    )
    return {
        "n": n,
        "round1_fresh": {
            "seconds": round1_s,
            "reports_per_second": n / round1_s,
            "epsilon_charged": spent_round1,
        },
        "round2_replayed": {
            "seconds": round2_s,
            "reports_per_second": n / round2_s,
            "epsilon_charged_delta": epsilon_delta,
            "time_vs_round1": round2_s / round1_s,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small n for CI (correctness + trajectory, not peak rate; "
        "the overhead contract is recorded but not asserted)",
    )
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--out", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (4_000 if args.smoke else 40_000)
    batch_size = min(2_000, n)
    results = {
        "benchmark": "streaming",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "batch_size": batch_size,
        "windowed_overhead": bench_windowed_overhead(
            n, batch_size, args.smoke
        ),
        "memoization": bench_memoization(n, batch_size),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
