"""Ablation — LDP-SGD group size |G| (Section V's discussion).

Section V argues each iteration needs |G| = Omega(d log d / eps^2) users
for the average noisy gradient to be useful; too-large groups waste the
user budget on too few iterations.  Sweep |G| and check the interior
optimum beats both extremes.
"""

import numpy as np
from _common import record, run_once

from repro.data import make_br_like
from repro.data.census import INCOME
from repro.experiments.results import Row, format_table
from repro.sgd import LinearRegression

GROUP_SIZES = (25, 100, 400, 1_600, 6_400)
N = 16_000
EPS = 2.0


def _sweep():
    dataset = make_br_like(N, rng=19)
    x, y = dataset.to_erm_features(INCOME)
    rows = []
    for group in GROUP_SIZES:
        scores = []
        for seed in (1, 2, 3):
            model = LinearRegression(
                epsilon=EPS, method="hm", group_size=group
            ).fit(x, y, seed)
            scores.append(model.score(x, y))
        rows.append(
            Row("ablation_group", f"eps={EPS:g}", float(group),
                float(np.mean(scores)))
        )
    return rows


def test_ablation_group_size(benchmark):
    rows = run_once(benchmark, _sweep)
    curve = {row.x: row.value for row in rows}

    best = min(curve.values())
    # Sanity: every setting produces a finite, bounded-error model.
    assert all(np.isfinite(v) for v in curve.values())
    # Tiny groups drown in gradient noise: the best configuration must
    # clearly beat the smallest group.
    assert best < curve[float(GROUP_SIZES[0])]

    record(
        "ablation_group_size",
        format_table(
            rows,
            title=(
                f"Ablation: linear-regression MSE vs SGD group size "
                f"(BR-like, n={N}, eps={EPS})"
            ),
            x_label="|G|",
            value_format="{:.4f}",
        ),
    )
