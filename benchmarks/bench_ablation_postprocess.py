"""Ablation — post-processing of frequency estimates.

Compares raw debiased OUE estimates against the three simplex
projections at several budgets.  Expected: projections never hurt, and
the exact projections (norm-sub / least-squares) help substantially at
small eps where negative cells are common.
"""

import numpy as np
from _common import record, run_once

from repro.experiments.results import Row, format_table
from repro.frequency import OptimizedUnaryEncoding, true_frequencies
from repro.frequency.postprocess import postprocess
from repro.utils.rng import spawn_rngs

K = 16
N = 8_000
EPSILONS = (0.25, 0.5, 1.0, 2.0, 4.0)
METHODS = ("none", "clip", "norm-sub", "least-squares")
REPEATS = 5


def _sweep():
    gen = np.random.default_rng(31)
    probs = np.arange(K, 0, -1, dtype=float) ** 2
    probs /= probs.sum()
    values = gen.choice(K, size=N, p=probs)
    truth = true_frequencies(values, K)

    rows = []
    for eps in EPSILONS:
        oracle = OptimizedUnaryEncoding(eps, K)
        per_method = {m: [] for m in METHODS}
        for child in spawn_rngs(37, REPEATS):
            raw = oracle.estimate_frequencies(oracle.privatize(values, child))
            for method in METHODS:
                estimate = postprocess(raw, method)
                per_method[method].append(
                    float(np.mean((estimate - truth) ** 2))
                )
        for method in METHODS:
            rows.append(
                Row("postprocess", method, eps,
                    float(np.mean(per_method[method])))
            )
    return rows


def test_ablation_postprocess(benchmark):
    rows = run_once(benchmark, _sweep)
    data = {}
    for row in rows:
        data.setdefault(row.series, {})[row.x] = row.value

    for eps in EPSILONS:
        raw = data["none"][eps]
        # Exact projections never hurt (projection onto a convex set
        # containing the truth) — allow a float whisker.
        assert data["norm-sub"][eps] <= raw * 1.001
        assert data["least-squares"][eps] <= raw * 1.001

    # At the smallest budget the projections cut MSE by a large factor.
    assert data["least-squares"][0.25] < 0.6 * data["none"][0.25]
    assert data["norm-sub"][0.25] < 0.6 * data["none"][0.25]

    record(
        "ablation_postprocess",
        format_table(
            rows,
            title=(
                f"Ablation: frequency-estimate MSE by post-processing "
                f"(OUE, k={K}, n={N})"
            ),
        ),
    )
