"""Fig. 8 — estimation accuracy vs dimensionality (MX-like data)."""

from _common import record_rows, run_once, series

from repro.experiments import fig08
from repro.experiments.runner import EstimationConfig

CONFIG = EstimationConfig(n=25_000, repeats=3, seed=2019)
DIMENSIONS = (5, 10, 15, 19)


def test_fig08(benchmark):
    rows = run_once(
        benchmark, lambda: fig08.run(CONFIG, dimensions=DIMENSIONS, epsilon=1.0)
    )
    data = series(rows)

    lowest, highest = float(DIMENSIONS[0]), float(DIMENSIONS[-1])
    for d in (float(x) for x in DIMENSIONS):
        # Proposed beats the composition baselines at every d.
        assert data["numeric/hm"][d] < data["numeric/laplace"][d]
        assert data["categorical/hm"][d] < data["categorical/oue-split"][d]

    # Higher dimensionality hurts the eps/d-splitting baseline...
    assert data["numeric/laplace"][highest] > data["numeric/laplace"][lowest]
    # ...and the proposed collector keeps a large multiple of headroom at
    # every d.  (The exact gap trend is confounded here because the
    # numeric/categorical mix changes as the MX schema is truncated, so
    # we assert the paper's robust conclusion — a wide gap throughout —
    # rather than strict monotonic widening.)
    for d in (float(x) for x in DIMENSIONS):
        assert data["numeric/laplace"][d] > 3.0 * data["numeric/hm"][d]

    record_rows(
        "fig08",
        rows,
        f"Fig. 8: MSE vs dimensionality (MX-like, eps=1, n={CONFIG.n})",
        x_label="d",
    )
