"""Sustained ingest throughput through the networked service path.

For each workload the script boots a real :class:`IngestionServer` on
localhost, pre-encodes report batches client-side, and times the full
submission path — wire encoding, HTTP, envelope validation, budget
charging, absorption — recording sustained reports/second.  Each
workload runs twice: without durability, and with a snapshot store
checkpointing every ``CHECKPOINT_EVERY`` batches, so the cost of
crash-safety is a number, not a guess.  Correctness is asserted along
the way: the served ``/estimate`` must be bitwise-equal to absorbing
the same reports locally.

Results land in a JSON whose committed baseline is
``benchmarks/results/service_ingest_baseline.json``; CI runs
``--smoke`` on every push and uploads the JSON as an artifact.

Run:  PYTHONPATH=src python benchmarks/bench_service_ingest.py
      PYTHONPATH=src python benchmarks/bench_service_ingest.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.protocol import Protocol  # noqa: E402
from repro.service import (  # noqa: E402
    IngestionServer,
    ServiceClient,
    SnapshotStore,
    wire,
)

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "service_ingest_baseline.json"

BATCH_SIZE = 2_000
CHECKPOINT_EVERY = 10
SHARDS = 4
SEED = 2019


def _workloads(n: int):
    rng = np.random.default_rng(0)
    return {
        "frequency-oue": {
            "protocol": Protocol.frequency(1.0, domain=32),
            "values": rng.integers(0, 32, n),
        },
        "multidim-hm": {
            "protocol": Protocol.multidim(4.0, d=8, mechanism="hm"),
            "values": rng.uniform(-1, 1, (n, 8)),
        },
    }


def _estimate_array(estimate):
    return np.atleast_1d(np.asarray(estimate, dtype=float))


def _encode_batches(protocol, values, n):
    encoder = protocol.client()
    batches = []
    for i, lo in enumerate(range(0, n, BATCH_SIZE)):
        chunk = values[lo : lo + BATCH_SIZE]
        batches.append(
            (
                encoder.encode_batch(chunk, np.random.default_rng(SEED + i)),
                [f"u{lo + j}" for j in range(len(chunk))],
            )
        )
    return batches


def _run_ingest(
    protocol,
    batches,
    store=None,
    checkpoint_every=None,
    wire_version=None,
    shards=1,
    instrument=True,
):
    server = IngestionServer(
        protocol,
        store=store,
        checkpoint_every=checkpoint_every,
        shards=shards,
        instrument=instrument,
    ).run_in_thread()
    try:
        client = ServiceClient(
            "127.0.0.1", server.port, wire_version=wire_version
        )
        client.fetch_spec()  # outside the timed window
        if wire_version is not None:
            assert client.negotiated_wire_version == wire_version
        start = time.perf_counter()
        for reports, users in batches:
            client.submit_reports(reports, users)
        elapsed = time.perf_counter() - start
        estimate = _estimate_array(client.estimate())
    finally:
        server.stop()
    return elapsed, estimate


def _check_estimate(name, run, estimate, reference, sharded=False):
    """Bitwise against the local reference absorb; a sharded run of a
    float-summing protocol legitimately folds in a different order, so
    it may only match to float tolerance."""
    if np.array_equal(estimate, reference):
        return "bitwise"
    if sharded and np.allclose(estimate, reference, rtol=1e-9, atol=1e-12):
        return "allclose"
    raise AssertionError(
        f"{name}/{run}: served estimate diverged from the local "
        f"reference absorb"
    )


def _run_multi_campaign(workloads, store=None, checkpoint_every=None):
    """All workloads on ONE server as concurrent campaigns, one client
    thread per campaign, over one shared user population."""
    protocols = [spec["protocol"] for spec in workloads.values()]
    lifetime = sum(p.spec.epsilon for p in protocols)
    server = IngestionServer(
        protocols[0],
        lifetime_epsilon=lifetime,
        campaigns=[p.spec for p in protocols[1:]],
        store=store,
        checkpoint_every=checkpoint_every,
    ).run_in_thread()
    try:
        base = ServiceClient("127.0.0.1", server.port)
        clients = {
            name: base.for_campaign(spec["protocol"].spec)
            for name, spec in workloads.items()
        }
        for client in clients.values():
            client.fetch_spec()  # outside the timed window
        errors = []

        def _pump(name):
            try:
                for reports, users in workloads[name]["batches"]:
                    clients[name].submit_reports(reports, users)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, exc))

        threads = [
            threading.Thread(target=_pump, args=(name,))
            for name in workloads
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise AssertionError(f"multi-campaign ingest failed: {errors}")
        estimates = {
            name: _estimate_array(client.estimate())
            for name, client in clients.items()
        }
    finally:
        server.stop()
    return elapsed, estimates


def bench_multi_campaign(workloads, n: int) -> dict:
    """Concurrent campaigns sharing one server and one global ledger."""
    references = {}
    for name, spec in workloads.items():
        reference = spec["protocol"].server()
        for reports, _ in spec["batches"]:
            reference.absorb(reports)
        references[name] = _estimate_array(reference.estimate())

    plain_s, plain_estimates = _run_multi_campaign(workloads)
    with tempfile.TemporaryDirectory() as tmp:
        durable_s, durable_estimates = _run_multi_campaign(
            workloads,
            store=SnapshotStore(tmp),
            checkpoint_every=CHECKPOINT_EVERY,
        )

    for name, reference in references.items():
        if not (
            np.array_equal(plain_estimates[name], reference)
            and np.array_equal(durable_estimates[name], reference)
        ):
            raise AssertionError(
                f"multi-campaign: campaign {name!r} diverged from its "
                f"single-campaign reference absorb"
            )

    total = n * len(workloads)
    print(
        f"{'multi-campaign':>16}: {total / plain_s:>10.0f} reports/s plain, "
        f"{total / durable_s:>10.0f} reports/s with checkpoints "
        f"every {CHECKPOINT_EVERY} batches "
        f"[{len(workloads)} campaigns, bitwise ok]"
    )
    return {
        "campaigns": sorted(workloads),
        # Clients negotiate: the whole multi-campaign fleet now rides v2.
        "wire_version": wire.WIRE_VERSION_COLUMNAR,
        "n_per_campaign": n,
        "total_reports": total,
        "batch_size": BATCH_SIZE,
        "bitwise_equal_to_local": True,
        "ingest": {
            "seconds": plain_s,
            "reports_per_second": total / plain_s,
        },
        "ingest_with_checkpoints": {
            "seconds": durable_s,
            "reports_per_second": total / durable_s,
            "checkpoint_every_batches": CHECKPOINT_EVERY,
            "overhead_vs_plain": durable_s / plain_s,
        },
    }


def bench_workloads(workloads, n: int) -> dict:
    out = {}
    for name, spec in workloads.items():
        protocol, batches = spec["protocol"], spec["batches"]

        reference = protocol.server()
        for reports, _ in batches:
            reference.absorb(reports)
        reference_estimate = _estimate_array(reference.estimate())

        plain_s, plain_estimate = _run_ingest(
            protocol, batches, wire_version=wire.WIRE_VERSION
        )
        with tempfile.TemporaryDirectory() as tmp:
            durable_s, durable_estimate = _run_ingest(
                protocol,
                batches,
                store=SnapshotStore(tmp),
                checkpoint_every=CHECKPOINT_EVERY,
                wire_version=wire.WIRE_VERSION,
            )
        v2_s, v2_estimate = _run_ingest(
            protocol, batches, wire_version=wire.WIRE_VERSION_COLUMNAR
        )
        bare_s, bare_estimate = _run_ingest(
            protocol,
            batches,
            wire_version=wire.WIRE_VERSION_COLUMNAR,
            instrument=False,
        )
        sharded_s, sharded_estimate = _run_ingest(
            protocol,
            batches,
            wire_version=wire.WIRE_VERSION_COLUMNAR,
            shards=SHARDS,
        )

        _check_estimate(name, "ingest", plain_estimate, reference_estimate)
        _check_estimate(
            name, "checkpoints", durable_estimate, reference_estimate
        )
        _check_estimate(
            name, "wire_v2", v2_estimate, reference_estimate
        )
        _check_estimate(
            name, "wire_v2_bare", bare_estimate, reference_estimate
        )
        sharded_check = _check_estimate(
            name,
            "wire_v2_sharded",
            sharded_estimate,
            reference_estimate,
            sharded=True,
        )
        out[name] = {
            "n": n,
            "batch_size": BATCH_SIZE,
            "batches": len(batches),
            "bitwise_equal_to_local": True,
            "ingest": {
                "seconds": plain_s,
                "reports_per_second": n / plain_s,
            },
            "ingest_with_checkpoints": {
                "seconds": durable_s,
                "reports_per_second": n / durable_s,
                "checkpoint_every_batches": CHECKPOINT_EVERY,
                "overhead_vs_plain": durable_s / plain_s,
            },
            "ingest_wire_v2": {
                "seconds": v2_s,
                "reports_per_second": n / v2_s,
                "speedup_vs_v1": plain_s / v2_s,
            },
            # The observability budget: identical v2 run with the
            # request-path instruments nulled out (instrument=False).
            # The ratio is what repro.obs costs on the hot path; the
            # contract is <= 1.05 on a full (non-smoke) run.
            "ingest_wire_v2_uninstrumented": {
                "seconds": bare_s,
                "reports_per_second": n / bare_s,
                "metrics_overhead_vs_uninstrumented": v2_s / bare_s,
            },
            "ingest_wire_v2_sharded": {
                "seconds": sharded_s,
                "reports_per_second": n / sharded_s,
                "shards": SHARDS,
                "speedup_vs_v1": plain_s / sharded_s,
                "estimate_check": sharded_check,
            },
        }
        print(
            f"{name:>16}: {n / plain_s:>10.0f} reports/s v1, "
            f"{n / durable_s:>10.0f} reports/s v1+checkpoints, "
            f"{n / v2_s:>10.0f} reports/s v2, "
            f"{n / sharded_s:>10.0f} reports/s v2+{SHARDS} shards "
            f"[{plain_s / v2_s:.2f}x v2 speedup, "
            f"{(v2_s / bare_s - 1) * 100:+.1f}% metrics overhead]"
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small n for CI (correctness + trajectory, not peak rate)",
    )
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--out", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (10_000 if args.smoke else 100_000)
    workloads = _workloads(n)
    for spec in workloads.values():
        spec["batches"] = _encode_batches(spec["protocol"], spec["values"], n)
    results = {
        "benchmark": "service_ingest",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "batch_size": BATCH_SIZE,
        "workloads": bench_workloads(workloads, n),
        "multi_campaign": bench_multi_campaign(workloads, n),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
