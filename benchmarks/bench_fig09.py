"""Fig. 9 — logistic regression misclassification rate vs eps."""

from _common import record_rows, run_once, series

from repro.experiments import fig09
from repro.experiments.erm import ERMConfig

CONFIG = ERMConfig(
    n=20_000, folds=3, repeats=1, epsilons=(0.5, 1.0, 2.0, 4.0), seed=2019
)


def test_fig09(benchmark):
    rows = run_once(benchmark, lambda: fig09.run(CONFIG))
    data = series(rows)

    for ds in ("BR", "MX"):
        non_private = data[f"{ds}/non-private"][4.0]
        # The non-private reference is the best achievable.
        for method in ("laplace", "duchi", "pm", "hm"):
            for eps in CONFIG.epsilons:
                assert data[f"{ds}/{method}"][eps] >= non_private - 0.02
        # At the largest eps the proposed methods are competitive with
        # Duchi and clearly below 50% (informative classifiers).
        hm4 = data[f"{ds}/hm"][4.0]
        assert hm4 < 0.5
        assert hm4 <= data[f"{ds}/duchi"][4.0] + 0.05
        # Laplace splitting trails the proposed methods at eps = 4.
        assert hm4 <= data[f"{ds}/laplace"][4.0] + 0.02

    record_rows(
        "fig09",
        rows,
        f"Fig. 9: logistic regression misclassification (n={CONFIG.n}, "
        f"{CONFIG.folds}-fold CV)",
        value_format="{:.4f}",
    )
