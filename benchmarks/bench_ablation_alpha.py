"""Ablation — HM's mixing weight alpha (Eq. 7 / Lemma 3).

Sweeps alpha over a grid and confirms the closed-form optimum
alpha = 1 - e^{-eps/2} minimizes the worst-case variance, analytically
and empirically.
"""

import numpy as np
import pytest
from _common import record, run_once

from repro.core import HybridMechanism
from repro.experiments.results import Row, format_table
from repro.theory.constants import hybrid_alpha
from repro.utils.rng import spawn_rngs

EPSILONS = (1.0, 2.0, 4.0)
ALPHAS = tuple(np.round(np.linspace(0.0, 1.0, 11), 2))
N = 40_000


def _sweep():
    rows = []
    for eps in EPSILONS:
        for alpha in ALPHAS:
            hm = HybridMechanism(eps, alpha=float(alpha))
            grid = np.linspace(-1, 1, 201)
            worst = float(np.max(hm.variance(grid)))
            rows.append(Row("ablation_alpha", f"eps={eps:g}", float(alpha), worst))
    return rows


def test_ablation_alpha(benchmark):
    rows = run_once(benchmark, _sweep)
    by_eps = {}
    for row in rows:
        by_eps.setdefault(row.series, {})[row.x] = row.value

    for eps in EPSILONS:
        curve = by_eps[f"eps={eps:g}"]
        optimal = HybridMechanism(eps).worst_case_variance()
        # No grid alpha does better than the Eq. 7 optimum.
        assert min(curve.values()) >= optimal - 1e-9
        # The grid point closest to the closed-form alpha is the argmin.
        best_alpha = min(curve, key=curve.get)
        assert abs(best_alpha - hybrid_alpha(eps)) <= 0.15

    record(
        "ablation_alpha",
        format_table(
            rows,
            title="Ablation: HM worst-case variance vs mixing weight alpha",
            x_label="alpha",
            value_format="{:.4f}",
        ),
    )


def test_ablation_alpha_empirical(benchmark):
    """Empirical check at one eps: the optimal alpha's sampled variance
    at the worst-case input matches Eq. 8 and beats alpha in {0, 1}."""
    eps = 2.0

    def measure():
        out = {}
        for alpha in (0.0, None, 1.0):  # None -> optimal
            hm = HybridMechanism(eps, alpha=alpha)
            worst_t = 0.0 if alpha in (0.0, None) else 1.0
            samples = [
                float(np.var(hm.privatize(np.full(N, worst_t), c)))
                for c in spawn_rngs(3, 2)
            ]
            key = "optimal" if alpha is None else f"alpha={alpha:g}"
            out[key] = float(np.mean(samples))
        return out

    measured = run_once(benchmark, measure)
    hm_opt = HybridMechanism(eps)
    assert measured["optimal"] == pytest.approx(
        hm_opt.worst_case_variance(), rel=0.1
    )
    assert measured["optimal"] < measured["alpha=0"]
