"""Mechanism throughput — values perturbed per second.

Not a paper artifact, but the number a deployment engineer asks first.
Uses pytest-benchmark's real calibration loop (these are fast,
repeatable operations, unlike the experiment harnesses).
"""

import numpy as np
import pytest

from repro.core import get_mechanism
from repro.frequency import get_oracle
from repro.multidim import MultidimNumericCollector

N = 100_000
VALUES = np.random.default_rng(0).uniform(-1, 1, N)
CATEGORICAL = np.random.default_rng(0).integers(0, 16, N)


@pytest.mark.parametrize(
    "name", ["laplace", "scdf", "staircase", "duchi", "pm", "hm"]
)
def test_mechanism_throughput(benchmark, name):
    mech = get_mechanism(name, 1.0)
    rng = np.random.default_rng(1)
    benchmark(mech.privatize, VALUES, rng)


@pytest.mark.parametrize("name", ["grr", "sue", "oue", "olh"])
def test_oracle_throughput(benchmark, name):
    oracle = get_oracle(name, 1.0, 16)
    rng = np.random.default_rng(1)
    benchmark(oracle.privatize, CATEGORICAL, rng)


def test_multidim_collector_throughput(benchmark):
    d = 16
    tuples = np.random.default_rng(0).uniform(-1, 1, (20_000, d))
    collector = MultidimNumericCollector(4.0, d, "hm")
    rng = np.random.default_rng(1)
    benchmark(collector.privatize, tuples, rng)


def test_duchi_multidim_throughput(benchmark):
    from repro.core import DuchiMultidimMechanism

    d = 16
    tuples = np.random.default_rng(0).uniform(-1, 1, (20_000, d))
    mech = DuchiMultidimMechanism(4.0, d)
    rng = np.random.default_rng(1)
    benchmark(mech.privatize, tuples, rng)
