"""Fig. 1 — worst-case noise variance vs eps (1-D mechanisms)."""

import numpy as np
from _common import record_rows, run_once, series

from repro.experiments import fig01
from repro.theory.constants import EPSILON_SHARP

EPSILONS = tuple(np.round(np.linspace(0.25, 8.0, 32), 3))


def test_fig01(benchmark):
    rows = run_once(benchmark, lambda: fig01.run(epsilons=EPSILONS))
    data = series(rows)

    for eps in EPSILONS:
        values = {name: data[name][eps] for name in data}
        # Corollary 1: HM is the lower envelope of the paper's Fig. 1
        # set {Laplace, Duchi, PM}.  (SCDF/Staircase — absent from the
        # paper's figure — can dip marginally below HM at large eps.)
        assert values["HM"] <= min(
            values["Laplace"], values["Duchi"], values["PM"]
        ) + 1e-12
        # Duchi's variance never drops below 1; Laplace's does for eps > ~2.8.
        assert values["Duchi"] > 1.0 or eps > 20
        # SCDF/Staircase behave like Laplace in the small-eps regime.
        if eps <= 2.0:
            assert values["SCDF"] > values["HM"]
            assert values["Staircase"] > values["HM"]

    # PM/Duchi crossover falls at eps# ~= 1.29: PM loses below, wins above.
    assert data["PM"][0.25] > data["Duchi"][0.25]
    assert data["PM"][8.0] < data["Duchi"][8.0]
    crossings = [
        eps
        for lo, eps in zip(EPSILONS, EPSILONS[1:])
        if (data["PM"][lo] - data["Duchi"][lo])
        * (data["PM"][eps] - data["Duchi"][eps])
        <= 0
    ]
    assert any(abs(c - EPSILON_SHARP) < 0.3 for c in crossings)

    # Laplace/Duchi crossover near eps ~= 2 (paper's Fig. 1 discussion).
    assert data["Laplace"][1.0] > data["Duchi"][1.0]
    assert data["Laplace"][4.0] < data["Duchi"][4.0]

    record_rows(
        "fig01",
        rows,
        "Fig. 1: worst-case noise variance (1-D) vs eps",
        value_format="{:.4f}",
    )
