"""Fig. 3 — worst-case variance of PM/HM relative to Duchi's, d > 1."""

import numpy as np
from _common import record_rows, run_once, series

from repro.experiments import fig03

DIMENSIONS = (5, 10, 20, 40)
EPSILONS = tuple(np.round(np.linspace(0.25, 8.0, 16), 3))


def test_fig03(benchmark):
    rows = run_once(
        benchmark, lambda: fig03.run(dimensions=DIMENSIONS, epsilons=EPSILONS)
    )
    data = series(rows)

    for d in DIMENSIONS:
        for eps in EPSILONS:
            pm_ratio = data[f"PM d={d}"][eps]
            hm_ratio = data[f"HM d={d}"][eps]
            # Corollary 2: both proposed mechanisms beat Duchi everywhere.
            assert hm_ratio < pm_ratio < 1.0
        # The paper: HM's ratio is at most ~0.77 for these dimensions.
        assert max(data[f"HM d={d}"].values()) <= 0.77

    record_rows(
        "fig03",
        rows,
        "Fig. 3: MaxVar(PM|HM) / MaxVar(Duchi), multidimensional",
        value_format="{:.4f}",
    )
