"""Fig. 10 — SVM misclassification rate vs eps."""

from _common import record_rows, run_once, series

from repro.experiments import fig10
from repro.experiments.erm import ERMConfig

CONFIG = ERMConfig(
    n=20_000, folds=3, repeats=1, epsilons=(0.5, 1.0, 2.0, 4.0), seed=2019
)


def test_fig10(benchmark):
    rows = run_once(benchmark, lambda: fig10.run(CONFIG))
    data = series(rows)

    for ds in ("BR", "MX"):
        non_private = data[f"{ds}/non-private"][4.0]
        hm_curve = [data[f"{ds}/hm"][e] for e in CONFIG.epsilons]
        # Error decreases with eps (allowing SGD stochasticity slack)...
        assert hm_curve[-1] <= hm_curve[0] + 0.03
        # ...and approaches the non-private line at eps = 4 (paper: "in
        # some settings such as SVM with eps >= 2 on BR, the accuracy of
        # PM and HM approaches that of the non-private method").  At this
        # laptop-scale n (the paper trains on ~3.6M users per fold, we
        # use ~13k) the residual gradient noise leaves a wider gap.
        assert hm_curve[-1] <= non_private + 0.2
        # Better than chance at every eps >= 1.
        for eps in (1.0, 2.0, 4.0):
            assert data[f"{ds}/hm"][eps] < 0.5

    record_rows(
        "fig10",
        rows,
        f"Fig. 10: SVM misclassification (n={CONFIG.n}, "
        f"{CONFIG.folds}-fold CV)",
        value_format="{:.4f}",
    )
