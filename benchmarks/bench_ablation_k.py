"""Ablation — Eq. (12)'s attribute-sampling parameter k.

Sweeps k in 1..d for Algorithm 4 (PM inside) at several budgets and
checks that the paper's floor rule k = max(1, min(d, floor(eps/2.5)))
lands at (or within a small factor of) the empirically best k.
"""

import numpy as np
from _common import record, run_once

from repro.data.synthetic import truncated_gaussian_matrix
from repro.experiments.results import Row, format_table
from repro.multidim import MultidimNumericCollector
from repro.theory.constants import optimal_k
from repro.theory.variance import pm_md_worst_variance
from repro.utils.rng import spawn_rngs
from repro.utils.stats import empirical_mse

D = 8
N = 15_000
EPSILONS = (1.0, 4.0, 8.0, 16.0)
REPEATS = 3


def _sweep():
    matrix = truncated_gaussian_matrix(N, D, 0.3, rng=11)
    truth = matrix.mean(axis=0)
    rows = []
    for eps in EPSILONS:
        for k in range(1, D + 1):
            collector = MultidimNumericCollector(eps, D, "pm", k=k)
            mse = float(
                np.mean(
                    [
                        empirical_mse(collector.collect(matrix, c), truth)
                        for c in spawn_rngs(17, REPEATS)
                    ]
                )
            )
            rows.append(Row("ablation_k", f"eps={eps:g}", float(k), mse))
    return rows


def test_ablation_k(benchmark):
    rows = run_once(benchmark, _sweep)
    by_eps = {}
    for row in rows:
        by_eps.setdefault(row.series, {})[row.x] = row.value

    for eps in EPSILONS:
        curve = by_eps[f"eps={eps:g}"]
        chosen = float(optimal_k(eps, D))
        best_k = min(curve, key=curve.get)
        # The closed-form worst-case variance agrees with the empirical
        # sweep on which k is best (within sampling noise, accept the
        # chosen k being within 2.5x of the best empirical MSE).
        assert curve[chosen] <= 2.5 * curve[best_k]
        # And theory's k-ranking matches Eq. 12's intent: the theoretical
        # variance at the chosen k is within 35% of the theoretical min.
        theory_best = min(
            pm_md_worst_variance(eps, D, k) for k in range(1, D + 1)
        )
        assert pm_md_worst_variance(eps, D, int(chosen)) <= 1.35 * theory_best

    record(
        "ablation_k",
        format_table(
            rows,
            title=f"Ablation: MSE vs sampled attributes k (d={D}, n={N})",
            x_label="k",
        ),
    )
