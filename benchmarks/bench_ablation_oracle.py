"""Ablation — frequency oracle choice inside the Section IV-C collector.

The paper adopts OUE; this ablation swaps in GRR, SUE and OLH and
compares frequency-estimation MSE on the BR-like dataset.
"""

import numpy as np
from _common import record, run_once

from repro.data import make_br_like
from repro.experiments.results import Row, format_table
from repro.multidim import MixedMultidimCollector
from repro.utils.rng import spawn_rngs

ORACLES = ("oue", "sue", "grr", "olh")
EPSILONS = (0.5, 1.0, 2.0, 4.0)
N = 15_000
REPEATS = 3


def _sweep():
    dataset = make_br_like(N, rng=13)
    truth = dataset.true_categorical_frequencies()
    rows = []
    for oracle in ORACLES:
        for eps in EPSILONS:
            scores = []
            for child in spawn_rngs(29, REPEATS):
                collector = MixedMultidimCollector(
                    dataset.schema, eps, oracle=oracle
                )
                scores.append(
                    collector.collect(dataset, child).frequency_mse(truth)
                )
            rows.append(
                Row("ablation_oracle", oracle, eps, float(np.mean(scores)))
            )
    return rows


def test_ablation_oracle(benchmark):
    rows = run_once(benchmark, _sweep)
    data = {}
    for row in rows:
        data.setdefault(row.series, {})[row.x] = row.value

    # A subtlety this ablation surfaces: OUE minimizes the f -> 0
    # estimator variance (the worst case Wang et al. optimize), but its
    # variance grows with the true frequency f, whereas SUE's is exactly
    # f-independent (1 - p - q = 0).  On skewed marginals with dominant
    # values, SUE/GRR can therefore beat OUE at large eps.  We assert
    # the robust facts rather than a blanket OUE win:
    for eps in EPSILONS:
        # All oracles are in the same ballpark at every eps...
        best = min(d[eps] for d in data.values())
        assert data["oue"][eps] <= 5.0 * best
        # ...and OUE's *worst-case* (f -> 0) variance advantage over SUE
        # holds in closed form at this eps.
        from repro.frequency import OptimizedUnaryEncoding, SymmetricUnaryEncoding

        assert (
            OptimizedUnaryEncoding(eps, 8).estimator_variance(1000)
            < SymmetricUnaryEncoding(eps, 8).estimator_variance(1000)
        )
    for oracle in ORACLES:
        # Accuracy improves with the privacy budget for every oracle.
        assert data[oracle][4.0] < data[oracle][0.5]

    record(
        "ablation_oracle",
        format_table(
            rows,
            title=(
                "Ablation: frequency MSE by oracle inside the mixed "
                f"collector (BR-like, n={N})"
            ),
        ),
    )
