"""Ablation — Algorithm 3's boundary-tie handling for even d.

Compares the paper-literal "shared" variant (boundary corners in both
halfspaces; worst-case ratio e^eps + 1) against Duchi et al.'s original
"split" variant (exact eps-LDP; different unbiasedness constant).  Both
must be unbiased under their own constants; the split variant pays a
slightly larger output magnitude B and hence variance — the price of
exact eps-LDP at even d.
"""

import numpy as np
from _common import record, run_once

from repro.core import DuchiMultidimMechanism
from repro.experiments.results import Row, format_table
from repro.theory.constants import duchi_cd
from repro.utils.rng import spawn_rngs

EPS = 1.0
N = 60_000
DIMENSIONS = (2, 3, 4, 8)


def _sweep():
    rows = []
    for d in DIMENSIONS:
        t = np.tile(np.linspace(-0.6, 0.6, d), (N, 1))
        for variant in ("shared", "split"):
            mech = DuchiMultidimMechanism(EPS, d, tie_breaking=variant)
            bias, var = [], []
            for child in spawn_rngs(23, 2):
                out = mech.privatize(t, child)
                bias.append(float(np.abs(out.mean(axis=0) - t[0]).max()))
                var.append(float(np.var(out[:, 0])))
            rows.append(
                Row("tie", f"{variant}/max-bias", float(d),
                    float(np.mean(bias)))
            )
            rows.append(
                Row("tie", f"{variant}/variance", float(d),
                    float(np.mean(var)))
            )
    return rows


def test_ablation_tie_breaking(benchmark):
    rows = run_once(benchmark, _sweep)
    data = {}
    for row in rows:
        data.setdefault(row.series, {})[row.x] = row.value

    for d in (float(x) for x in DIMENSIONS):
        shared = DuchiMultidimMechanism(EPS, int(d), "shared")
        split = DuchiMultidimMechanism(EPS, int(d), "split")
        sem = shared.b / np.sqrt(N / 2)
        # Both variants are unbiased under their own constants.
        assert data["shared/max-bias"][d] < 6 * sem
        assert data["split/max-bias"][d] < 6 * sem
        if int(d) % 2 == 1:
            # Odd d: the variants are literally the same mechanism.
            assert shared.b == split.b
        else:
            # Even d: exact eps-LDP costs a larger B (split > shared...
            # no — split's C_d is *smaller*; check the actual relation).
            assert duchi_cd(int(d), "split") < duchi_cd(int(d), "shared")
            assert data["split/variance"][d] < data["shared/variance"][d]

    record(
        "ablation_tie_breaking",
        format_table(
            rows,
            title=(
                "Ablation: Algorithm 3 tie handling (shared = paper "
                f"pseudo-code, split = exactly eps-LDP), eps={EPS}, n={N}"
            ),
            x_label="d",
        ),
    )
