"""Fig. 6 — uniform and power-law distributed numeric data."""

from _common import record_rows, run_once, series

from repro.experiments import fig06
from repro.experiments.runner import EstimationConfig

CONFIG = EstimationConfig(
    n=20_000, repeats=3, epsilons=(0.5, 1.0, 2.0, 4.0), seed=2019
)


def test_fig06(benchmark):
    rows = run_once(benchmark, lambda: fig06.run(CONFIG))
    data = series(rows)

    for dist in ("uniform", "powerlaw"):
        for eps in CONFIG.epsilons:
            pm = data[f"{dist}/pm"][eps]
            hm = data[f"{dist}/hm"][eps]
            duchi = data[f"{dist}/duchi"][eps]
            laplace = data[f"{dist}/laplace"][eps]
            scdf = data[f"{dist}/scdf"][eps]
            # Same conclusions as Fig. 5 on both distributions.
            assert max(pm, hm) < duchi
            assert duchi < min(laplace, scdf)

    record_rows("fig06", rows, f"Fig. 6: MSE, uniform & power-law (n={CONFIG.n})")
