"""Fig. 7 — estimation accuracy vs number of users (MX-like data)."""

from _common import record_rows, run_once, series

from repro.experiments import fig07
from repro.experiments.runner import EstimationConfig

CONFIG = EstimationConfig(n=0, repeats=3, seed=2019)  # n set per point
USER_COUNTS = (6_250, 12_500, 25_000, 50_000, 100_000)


def test_fig07(benchmark):
    rows = run_once(
        benchmark,
        lambda: fig07.run(CONFIG, user_counts=USER_COUNTS, epsilon=1.0),
    )
    data = series(rows)

    smallest, largest = float(USER_COUNTS[0]), float(USER_COUNTS[-1])
    for name, curve in data.items():
        # More users -> lower MSE, for every method and both metrics.
        assert curve[largest] < curve[smallest], name

    for n in (float(c) for c in USER_COUNTS):
        # Proposed beats baselines at every n.
        assert data["numeric/hm"][n] < data["numeric/laplace"][n]
        assert data["numeric/hm"][n] < data["numeric/duchi"][n]
        assert data["categorical/hm"][n] < data["categorical/oue-split"][n]

    # Rough 1/n scaling (Lemma 5): 16x the users cuts MSE by ~16x;
    # accept a generous 4x..64x window.
    ratio = data["numeric/hm"][smallest] / data["numeric/hm"][largest]
    assert 4.0 < ratio < 64.0

    record_rows(
        "fig07",
        rows,
        "Fig. 7: MSE vs number of users (MX-like, eps=1)",
        x_label="n",
    )
