# Networked LDP ingestion service (repro.service) with the repro.obs
# observability surface: GET /metrics (Prometheus text exposition),
# structured JSON logs on stderr, SIGTERM graceful drain.
#
#   docker build -t repro-service .
#   docker run -p 8321:8321 repro-service
#
# `docker stop` sends SIGTERM: the server answers 503 to new batches,
# flushes its shard queues, writes a final checkpoint into the snapshot
# volume, and exits 0 — no reports accepted-but-unpersisted are lost.
FROM python:3.12-slim

RUN pip install --no-cache-dir numpy

WORKDIR /app
COPY src/ src/
COPY examples/ examples/
ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

# Default campaign spec: generated at build time so the container runs
# out of the box; mount /specs and point --spec/--campaigns there for
# real deployments.
RUN python -c "import json; from repro.protocol import Protocol; \
    json.dump(Protocol.frequency(1.0, domain=32).spec.to_dict(), \
    open('/app/default-spec.json', 'w'))"

VOLUME /snapshots
EXPOSE 8321

# Stop gracefully (drain) before the 30s docker-stop kill window.
STOPSIGNAL SIGTERM

CMD ["python", "-m", "repro.service", \
     "--spec", "/app/default-spec.json", \
     "--host", "0.0.0.0", "--port", "8321", \
     "--shards", "2", \
     "--snapshot-dir", "/snapshots", \
     "--checkpoint-every", "100", \
     "--log-format", "json"]
