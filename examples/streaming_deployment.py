"""A production-shaped deployment over the real client/server split:
an HTTP ingestion service, on-device encoding, budget enforcement at
the server, durable checkpoints, and published confidence intervals.

Scenario: reports arrive in daily batches; the deployment

1. plans the rollout (how many users does the target accuracy need?),
2. boots the aggregator as a networked service with a snapshot store,
3. submits each day's batch through the client SDK — values are
   perturbed *on the client*; the server only ever sees LDP reports and
   charges every accepted report against the per-user lifetime budget,
4. crashes the server mid-deployment and resumes from the latest
   checkpoint without losing a report, and
5. publishes means with simultaneous 95% confidence intervals.

Run:  PYTHONPATH=src python examples/streaming_deployment.py
"""

import tempfile

import numpy as np

from repro import make_br_like
from repro.analysis import collector_mean_intervals, required_users
from repro.protocol import Protocol
from repro.service import (
    IngestionServer,
    OverBudgetError,
    ServiceClient,
    SnapshotStore,
)

EPSILON = 1.0
LIFETIME_EPSILON = 1.0  # one report per user, as in the paper's SGD
DAYS = 5
USERS_PER_DAY = 20_000


def main():
    rng = np.random.default_rng(11)

    # ---- 1. planning --------------------------------------------------
    plan = required_users(EPSILON, target_error=0.02, mechanism="hm",
                          d=16, beta=0.05)
    print(f"plan: {plan}")
    total_users = DAYS * USERS_PER_DAY
    print(f"deployment will reach n = {total_users} "
          f"({'enough' if total_users >= plan.required_n else 'NOT enough'} "
          f"for the target)\n")

    # ---- 2. boot the aggregator service -------------------------------
    dataset = make_br_like(total_users, rng=rng)
    protocol = Protocol.multidim(EPSILON, schema=dataset.schema,
                                 mechanism="hm")
    snapshot_dir = tempfile.mkdtemp(prefix="ldp-snapshots-")
    server = IngestionServer(
        protocol,
        lifetime_epsilon=LIFETIME_EPSILON,
        store=SnapshotStore(snapshot_dir),
        checkpoint_every=1,
    ).run_in_thread()
    client = ServiceClient("127.0.0.1", server.port)
    print(f"service: {client.fetch_spec()['spec']['kind']} protocol on "
          f"port {server.port}, checkpoints -> {snapshot_dir}")

    # ---- 3. daily batches through the client SDK ----------------------
    crash_after = DAYS // 2
    for day in range(DAYS):
        start = day * USERS_PER_DAY
        users = [f"user-{i}" for i in range(start, start + USERS_PER_DAY)]
        batch = dataset.subset(np.arange(start, start + USERS_PER_DAY))
        # encode locally -- raw values never reach the socket
        response = client.submit(batch, users=users, rng=rng)
        interim = client.estimate()
        print(f"day {day}: charged {response['accepted']} users; "
              f"interim income mean = {interim.means['total_income']:+.4f}")

        if day == crash_after:
            # ---- 4. kill-and-resume ----------------------------------
            before = client.estimate()
            server.stop()  # abrupt: no farewell checkpoint
            server = IngestionServer(
                protocol,
                lifetime_epsilon=LIFETIME_EPSILON,
                store=SnapshotStore(snapshot_dir),
                checkpoint_every=1,
            ).run_in_thread()
            client = ServiceClient("127.0.0.1", server.port)
            health = client.healthz()
            after = client.estimate()
            identical = all(
                before.means[k] == after.means[k] for k in before.means
            )
            print(f"  -- crash! resumed from snapshot "
                  f"{health['resumed_from_snapshot']} with "
                  f"{health['reports']} reports intact "
                  f"(estimates identical: {identical})")

    # A user who already reported is turned away at the server.
    try:
        client.submit(dataset.subset(np.arange(1)), users=["user-0"],
                      rng=rng)
        raise AssertionError("expected an over-budget rejection")
    except OverBudgetError as exc:
        print(f"\nrepeat report by {exc.rejected_users[0]!r} rejected "
              f"(HTTP {exc.status}: budget exhausted)")

    # ---- 5. publish with intervals ------------------------------------
    estimates = client.estimate()
    n_reports = client.healthz()["reports"]
    collector = client.protocol.client().collector
    intervals = collector_mean_intervals(
        collector, estimates.means, n_reports, beta=0.05
    )
    truth = dataset.true_numeric_means()
    print(f"\npublished means with simultaneous 95% intervals "
          f"(n = {n_reports}):")
    for name, ci in intervals.items():
        covered = "ok " if ci.contains(truth[name]) else "MISS"
        print(f"  {name:<16} {ci}   true {truth[name]:+.5f}  [{covered}]")

    server.stop()


if __name__ == "__main__":
    main()
