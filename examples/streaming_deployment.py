"""A production-shaped deployment: streaming reports, budget accounting
and published confidence intervals.

Scenario: reports arrive in daily batches; the aggregator

1. plans the deployment (how many users does the target accuracy need?),
2. charges each reporting user's lifetime budget through the accountant,
3. folds batches into streaming aggregators (no raw report retained), and
4. publishes means with simultaneous 95% confidence intervals.

Run:  python examples/streaming_deployment.py
"""

import numpy as np

from repro import MixedMultidimCollector, make_br_like
from repro.analysis import (
    PrivacyAccountant,
    collector_mean_intervals,
    required_users,
)
from repro.multidim import StreamingMixedAggregator

EPSILON = 1.0
LIFETIME_EPSILON = 1.0  # one report per user, as in the paper's SGD
DAYS = 5
USERS_PER_DAY = 20_000


def main():
    rng = np.random.default_rng(11)

    # ---- 1. planning --------------------------------------------------
    plan = required_users(EPSILON, target_error=0.02, mechanism="hm",
                          d=16, beta=0.05)
    print(f"plan: {plan}")
    total_users = DAYS * USERS_PER_DAY
    print(f"deployment will reach n = {total_users} "
          f"({'enough' if total_users >= plan.required_n else 'NOT enough'} "
          f"for the target)\n")

    # ---- 2 + 3. streaming collection with accounting ------------------
    dataset = make_br_like(total_users, rng=rng)
    collector = MixedMultidimCollector(dataset.schema, EPSILON)
    stream = StreamingMixedAggregator(collector)
    accountant = PrivacyAccountant(lifetime_epsilon=LIFETIME_EPSILON)

    for day in range(DAYS):
        start = day * USERS_PER_DAY
        batch_users = [f"user-{i}" for i in range(start, start + USERS_PER_DAY)]
        charged = accountant.charge_group(
            batch_users, EPSILON, label=f"day-{day}"
        )
        batch = dataset.subset(np.arange(start, start + USERS_PER_DAY))
        stream.update(collector.privatize(batch, rng))
        interim = stream.estimates()
        print(
            f"day {day}: charged {len(charged)} users "
            f"(ledger total eps = {accountant.total_spent():.0f}); "
            f"interim income mean = {interim.means['total_income']:+.4f}"
        )

    # A user who already reported cannot be charged again.
    assert accountant.charge_group(["user-0"], EPSILON) == ()

    # ---- 4. publish with intervals ------------------------------------
    estimates = stream.estimates()
    intervals = collector_mean_intervals(
        collector, estimates.means, stream.users, beta=0.05
    )
    truth = dataset.true_numeric_means()
    print(f"\npublished means with simultaneous 95% intervals "
          f"(n = {stream.users}):")
    for name, ci in intervals.items():
        covered = "ok " if ci.contains(truth[name]) else "MISS"
        print(f"  {name:<16} {ci}   true {truth[name]:+.5f}  [{covered}]")


if __name__ == "__main__":
    main()
