"""Two concurrent collection campaigns over one user population,
sharing a single global privacy budget.

Scenario: a product team runs an A/B experiment (frequency oracle over
four arms) while the telemetry team measures session length (numeric
mean) — on the *same* users, through the *same* aggregator.  The
deployment

1. boots one multi-campaign server with a durable snapshot store and a
   global per-user budget covering both collections,
2. registers the A/B campaign at runtime (`POST /campaigns`; the
   telemetry spec is the server's default campaign),
3. ingests both collections concurrently from threaded clients — the
   cross-campaign ledger charges every accepted report against the one
   global budget, so a user exhausted by both campaigns is rejected by
   a third with HTTP 429,
4. crashes the server mid-run and resumes — all campaigns, lifecycle
   states, and the ledger come back bitwise from the snapshot, and
5. seals the A/B campaign and publishes its final estimate (late
   reports get HTTP 409).

Run:  PYTHONPATH=src python examples/multi_campaign_service.py
"""

import tempfile
import threading

import numpy as np

from repro.protocol import Protocol
from repro.service import (
    CampaignClosedError,
    IngestionServer,
    OverBudgetError,
    ServiceClient,
    SnapshotStore,
)

AB_EPSILON = 1.0  # frequency campaign: which arm did the user see?
TELEMETRY_EPSILON = 1.0  # mean campaign: normalized session length
LIFETIME_EPSILON = AB_EPSILON + TELEMETRY_EPSILON  # room for both
N_USERS = 20_000
BATCHES = 4


def _boot(telemetry, snapshot_dir):
    server = IngestionServer(
        telemetry,
        lifetime_epsilon=LIFETIME_EPSILON,
        store=SnapshotStore(snapshot_dir),
        checkpoint_every=1,
    ).run_in_thread()
    return server, ServiceClient("127.0.0.1", server.port)


def main():
    rng = np.random.default_rng(23)
    arms = rng.integers(0, 4, N_USERS)
    sessions = rng.uniform(-1, 1, N_USERS)
    users = [f"user-{i}" for i in range(N_USERS)]

    # ---- 1. one server, two tenants -----------------------------------
    telemetry = Protocol.numeric_mean(TELEMETRY_EPSILON, "hm")
    ab_test = Protocol.frequency(AB_EPSILON, domain=4)
    snapshot_dir = tempfile.mkdtemp(prefix="ldp-campaigns-")
    server, client = _boot(telemetry, snapshot_dir)
    print(f"server: default campaign {telemetry.spec.kind!r} on port "
          f"{server.port}; global budget eps={LIFETIME_EPSILON:g}/user")

    # ---- 2. register the A/B campaign at runtime ----------------------
    registered = client.register_campaign(ab_test.spec)
    print(f"registered A/B campaign {registered['campaign'][:12]}... "
          f"(created={registered['created']}, state={registered['state']})")
    ab_client = client.for_campaign(registered["campaign"])

    # ---- 3. concurrent ingest, one shared ledger ----------------------
    per_batch = N_USERS // BATCHES

    def _pump(bound, values, tag):
        for b in range(BATCHES):
            lo = b * per_batch
            bound.submit(values[lo : lo + per_batch],
                         users=users[lo : lo + per_batch],
                         rng=100 + b)
        print(f"  {tag}: {BATCHES} batches x {per_batch} users ingested")

    threads = [
        threading.Thread(target=_pump,
                         args=(client, sessions, "telemetry")),
        threading.Thread(target=_pump, args=(ab_client, arms, "a/b")),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    health = client.healthz()
    print(f"healthz: {health['reports']} reports across "
          f"{len(health['campaigns'])} campaigns, "
          f"{health['users_charged']} users charged")

    # Every user has now spent the full global budget: a THIRD campaign
    # cannot touch them, even though it never saw them before.
    survey = client.register_campaign(
        Protocol.numeric_mean(0.5, "pm").spec
    )
    try:
        client.for_campaign(survey["campaign"]).submit(
            sessions[:5], users=users[:5], rng=7
        )
        raise AssertionError("expected a cross-campaign 429")
    except OverBudgetError as exc:
        print(f"cross-campaign budget: survey batch rejected whole "
              f"(HTTP {exc.status}, {len(exc.rejected_users)} users "
              f"over the GLOBAL budget)")

    # ---- 4. kill-and-resume restores every tenant ---------------------
    before_ab = np.asarray(ab_client.estimate())
    before_mean = client.estimate()
    server.stop()  # abrupt: no farewell checkpoint
    server, client = _boot(telemetry, snapshot_dir)
    ab_client = client.for_campaign(registered["campaign"])
    identical = bool(
        np.array_equal(before_ab, np.asarray(ab_client.estimate()))
        and before_mean == client.estimate()
    )
    print(f"crash + resume: {client.healthz()['reports']} reports "
          f"intact across campaigns (estimates identical: {identical})")

    # ---- 5. seal the experiment, publish its final estimate -----------
    ab_client.seal_campaign()
    try:
        ab_client.submit(arms[:5], users=["late-user"] * 5, rng=9)
        raise AssertionError("expected a sealed-campaign rejection")
    except CampaignClosedError as exc:
        print(f"sealed: late A/B report refused (HTTP {exc.status})")
    final = ab_client.estimate_info()
    true_shares = np.bincount(arms, minlength=4) / N_USERS
    print(f"\nA/B campaign final (state={final['state']}, "
          f"final={final['final']}, n={final['reports']}):")
    for arm, (est, truth) in enumerate(
        zip(np.asarray(final["estimate"]), true_shares)
    ):
        print(f"  arm {arm}: {est:+.4f}  true {truth:+.4f}")

    server.stop()


if __name__ == "__main__":
    main()
