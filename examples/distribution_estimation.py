"""Estimating a full distribution (histogram, CDF, quantiles) under LDP.

Scenario: the aggregator wants more than the mean of a sensitive
numeric attribute — it wants the whole shape: histogram, median and
tail quantiles of (say) normalized income.  Each user bucketizes her
value and perturbs the bucket index with OUE; the aggregator debiases,
projects onto the probability simplex, and answers distribution queries.

Run:  python examples/distribution_estimation.py
"""

import numpy as np

from repro import Protocol
from repro.data.synthetic import power_law_matrix
from repro.frequency import true_histogram

EPSILON = 1.0
N_USERS = 200_000
BINS = 16


def main():
    rng = np.random.default_rng(3)
    # Heavy-tailed data (the paper's Fig. 6b power law).
    values = power_law_matrix(N_USERS, 1, rng=rng).ravel()

    protocol = Protocol.histogram(EPSILON, bins=BINS, oracle="oue")
    estimate = protocol.server().absorb(
        protocol.client().encode_batch(values, rng)
    ).estimate()
    truth = true_histogram(values, bins=BINS)

    print(f"{N_USERS} users, eps = {EPSILON}, {BINS} buckets over [-1, 1]\n")
    print(f"{'bucket':<16}{'true':>8}{'estimate':>10}")
    print("-" * 34)
    for i in range(BINS):
        lo, hi = estimate.edges[i], estimate.edges[i + 1]
        bar = "#" * int(round(estimate.histogram[i] * 40))
        print(
            f"[{lo:+.2f},{hi:+.2f}) {truth[i]:>8.4f}"
            f"{estimate.histogram[i]:>10.4f}  {bar}"
        )

    print(f"\ntotal variation distance to truth: "
          f"{estimate.total_variation(truth):.4f}")

    print("\ndistribution queries on the private estimate:")
    for q in (0.25, 0.5, 0.9, 0.99):
        true_q = float(np.quantile(values, q))
        print(f"  q{q:<5g} estimate {estimate.quantile(q):+.3f}   "
              f"true {true_q:+.3f}")
    print(f"  mean  estimate {estimate.mean():+.3f}   "
          f"true {values.mean():+.3f}")
    print(f"  P[x <= -0.5]  estimate {estimate.cdf(-0.5):.3f}   "
          f"true {float(np.mean(values <= -0.5)):.3f}")


if __name__ == "__main__":
    main()
