"""Multidimensional census analytics under LDP (the paper's Section IV).

Scenario: a statistics bureau collects 16 attributes per person — ages,
incomes, working hours (numeric) plus occupation, marital status, etc.
(categorical) — under a single eps-LDP budget per person, and publishes
every attribute's mean / frequency table.

This script compares the paper's proposed collector (Algorithm 4 +
Section IV-C, with HM and OUE inside) against the best-effort
composition baseline the paper evaluates (eps/d per attribute).

Run:  python examples/census_analytics.py
"""

import numpy as np

from repro import Protocol, SplitCompositionBaseline, make_br_like

EPSILON = 1.0
N_USERS = 100_000


def main():
    rng = np.random.default_rng(7)
    dataset = make_br_like(N_USERS, rng=rng)
    schema = dataset.schema
    print(
        f"BR-like census: {dataset.n} users, {schema.d} attributes "
        f"({len(schema.numeric)} numeric + {len(schema.categorical)} "
        f"categorical), eps = {EPSILON}\n"
    )

    truth_means = dataset.true_numeric_means()
    truth_freqs = dataset.true_categorical_frequencies()

    # --- The proposed solution (client/server protocol API) -------------
    protocol = Protocol.multidim(
        EPSILON, schema=schema, mechanism="hm", oracle="oue"
    )
    reports = protocol.client().encode_batch(dataset, rng)
    proposed = protocol.server().absorb(reports).estimate()
    print(f"proposed collector samples k = {protocol.k} attribute(s) "
          f"per user at eps/k = {EPSILON / protocol.k:g} each\n")

    # --- The composition baseline ---------------------------------------
    baseline = SplitCompositionBaseline(
        schema, EPSILON, numeric_method="duchi", oracle="oue"
    )
    composed = baseline.collect(dataset, rng)

    print(f"{'numeric attribute':<18}{'true':>9}{'proposed':>10}"
          f"{'baseline':>10}")
    print("-" * 47)
    for attr in schema.numeric:
        print(
            f"{attr.name:<18}{truth_means[attr.name]:>+9.4f}"
            f"{proposed.means[attr.name]:>+10.4f}"
            f"{composed.means[attr.name]:>+10.4f}"
        )

    print(f"\nnumeric-mean MSE:  proposed {proposed.mean_mse(truth_means):.3e}"
          f"  baseline {composed.mean_mse(truth_means):.3e}")
    print(f"frequency MSE:     proposed "
          f"{proposed.frequency_mse(truth_freqs):.3e}"
          f"  baseline {composed.frequency_mse(truth_freqs):.3e}")

    # One categorical attribute in detail.
    attr = schema.categorical[0]
    print(f"\nfrequency table for {attr.name!r} "
          f"(cardinality {attr.cardinality}):")
    print(f"{'value':<8}{'true':>8}{'proposed':>10}{'baseline':>10}")
    for v in range(attr.cardinality):
        print(
            f"{v:<8}{truth_freqs[attr.name][v]:>8.4f}"
            f"{proposed.frequencies[attr.name][v]:>10.4f}"
            f"{composed.frequencies[attr.name][v]:>10.4f}"
        )


if __name__ == "__main__":
    main()
