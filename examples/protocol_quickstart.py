"""The protocol API end-to-end: encode on clients, merge across shards.

Scenario: 3 regional aggregators each receive reports from their own
users (client-side `encode_batch`), keep only O(d) sufficient
statistics (`absorb`), and a coordinator merges the shards into the
global estimate (`merge` + `estimate`) — no raw report ever crosses a
shard boundary.  The same three verbs drive every protocol kind; this
script runs one numeric-mean, one frequency, and one multidimensional
deployment, and round-trips a protocol config through JSON.

Run:  python examples/protocol_quickstart.py
"""

import json

import numpy as np

from repro import Protocol

EPSILON = 1.0
N_USERS = 90_000
SHARDS = 3


def sharded_run(protocol, per_shard_values, seed=0):
    """Encode each shard's users locally, then merge the accumulators."""
    client = protocol.client()
    accumulators = []
    for i, values in enumerate(per_shard_values):
        rng = np.random.default_rng(seed + i)   # each shard's own entropy
        accumulators.append(
            protocol.server().absorb(client.encode_batch(values, rng))
        )
    merged = accumulators[0]
    for shard in accumulators[1:]:
        merged.merge(shard)
    return merged.estimate()


def main():
    rng = np.random.default_rng(42)

    # ---- numeric mean (Section III, Hybrid Mechanism) -----------------
    values = np.clip(rng.beta(2.0, 6.0, N_USERS) * 2.0 - 1.0, -1.0, 1.0)
    protocol = Protocol.numeric_mean(EPSILON, mechanism="hm")
    estimate = sharded_run(protocol, np.array_split(values, SHARDS))
    print(f"numeric mean over {SHARDS} shards: "
          f"estimate {estimate:+.4f}   true {values.mean():+.4f}")

    # ---- categorical frequencies (OUE) --------------------------------
    categories = rng.integers(0, 8, N_USERS)
    protocol = Protocol.frequency(EPSILON, domain=8, oracle="oue")
    freqs = sharded_run(protocol, np.array_split(categories, SHARDS))
    worst = float(np.max(np.abs(freqs - np.bincount(categories,
                                                    minlength=8) / N_USERS)))
    print(f"frequencies over {SHARDS} shards: "
          f"max abs error {worst:.4f} across 8 values")

    # ---- d-dimensional tuples (Algorithm 4) ---------------------------
    d = 12
    tuples = rng.uniform(-1, 1, (N_USERS, d))
    protocol = Protocol.multidim(4.0, d=d, mechanism="hm")
    means = sharded_run(protocol, np.array_split(tuples, SHARDS))
    mse = float(np.mean((means - tuples.mean(axis=0)) ** 2))
    print(f"multidim means over {SHARDS} shards: "
          f"MSE {mse:.2e} across {d} attributes")
    reports = protocol.client().encode_batch(tuples[:5], rng)
    print(f"  wire format: each user sends {reports.k} (index, value) "
          f"pair(s), not a dense {d}-vector")

    # ---- configs are data ---------------------------------------------
    payload = json.dumps(protocol.spec.to_dict())
    rebuilt = Protocol.from_spec(json.loads(payload))
    print(f"\nspec round-trip through JSON: {payload}")
    assert rebuilt.spec == protocol.spec

    print("\nsame three verbs everywhere: encode_batch -> absorb/merge "
          "-> estimate")


if __name__ == "__main__":
    main()
