"""Mining attribute dependencies under LDP, with a privacy audit.

Scenario: an analyst wants to know *which categorical attributes are
associated* (for feature selection, say) without collecting raw data.
Each user reports one attribute pair's joint value under eps-LDP; the
aggregator reconstructs the 2-way contingency tables and ranks pairs by
estimated mutual information.  Before deployment, the perturbation
primitives are put through the empirical privacy auditor.

Run:  python examples/dependency_mining.py
"""

import numpy as np

from repro import make_br_like
from repro.analysis import audit_frequency_oracle, audit_numeric_mechanism
from repro.core import HybridMechanism
from repro.frequency import get_oracle
from repro.multidim import PairwiseMarginalCollector, true_marginal_table

EPSILON = 2.0
N_USERS = 200_000
PAIRS = [
    ("occupation", "employment_status"),
    ("occupation", "gender"),
    ("religion", "literacy"),
    ("marital_status", "home_ownership"),
]


def main():
    rng = np.random.default_rng(17)

    # ---- 0. pre-deployment audit --------------------------------------
    print("pre-deployment privacy audit (empirical lower bounds):")
    print(f"  {audit_numeric_mechanism(HybridMechanism(EPSILON), rng=rng)}")
    print(f"  {audit_frequency_oracle(get_oracle('oue', EPSILON, 10), rng=rng)}\n")

    # ---- 1. collect pairwise marginals ---------------------------------
    dataset = make_br_like(N_USERS, rng=rng)
    collector = PairwiseMarginalCollector(
        dataset.schema, EPSILON, pairs=PAIRS, oracle="oue"
    )
    tables = collector.collect(dataset, rng)

    # ---- 2. rank dependencies ------------------------------------------
    print(f"estimated dependencies ({N_USERS} users, eps = {EPSILON}, "
          f"one pair per user):\n")
    print(f"{'pair':<40}{'MI (est)':>10}{'MI (true)':>11}{'V (est)':>9}")
    print("-" * 70)
    ranked = sorted(
        tables.items(), key=lambda kv: -kv[1].mutual_information()
    )
    for pair, table in ranked:
        truth = true_marginal_table(dataset, *pair)
        print(
            f"{pair[0]+' x '+pair[1]:<40}"
            f"{table.mutual_information():>10.4f}"
            f"{truth.mutual_information():>11.4f}"
            f"{table.cramers_v():>9.3f}"
        )

    # ---- 3. drill into the strongest pair -------------------------------
    pair, table = ranked[0]
    print(f"\nconditional P[{pair[1]} | {pair[0]} = 0] from the private "
          f"estimate:")
    print("  " + np.array2string(table.conditional(0), precision=3))
    truth = true_marginal_table(dataset, *pair)
    print("vs. the (never-collected) truth:")
    print("  " + np.array2string(truth.conditional(0), precision=3))


if __name__ == "__main__":
    main()
