"""Training ML models with LDP-SGD (the paper's Section V case study).

Scenario: predict whether a person's income exceeds the population mean
(logistic regression / SVM) and the income itself (linear regression),
where every training gradient is collected under eps-LDP using the
paper's Algorithm 4 with the Hybrid Mechanism.

Run:  python examples/private_sgd.py
"""

import numpy as np

from repro import (
    LinearRegression,
    LogisticRegression,
    SupportVectorMachine,
    make_mx_like,
)
from repro.data.census import INCOME

N_USERS = 60_000
EPSILONS = (0.5, 1.0, 2.0, 4.0)


def main():
    rng = np.random.default_rng(42)
    dataset = make_mx_like(N_USERS, rng=rng)
    x, y = dataset.to_erm_features(INCOME)
    y_binary = np.where(y > y.mean(), 1.0, -1.0)
    print(
        f"MX-like census -> {x.shape[1]} features after one-hot encoding, "
        f"{N_USERS} users\n"
    )

    # Hold out a test set (the paper uses 10-fold cross-validation; one
    # split keeps this example fast).
    split = int(0.8 * N_USERS)
    x_train, x_test = x[:split], x[split:]
    y_train, y_test = y[:split], y[split:]
    yb_train, yb_test = y_binary[:split], y_binary[split:]

    tasks = [
        ("linear regression (MSE)", LinearRegression, y_train, y_test),
        ("logistic regression (miscls)", LogisticRegression, yb_train, yb_test),
        ("SVM (miscls)", SupportVectorMachine, yb_train, yb_test),
    ]

    for label, model_cls, target_train, target_test in tasks:
        non_private = model_cls(epsilon=None).fit(x_train, target_train, rng)
        reference = non_private.score(x_test, target_test)
        print(f"{label}:  non-private = {reference:.4f}")
        for eps in EPSILONS:
            model = model_cls(epsilon=eps, method="hm")
            model.fit(x_train, target_train, rng)
            score = model.score(x_test, target_test)
            print(f"   eps = {eps:<4g} ldp-sgd(hm) = {score:.4f}")
        print()

    print(
        "Errors shrink towards the non-private reference as eps grows —\n"
        "the Figs. 9-11 trend.  Every user's gradient was perturbed\n"
        "locally; the trainer never saw a raw gradient."
    )


if __name__ == "__main__":
    main()
