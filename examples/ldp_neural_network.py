"""LDP-trained neural network — the paper's future-work direction.

Section VIII: "we plan to apply the proposed solution to more complex
data analysis tasks such as deep neural networks."  This example trains
a one-hidden-layer network whose per-user gradients are clipped and
collected with Algorithm 4 (HM inside), on a task *no linear model can
solve*: XOR-style labels y = sign(x0 * x1).

Run:  python examples/ldp_neural_network.py
"""

import numpy as np

from repro import SupportVectorMachine
from repro.sgd import MLPClassifier

N_USERS = 60_000
EPSILONS = (1.0, 2.0, 4.0)


def main():
    rng = np.random.default_rng(5)
    x = rng.uniform(-1, 1, (N_USERS, 2))
    y = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
    split = int(0.8 * N_USERS)
    x_train, x_test = x[:split], x[split:]
    y_train, y_test = y[:split], y[split:]

    print(f"task: y = sign(x0 * x1), {N_USERS} users\n")

    linear = SupportVectorMachine().fit(x_train, y_train, rng)
    print(f"linear SVM (non-private):      "
          f"miscls = {linear.score(x_test, y_test):.3f}   <- chance level;"
          " the task is not linearly separable")

    mlp = MLPClassifier(hidden=8).fit(x_train, y_train, rng)
    print(f"MLP 2-8-1 (non-private):       "
          f"miscls = {mlp.score(x_test, y_test):.3f}")

    for eps in EPSILONS:
        private = MLPClassifier(epsilon=eps, hidden=8, method="hm")
        private.fit(x_train, y_train, rng)
        print(f"MLP 2-8-1 (LDP-SGD, eps={eps:g}):  "
              f"miscls = {private.score(x_test, y_test):.3f}")

    print(
        "\nEvery gradient seen by the trainer was clipped to [-1, 1]^D\n"
        "and perturbed per-user with Algorithm 4 over the network's\n"
        f"D = {mlp.loss.parameter_dim(2)} parameters; the privacy argument"
        " is unchanged from the\nconvex case (one iteration per user)."
    )


if __name__ == "__main__":
    main()
