"""A guided tour of the paper's mechanisms and when each one wins.

Walks through the theory that Sections III-IV build:

1. the worst-case variance landscape over eps (Fig. 1),
2. PM's three-piece output density (Fig. 2),
3. the eps* / eps# regime boundaries (Table I), and
4. how the multidimensional collector picks k (Eq. 12).

Run:  python examples/mechanism_tour.py
"""

import numpy as np

from repro import PiecewiseMechanism
from repro.theory import (
    EPSILON_SHARP,
    EPSILON_STAR,
    duchi_1d_worst_variance,
    hm_worst_variance,
    laplace_variance,
    optimal_k,
    pm_worst_variance,
)


def main():
    # ------------------------------------------------------------- Fig. 1
    print("1. Worst-case noise variance by privacy budget (Fig. 1):\n")
    print(f"{'eps':>6}{'Laplace':>10}{'Duchi':>10}{'PM':>10}{'HM':>10}"
          f"   best")
    for eps in (0.25, 0.5, 1.0, 1.29, 2.0, 4.0, 8.0):
        row = {
            "Laplace": laplace_variance(eps),
            "Duchi": duchi_1d_worst_variance(eps),
            "PM": pm_worst_variance(eps),
            "HM": hm_worst_variance(eps),
        }
        best = min(row, key=row.get)
        print(
            f"{eps:>6g}{row['Laplace']:>10.3f}{row['Duchi']:>10.3f}"
            f"{row['PM']:>10.3f}{row['HM']:>10.3f}   {best}"
        )

    # ------------------------------------------------------------- Fig. 2
    print("\n2. PM's output density is a bounded, 3-piece staircase "
          "(Fig. 2, eps = 1):\n")
    pm = PiecewiseMechanism(1.0)
    print(f"   output range [-C, C] with C = {pm.c:.4f}")
    for t in (0.0, 0.5, 1.0):
        lo, hi = float(pm.left(t)), float(pm.right(t))
        print(
            f"   t = {t:<4g} plateau [{lo:+.4f}, {hi:+.4f}] at density "
            f"{pm.p:.4f}; wings at {pm.p / np.e:.4f}"
        )

    # ------------------------------------------------------------ Table I
    print(
        f"\n3. Regime boundaries (Table I): eps* = {EPSILON_STAR:.4f}, "
        f"eps# = {EPSILON_SHARP:.4f}"
    )
    print("   eps <= eps*        : HM = Duchi < PM   (HM mixes 0% PM)")
    print("   eps* < eps < eps#  : HM < Duchi < PM")
    print("   eps >= eps#        : HM < PM <= Duchi  (PM overtakes Duchi)")

    # ------------------------------------------------------------- Eq. 12
    print("\n4. Attribute sampling for d-dimensional tuples (Eq. 12):\n")
    print(f"{'eps':>6}" + "".join(f"{d:>8}" for d in (4, 16, 64)))
    for eps in (1.0, 2.5, 5.0, 10.0, 25.0):
        ks = [optimal_k(eps, d) for d in (4, 16, 64)]
        print(f"{eps:>6g}" + "".join(f"{k:>8}" for k in ks))
    print(
        "\n   Each user reports only k of her d attributes at budget "
        "eps/k,\n   trading sampling error against per-attribute noise."
    )


if __name__ == "__main__":
    main()
