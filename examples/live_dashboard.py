"""Live terminal dashboard over a streaming LDP deployment.

Boots one windowed ingestion server, points a memoized reporting fleet
at it, and renders a refreshing terminal dashboard from the server's
own query surface — exactly what an operator would poll:

* ``GET /estimate?window=...``  sliding-window share estimates,
* ``GET /heavy-hitters``        live top-k with churn vs last round,
* ``GET /metrics``              pane/window gauges from the scrape.

The fleet re-reports every round; most users keep yesterday's value,
so the memoizing SDK replays their cached report and the server
charges them **zero** additional epsilon — watch the ``users charged``
line stay put while panes keep filling.  Every few rounds the
population's preferences shift, the heavy-hitter tracker reports the
churn, and the sliding window forgets the old regime while the
all-time estimate keeps averaging over everything.

Run:  PYTHONPATH=src python examples/live_dashboard.py
      PYTHONPATH=src python examples/live_dashboard.py --once   # 1 frame
"""

import argparse
import sys
import time

import numpy as np

from repro.protocol import Protocol
from repro.service import IngestionServer, ServiceClient

DOMAIN = 8
EPSILON = 4.0
N_USERS = 2_000
PANES = 4
TOP_K = 3
BAR = 30  # bar width in characters


def _bar(share, width=BAR):
    filled = max(0, min(width, round(share * width * 4)))
    return "#" * filled + "." * (width - filled)


def _frame(client, registry_text, round_, charged):
    lines = [
        f"repro.stream dashboard — round {round_}  "
        f"(window {PANES} panes, eps {EPSILON:g}/report)",
        "",
    ]
    info = client.estimate_info(window=PANES)
    estimate = np.asarray(info["estimate"])
    hot = client.heavy_hitters(k=TOP_K, window=PANES)
    entered, exited = set(hot["entered"]), set(hot["exited"])
    for value, share in enumerate(estimate):
        marks = ""
        if value in hot["indices"]:
            marks += "  <- top-{}".format(TOP_K)
        if value in entered:
            marks += " (entered)"
        if value in exited:
            marks += " (exited)"
        lines.append(
            f"  value {value}:  {_bar(float(share))}  "
            f"{float(share):+.4f}{marks}"
        )
    lines.append("")
    lines.append(
        f"  window reports: {info['reports']}   "
        f"all-time reports: {client.estimate_info()['reports']}   "
        f"users charged: {charged}"
    )
    pane_lines = [
        line
        for line in registry_text.splitlines()
        if line.startswith("repro_campaign_window_")
    ]
    lines.extend(f"  {line}" for line in pane_lines)
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=12, help="rounds to simulate"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.8,
        help="seconds between dashboard refreshes",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame after one round and exit "
        "(no screen clearing; for CI and piping)",
    )
    args = parser.parse_args(argv)
    rounds = 1 if args.once else args.rounds

    protocol = Protocol.frequency(EPSILON, domain=DOMAIN, oracle="oue")
    server = IngestionServer(
        protocol,
        lifetime_epsilon=EPSILON * 8,
        shards=2,
        window={"panes": PANES},
    ).run_in_thread()
    reporter = ServiceClient("127.0.0.1", server.port, memoize=True)
    observer = ServiceClient("127.0.0.1", server.port)
    users = [f"user-{i}" for i in range(N_USERS)]

    rng = np.random.default_rng(42)
    values = rng.integers(0, DOMAIN, N_USERS)
    try:
        for round_ in range(rounds):
            # Regime shift every 4 rounds: a new pair of values gets
            # hot; only the users who actually changed get re-charged.
            if round_ % 4 == 0 and round_ > 0:
                movers = rng.random(N_USERS) < 0.3
                hot_pair = (round_ // 4 * 2) % DOMAIN
                values = values.copy()
                values[movers] = rng.choice(
                    [hot_pair, hot_pair + 1], movers.sum()
                )
            reporter.submit(
                values, users=users, rng=1000 + round_, round=round_
            )
            frame = _frame(
                observer,
                observer.server_metrics_text(),
                round_,
                observer.healthz()["users_charged"],
            )
            if args.once:
                print(frame)
            else:
                # ANSI clear + home keeps the dashboard in place.
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
                time.sleep(args.interval)
    finally:
        server.stop()
    if not args.once:
        print("\ndone: {} rounds streamed".format(rounds))
    return 0


if __name__ == "__main__":
    sys.exit(main())
