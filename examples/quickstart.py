"""Quickstart: estimate the mean of a sensitive numeric attribute under LDP.

Scenario: n users each hold one value in [-1, 1] (say, a normalized
daily screen-time figure).  Each user locally perturbs her value with
the Hybrid Mechanism and sends only the noisy value; the aggregator
averages the reports.  We compare every mechanism in the package at the
same privacy budget.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import available_mechanisms, get_mechanism

EPSILON = 1.0
N_USERS = 100_000


def main():
    rng = np.random.default_rng(2019)

    # The sensitive data: skewed towards small values, like most of the
    # real attributes in the paper's experiments.
    true_values = np.clip(rng.beta(2.0, 6.0, N_USERS) * 2.0 - 1.0, -1.0, 1.0)
    true_mean = true_values.mean()
    print(f"{N_USERS} users, privacy budget eps = {EPSILON}")
    print(f"true mean = {true_mean:+.5f}\n")

    print(f"{'mechanism':<12}{'estimate':>12}{'abs error':>12}"
          f"{'worst-case var':>16}")
    print("-" * 52)
    for name in available_mechanisms():
        mechanism = get_mechanism(name, EPSILON)
        # Each user perturbs locally...
        noisy_reports = mechanism.privatize(true_values, rng)
        # ...the aggregator only ever sees noisy_reports.
        estimate = mechanism.estimate_mean(noisy_reports)
        print(
            f"{name:<12}{estimate:>+12.5f}{abs(estimate - true_mean):>12.5f}"
            f"{mechanism.worst_case_variance():>16.4f}"
        )

    print(
        "\nHM (the paper's Hybrid Mechanism) has the smallest worst-case"
        "\nvariance; with 100k users every unbiased mechanism lands close"
        "\nto the true mean, but HM/PM do so with the least noise."
    )


if __name__ == "__main__":
    main()
