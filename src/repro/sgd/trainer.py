"""LDP-compliant stochastic gradient descent (the paper's Section V).

Training loop:

1. Shuffle the n users; partition them into disjoint groups of size |G|
   (each user participates in at most one iteration — Section V proves
   that splitting a user's budget over m > 1 iterations only hurts).
2. At iteration t, every user in group G computes her gradient of
   l'(beta_t) = l(beta_t) + lambda/2 ||beta_t||^2, clips each entry to
   [-1, 1] ("gradient clipping"), and perturbs the d-dimensional gradient
   with Algorithm 4 (PM or HM inside) — or with a baseline perturbation
   (Duchi et al.'s Algorithm 3, or per-coordinate Laplace at eps/d).
3. The aggregator averages the noisy gradients and takes the step
   beta_{t+1} = beta_t - gamma_t * mean_gradient.

The non-private trainer runs the same loop without perturbation, which
is the "Non-private" line of Figs. 9-11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.duchi import DuchiMultidimMechanism
from repro.core.mechanism import get_mechanism
from repro.core.validation import check_epsilon
from repro.multidim.collector import MultidimNumericCollector
from repro.protocol.encoders import MultidimNumericEncoder
from repro.runtime import EXECUTORS, run_auto
from repro.sgd.losses import Loss, get_loss
from repro.sgd.schedules import Schedule, inverse_sqrt
from repro.utils.rng import RngLike, ensure_rng

#: Perturbation strategies accepted by LDPSGDTrainer.
GRADIENT_METHODS = ("pm", "hm", "duchi", "laplace")


def clip_gradients(gradients: np.ndarray, bound: float = 1.0) -> np.ndarray:
    """Entry-wise clipping to [-bound, bound] (the paper's choice)."""
    if bound <= 0:
        raise ValueError(f"clip bound must be positive, got {bound}")
    return np.clip(gradients, -bound, bound)


def default_group_size(d: int, epsilon: float, n: int) -> int:
    """The paper's guidance |G| = Omega(d log d / eps^2), capped to n.

    At the paper's scale (millions of users) the d log d / eps^2 term
    dominates; at laptop scale we additionally floor the group at n/50
    so that per-iteration gradient noise stays manageable.
    """
    raw = 1.2 * d * math.log(max(d, 2)) / epsilon**2
    return max(1, min(max(int(math.ceil(raw)), n // 50), n))


@dataclass
class TrainingHistory:
    """Per-iteration diagnostics recorded during a fit."""

    learning_rates: list = field(default_factory=list)
    gradient_norms: list = field(default_factory=list)
    betas: list = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.learning_rates)


class BaseSGDTrainer:
    """Shared loop for private and non-private SGD."""

    def __init__(
        self,
        loss,
        regularization: float = 1e-4,
        schedule: Optional[Schedule] = None,
        record_history: bool = False,
    ):
        self.loss: Loss = get_loss(loss) if isinstance(loss, str) else loss
        if regularization < 0:
            raise ValueError(
                f"regularization must be non-negative, got {regularization}"
            )
        self.regularization = float(regularization)
        self.schedule = schedule if schedule is not None else inverse_sqrt()
        self.record_history = record_history
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    def _check_xy(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("x must be a non-empty (n, p) matrix")
        if y.shape != (x.shape[0],):
            raise ValueError(f"y shape {y.shape} incompatible with x {x.shape}")
        if self.loss.binary_labels and not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError(
                f"{self.loss.name} loss requires labels in {{-1, +1}}"
            )
        return x, y

    def _regularized_gradients(self, beta, x, y) -> np.ndarray:
        grads = self.loss.gradient(beta, x, y)
        if self.regularization:
            grads = grads + self.regularization * beta[None, :]
        return grads

    def _mean_gradient(self, beta, x, y, gen) -> np.ndarray:
        raise NotImplementedError

    def _group_size(self, n: int, p: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def fit(self, x, y, rng: RngLike = None) -> np.ndarray:
        """Run the group-partitioned SGD loop; returns the final beta."""
        gen = ensure_rng(rng)
        x, y = self._check_xy(x, y)
        n, p = x.shape
        group = self._group_size(n, self.loss.parameter_dim(p))
        order = gen.permutation(n)
        beta = self.loss.initial_parameters(p, gen)
        self.history = TrainingHistory() if self.record_history else None

        iterations = n // group
        for t in range(1, iterations + 1):
            members = order[(t - 1) * group : t * group]
            mean_grad = self._mean_gradient(beta, x[members], y[members], gen)
            gamma = self.schedule(t)
            beta = beta - gamma * mean_grad
            if self.history is not None:
                self.history.learning_rates.append(gamma)
                self.history.gradient_norms.append(
                    float(np.linalg.norm(mean_grad))
                )
                self.history.betas.append(beta.copy())
        return beta


class NonPrivateSGDTrainer(BaseSGDTrainer):
    """The non-private reference line of Figs. 9-11."""

    def __init__(
        self,
        loss,
        regularization: float = 1e-4,
        schedule: Optional[Schedule] = None,
        group_size: int = 64,
        record_history: bool = False,
    ):
        super().__init__(loss, regularization, schedule, record_history)
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = int(group_size)

    def _group_size(self, n: int, p: int) -> int:
        return min(self.group_size, n)

    def _mean_gradient(self, beta, x, y, gen) -> np.ndarray:
        return self._regularized_gradients(beta, x, y).mean(axis=0)


class LDPSGDTrainer(BaseSGDTrainer):
    """SGD where each iteration's gradients are collected under eps-LDP.

    The per-iteration gradient collection is itself a client/server
    protocol: the "pm"/"hm" methods run through the protocol layer
    (:class:`repro.protocol.encoders.MultidimNumericEncoder` on the
    client side, :class:`repro.protocol.accumulators.MultidimMeanAccumulator`
    on the server side), so gradient reports travel in the compact
    sampled wire format rather than dense d-vectors.

    Parameters
    ----------
    loss:
        Loss name ('linear', 'logistic', 'svm') or a Loss instance.
    epsilon:
        Per-user privacy budget; consumed entirely in the single
        iteration the user participates in.
    method:
        'pm' / 'hm' perturb with Algorithm 4; 'duchi' with Algorithm 3;
        'laplace' with per-coordinate Laplace at eps/p.
    group_size:
        Users per iteration; defaults to the Section V guidance.
    clip_bound:
        Entry-wise gradient clipping bound (the paper clips to [-1, 1]).
    num_shards, executor, max_workers:
        How each iteration's gradient reports are collected through
        :mod:`repro.runtime`.  The defaults (one shard, serial) run
        inline and are bitwise-identical to the pre-runtime trainer;
        ``num_shards > 1`` plans a sharded collection per iteration
        (seeded from the fit rng, so training stays reproducible).
    """

    def __init__(
        self,
        loss,
        epsilon: float,
        method: str = "hm",
        group_size: Optional[int] = None,
        regularization: float = 1e-4,
        schedule: Optional[Schedule] = None,
        clip_bound: float = 1.0,
        record_history: bool = False,
        num_shards: int = 1,
        executor: str = "serial",
        max_workers: Optional[int] = None,
    ):
        super().__init__(loss, regularization, schedule, record_history)
        self.epsilon = check_epsilon(epsilon)
        if method not in GRADIENT_METHODS:
            raise ValueError(
                f"method must be one of {GRADIENT_METHODS}, got {method!r}"
            )
        self.method = method
        self.group_size = group_size
        if clip_bound <= 0:
            raise ValueError(f"clip_bound must be positive, got {clip_bound}")
        self.clip_bound = float(clip_bound)
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.num_shards = int(num_shards)
        self.executor = executor
        self.max_workers = max_workers
        self._collector = None  # built lazily once p is known

    def _group_size(self, n: int, p: int) -> int:
        if self.group_size is not None:
            return min(int(self.group_size), n)
        return default_group_size(p, self.epsilon, n)

    def _build_perturber(self, p: int):
        if self.method in ("pm", "hm"):
            return MultidimNumericEncoder(
                MultidimNumericCollector(self.epsilon, p, self.method)
            )
        if self.method == "duchi":
            return DuchiMultidimMechanism(self.epsilon, p)
        return get_mechanism("laplace", self.epsilon / p)

    def fit(self, x, y, rng: RngLike = None) -> np.ndarray:
        # Rebuild the perturber for every fit: a cached one is sized for
        # the previous feature dimension p, so refitting on different
        # data would crash pm/hm with a shape error and — worse —
        # silently keep laplace's per-coordinate epsilon/p budget (a
        # privacy-accounting bug).
        self._collector = None
        return super().fit(x, y, rng)

    def _mean_gradient(self, beta, x, y, gen) -> np.ndarray:
        grads = self._regularized_gradients(beta, x, y)
        # Gradient clipping: every entry must lie in [-1, 1] before the
        # mechanisms see it (their domain requirement).
        clipped = clip_gradients(grads, self.clip_bound) / self.clip_bound
        p = clipped.shape[1]
        if self._collector is None:
            self._collector = self._build_perturber(p)
        if self.method in ("pm", "hm"):
            # The per-iteration collection is itself a protocol run;
            # route it through the runtime so group gradients can be
            # encoded on shards like any other workload.
            acc = run_auto(
                self._collector,
                clipped,
                gen,
                num_shards=self.num_shards,
                executor=self.executor,
                max_workers=self.max_workers,
            )
            return self.clip_bound * acc.estimate()
        if self.method == "duchi":
            noisy = self._collector.privatize(clipped, gen)
        else:  # per-coordinate Laplace at eps/p
            noisy = self._collector.privatize(clipped.ravel(), gen).reshape(
                clipped.shape
            )
        return self.clip_bound * noisy.mean(axis=0)
