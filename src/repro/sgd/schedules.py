"""Learning-rate schedules for (LDP-)SGD.

The paper uses the common gamma_t = O(1/sqrt(t)) schedule (Section V).
Schedules are callables t -> gamma_t with t starting at 1.
"""

from __future__ import annotations

import math
from typing import Callable

Schedule = Callable[[int], float]


def inverse_sqrt(eta: float = 0.1) -> Schedule:
    """gamma_t = eta / sqrt(t) — the paper's choice."""
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")

    def schedule(t: int) -> float:
        if t < 1:
            raise ValueError(f"iteration index starts at 1, got {t}")
        return eta / math.sqrt(t)

    return schedule


def constant(eta: float = 0.05) -> Schedule:
    """gamma_t = eta."""
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")

    def schedule(t: int) -> float:
        if t < 1:
            raise ValueError(f"iteration index starts at 1, got {t}")
        return eta

    return schedule


def inverse_time(eta: float = 0.5, decay: float = 0.1) -> Schedule:
    """gamma_t = eta / (1 + decay * t)."""
    if eta <= 0 or decay <= 0:
        raise ValueError("eta and decay must be positive")

    def schedule(t: int) -> float:
        if t < 1:
            raise ValueError(f"iteration index starts at 1, got {t}")
        return eta / (1.0 + decay * t)

    return schedule
