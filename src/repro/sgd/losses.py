"""Loss functions for the paper's three ERM tasks (Section V).

Each loss knows its per-sample value and per-sample gradient with respect
to the parameter vector beta:

* linear regression:   l(b; x, y) = (x.b - y)^2
* logistic regression: l(b; x, y) = log(1 + exp(-y x.b)),  y in {-1, +1}
* SVM (hinge):         l(b; x, y) = max(0, 1 - y x.b),     y in {-1, +1}

The L2 regularizer lambda/2 ||b||^2 is added by the trainer, matching the
paper's l'(b; x, y) = l(b; x, y) + lambda/2 ||b||^2.
"""

from __future__ import annotations

import abc
from typing import Dict, Type

import numpy as np


class Loss(abc.ABC):
    """A per-sample loss with value, gradient and prediction rule."""

    name: str = "abstract"

    #: Whether labels live in {-1, +1} (classification) or [-1, 1].
    binary_labels: bool = False

    @abc.abstractmethod
    def value(self, beta: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample loss values, shape (n,)."""

    @abc.abstractmethod
    def gradient(self, beta: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample gradients d l / d beta, shape (n, p)."""

    @abc.abstractmethod
    def predict(self, beta: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Predictions for feature matrix x."""

    def mean_value(self, beta: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """Average loss over all samples."""
        return float(self.value(beta, x, y).mean())

    # -- parameterization hooks (overridden by non-linear models) -------
    def parameter_dim(self, n_features: int) -> int:
        """Length of the parameter vector for n_features inputs."""
        return n_features

    def initial_parameters(self, n_features: int, rng=None) -> np.ndarray:
        """Starting point for SGD (zeros for the convex losses)."""
        return np.zeros(self.parameter_dim(n_features))

    def _check(self, beta: np.ndarray, x: np.ndarray, y: np.ndarray):
        beta = np.asarray(beta, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be (n, p), got ndim={x.ndim}")
        if beta.shape != (self.parameter_dim(x.shape[1]),):
            raise ValueError(
                f"beta shape {beta.shape} incompatible with x {x.shape}"
            )
        if y.shape != (x.shape[0],):
            raise ValueError(f"y shape {y.shape} incompatible with x {x.shape}")
        return beta, x, y


class LinearRegressionLoss(Loss):
    """Squared loss (x.b - y)^2; gradient 2 (x.b - y) x."""

    name = "linear"
    binary_labels = False

    def value(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        return (x @ beta - y) ** 2

    def gradient(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        residual = x @ beta - y
        return 2.0 * residual[:, None] * x

    def predict(self, beta, x):
        return np.asarray(x, dtype=float) @ np.asarray(beta, dtype=float)


class LogisticRegressionLoss(Loss):
    """Logistic loss log(1 + e^{-y x.b}); gradient -y sigma(-y x.b) x."""

    name = "logistic"
    binary_labels = True

    def value(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        margins = y * (x @ beta)
        # log(1 + e^{-m}) computed stably for both signs of m.
        return np.logaddexp(0.0, -margins)

    def gradient(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        margins = y * (x @ beta)
        # sigma(-m) = 1 / (1 + e^{m}); e^{-|m|} never overflows, and
        # sigma(-m) = e^{-m}/(1+e^{-m}) for m >= 0, 1/(1+e^{m}) for m < 0.
        exp_neg_abs = np.exp(-np.abs(margins))
        sig = np.where(
            margins >= 0,
            exp_neg_abs / (1.0 + exp_neg_abs),
            1.0 / (1.0 + exp_neg_abs),
        )
        return (-y * sig)[:, None] * x

    def predict(self, beta, x):
        """Class predictions in {-1, +1}."""
        scores = np.asarray(x, dtype=float) @ np.asarray(beta, dtype=float)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def predict_proba(self, beta, x):
        """P[y = +1 | x] under the logistic model."""
        scores = np.asarray(x, dtype=float) @ np.asarray(beta, dtype=float)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))


class HingeLoss(Loss):
    """SVM hinge loss max(0, 1 - y x.b); subgradient -y x on the margin."""

    name = "svm"
    binary_labels = True

    def value(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        return np.maximum(0.0, 1.0 - y * (x @ beta))

    def gradient(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        active = (y * (x @ beta)) < 1.0
        return np.where(active[:, None], (-y)[:, None] * x, 0.0)

    def predict(self, beta, x):
        """Class predictions in {-1, +1}."""
        scores = np.asarray(x, dtype=float) @ np.asarray(beta, dtype=float)
        return np.where(scores >= 0.0, 1.0, -1.0)


_LOSSES: Dict[str, Type[Loss]] = {
    cls.name: cls
    for cls in (LinearRegressionLoss, LogisticRegressionLoss, HingeLoss)
}


def get_loss(name: str) -> Loss:
    """Instantiate a loss by name: 'linear', 'logistic' or 'svm'."""
    try:
        return _LOSSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown loss {name!r}; available: {tuple(sorted(_LOSSES))}"
        ) from None
