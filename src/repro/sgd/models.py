"""High-level model wrappers around the SGD trainers.

These provide the scikit-learn-flavoured fit/predict surface used by the
examples and the Section VI-B experiment harnesses.  Each model fits with
either the LDP trainer (``epsilon`` given) or the non-private trainer
(``epsilon=None``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sgd.losses import get_loss
from repro.sgd.metrics import mean_squared_error, misclassification_rate
from repro.sgd.schedules import Schedule
from repro.sgd.trainer import LDPSGDTrainer, NonPrivateSGDTrainer
from repro.utils.rng import RngLike


class ERMModel:
    """Base fit/predict wrapper over one of the three losses."""

    loss_name: str = "abstract"

    #: Default inverse-sqrt learning rate, tuned per loss (logistic
    #: gradients are an order of magnitude smaller than hinge/squared).
    default_eta: float = 0.3

    def __init__(
        self,
        epsilon: Optional[float] = None,
        method: str = "hm",
        regularization: float = 1e-4,
        group_size: Optional[int] = None,
        schedule: Optional[Schedule] = None,
        clip_bound: float = 1.0,
    ):
        if schedule is None:
            from repro.sgd.schedules import inverse_sqrt

            schedule = inverse_sqrt(self.default_eta)
        self.epsilon = epsilon
        self.loss = self._make_loss()
        if epsilon is None:
            self.trainer = NonPrivateSGDTrainer(
                self.loss,
                regularization=regularization,
                schedule=schedule,
                group_size=group_size if group_size else 64,
            )
        else:
            self.trainer = LDPSGDTrainer(
                self.loss,
                epsilon=epsilon,
                method=method,
                group_size=group_size,
                regularization=regularization,
                schedule=schedule,
                clip_bound=clip_bound,
            )
        self.beta: Optional[np.ndarray] = None

    def _make_loss(self):
        """Build the Loss instance; subclasses with configured losses
        (e.g. the MLP) override this instead of using the registry."""
        return get_loss(self.loss_name)

    def fit(self, x, y, rng: RngLike = None) -> "ERMModel":
        """Train on (x, y); returns self for chaining."""
        self.beta = self.trainer.fit(x, y, rng)
        return self

    def _require_fitted(self):
        if self.beta is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def predict(self, x) -> np.ndarray:
        self._require_fitted()
        return self.loss.predict(self.beta, x)

    def score(self, x, y) -> float:
        """Task-appropriate error (lower is better)."""
        raise NotImplementedError


class LinearRegression(ERMModel):
    """Linear regression trained by (LDP-)SGD; scored by MSE (Fig. 11)."""

    loss_name = "linear"
    default_eta = 0.3

    def score(self, x, y) -> float:
        return mean_squared_error(self.predict(x), np.asarray(y, dtype=float))


class LogisticRegression(ERMModel):
    """Logistic regression; scored by misclassification rate (Fig. 9)."""

    loss_name = "logistic"
    default_eta = 2.0

    def score(self, x, y) -> float:
        return misclassification_rate(
            self.predict(x), np.asarray(y, dtype=float)
        )

    def predict_proba(self, x) -> np.ndarray:
        self._require_fitted()
        return self.loss.predict_proba(self.beta, x)


class SupportVectorMachine(ERMModel):
    """Linear SVM (hinge loss); scored by misclassification rate (Fig. 10)."""

    loss_name = "svm"
    default_eta = 1.0

    def score(self, x, y) -> float:
        return misclassification_rate(
            self.predict(x), np.asarray(y, dtype=float)
        )
