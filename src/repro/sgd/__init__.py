"""LDP-compliant stochastic gradient descent (the paper's Section V)."""

from repro.sgd.crossval import cross_validate, k_fold_indices
from repro.sgd.losses import (
    HingeLoss,
    LinearRegressionLoss,
    LogisticRegressionLoss,
    Loss,
    get_loss,
)
from repro.sgd.metrics import accuracy, mean_squared_error, misclassification_rate
from repro.sgd.mlp import MLPClassifier, MLPLoss
from repro.sgd.models import (
    ERMModel,
    LinearRegression,
    LogisticRegression,
    SupportVectorMachine,
)
from repro.sgd.schedules import constant, inverse_sqrt, inverse_time
from repro.sgd.trainer import (
    GRADIENT_METHODS,
    LDPSGDTrainer,
    NonPrivateSGDTrainer,
    TrainingHistory,
    clip_gradients,
    default_group_size,
)

__all__ = [
    "Loss",
    "LinearRegressionLoss",
    "LogisticRegressionLoss",
    "HingeLoss",
    "get_loss",
    "inverse_sqrt",
    "constant",
    "inverse_time",
    "LDPSGDTrainer",
    "NonPrivateSGDTrainer",
    "TrainingHistory",
    "clip_gradients",
    "default_group_size",
    "GRADIENT_METHODS",
    "ERMModel",
    "MLPClassifier",
    "MLPLoss",
    "LinearRegression",
    "LogisticRegression",
    "SupportVectorMachine",
    "mean_squared_error",
    "misclassification_rate",
    "accuracy",
    "cross_validate",
    "k_fold_indices",
]
