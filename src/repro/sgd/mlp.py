"""LDP-trained neural network — the paper's stated next step.

Section VIII: "we plan to apply the proposed solution to more complex
data analysis tasks such as deep neural networks."  This module takes
that step at minimal scale: a one-hidden-layer tanh network for binary
classification whose per-sample gradients are clipped to [-1, 1] and
collected with Algorithm 4 (PM/HM), exactly like the convex losses.

The network is expressed as a :class:`~repro.sgd.losses.Loss` over a
*flattened* parameter vector, so it plugs into both existing trainers
unchanged:

    theta = [W1 (h x p) | b1 (h) | w2 (h) | b2 (1)]

Forward pass: score(x) = w2 . tanh(W1 x + b1) + b2; loss is the
logistic loss on y * score, y in {-1, +1}.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sgd.losses import Loss
from repro.sgd.metrics import misclassification_rate
from repro.sgd.models import ERMModel
from repro.sgd.schedules import Schedule
from repro.utils.rng import ensure_rng


class MLPLoss(Loss):
    """Logistic loss of a one-hidden-layer tanh network.

    Parameters
    ----------
    hidden:
        Number of hidden units h.
    init_scale:
        Standard deviation of the random initialization (zeros would be
        a saddle point of the symmetric network).
    """

    name = "mlp"
    binary_labels = True

    def __init__(self, hidden: int = 8, init_scale: float = 0.3):
        hidden = int(hidden)
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        if init_scale <= 0:
            raise ValueError(f"init_scale must be positive, got {init_scale}")
        self.hidden = hidden
        self.init_scale = float(init_scale)

    # ------------------------------------------------------------------
    def parameter_dim(self, n_features: int) -> int:
        h = self.hidden
        return h * n_features + h + h + 1

    def initial_parameters(self, n_features: int, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        return gen.normal(
            0.0, self.init_scale, size=self.parameter_dim(n_features)
        )

    def _unpack(
        self, beta: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        h = self.hidden
        w1 = beta[: h * p].reshape(h, p)
        b1 = beta[h * p : h * p + h]
        w2 = beta[h * p + h : h * p + 2 * h]
        b2 = float(beta[-1])
        return w1, b1, w2, b2

    def _forward(self, beta: np.ndarray, x: np.ndarray):
        w1, b1, w2, b2 = self._unpack(beta, x.shape[1])
        hidden_activation = np.tanh(x @ w1.T + b1)
        scores = hidden_activation @ w2 + b2
        return hidden_activation, scores

    # ------------------------------------------------------------------
    def value(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        _, scores = self._forward(beta, x)
        return np.logaddexp(0.0, -y * scores)

    def gradient(self, beta, x, y):
        beta, x, y = self._check(beta, x, y)
        n, p = x.shape
        hidden_activation, scores = self._forward(beta, x)
        _, _, w2, _ = self._unpack(beta, p)

        margins = y * scores
        exp_neg_abs = np.exp(-np.abs(margins))
        sig = np.where(
            margins >= 0,
            exp_neg_abs / (1.0 + exp_neg_abs),
            1.0 / (1.0 + exp_neg_abs),
        )
        d_score = -y * sig  # (n,)

        d_w2 = d_score[:, None] * hidden_activation           # (n, h)
        d_b2 = d_score[:, None]                               # (n, 1)
        d_hidden = d_score[:, None] * w2[None, :]             # (n, h)
        d_pre = d_hidden * (1.0 - hidden_activation**2)       # (n, h)
        d_w1 = np.einsum("nh,np->nhp", d_pre, x)              # (n, h, p)
        d_b1 = d_pre                                          # (n, h)

        return np.concatenate(
            [d_w1.reshape(n, -1), d_b1, d_w2, d_b2], axis=1
        )

    def predict(self, beta, x):
        """Class predictions in {-1, +1}."""
        _, scores = self._forward(np.asarray(beta, float),
                                  np.asarray(x, float))
        return np.where(scores >= 0.0, 1.0, -1.0)

    def predict_proba(self, beta, x):
        """P[y = +1 | x] via the logistic link on the network score."""
        _, scores = self._forward(np.asarray(beta, float),
                                  np.asarray(x, float))
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))


class MLPClassifier(ERMModel):
    """One-hidden-layer network trained by (LDP-)SGD.

    With ``epsilon=None`` this is a plain neural network; with a budget
    it collects every gradient through Algorithm 4 (PM or HM), making it
    an LDP-compliant neural network trainer — the paper's future-work
    item, at laptop scale.

    Note the privacy accounting is identical to the convex case: each
    user participates in one iteration and her whole (clipped) gradient
    is perturbed under eps-LDP; the non-convexity changes nothing about
    the privacy argument, only the optimization landscape.
    """

    loss_name = "mlp"
    default_eta = 1.0

    def __init__(
        self,
        epsilon: Optional[float] = None,
        hidden: int = 8,
        method: str = "hm",
        regularization: float = 1e-4,
        group_size: Optional[int] = None,
        schedule: Optional[Schedule] = None,
        clip_bound: float = 1.0,
        init_scale: float = 0.3,
    ):
        self._mlp_loss = MLPLoss(hidden=hidden, init_scale=init_scale)
        if schedule is None:
            # The convex losses use the paper's 1/sqrt(t) schedule; the
            # non-convex network trains markedly better with a constant
            # step (the decaying step freezes it near its random init).
            from repro.sgd.schedules import constant

            schedule = constant(0.5)
        super().__init__(
            epsilon=epsilon,
            method=method,
            regularization=regularization,
            group_size=group_size,
            schedule=schedule,
            clip_bound=clip_bound,
        )

    def _make_loss(self):
        return self._mlp_loss

    @property
    def hidden(self) -> int:
        return self._mlp_loss.hidden

    def score(self, x, y) -> float:
        """Misclassification rate (lower is better)."""
        return misclassification_rate(
            self.predict(x), np.asarray(y, dtype=float)
        )

    def predict_proba(self, x) -> np.ndarray:
        self._require_fitted()
        return self._mlp_loss.predict_proba(self.beta, x)
