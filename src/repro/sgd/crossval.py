"""K-fold cross-validation, matching the paper's evaluation protocol.

Section VI-B assesses every method with 10-fold cross validation
(repeated 5 times).  ``cross_validate`` runs any model factory through
that protocol and returns the per-fold scores.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def k_fold_indices(n: int, k: int, rng: RngLike = None) -> List[np.ndarray]:
    """Partition {0..n-1} into k shuffled, near-equal folds."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    gen = ensure_rng(rng)
    order = gen.permutation(n)
    return [np.asarray(fold) for fold in np.array_split(order, k)]


def cross_validate(
    model_factory: Callable[[], object],
    x,
    y,
    k: int = 10,
    repeats: int = 1,
    rng: RngLike = None,
) -> List[float]:
    """Repeated k-fold CV; returns one test score per (repeat, fold).

    ``model_factory`` must return a fresh object with ``fit(x, y, rng)``
    and ``score(x, y)`` per call (e.g. a lambda building an
    :class:`~repro.sgd.models.ERMModel`).
    """
    gen = ensure_rng(rng)
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y disagree on the number of samples")
    scores: List[float] = []
    for _ in range(repeats):
        folds = k_fold_indices(x.shape[0], k, gen)
        for i, test_idx in enumerate(folds):
            train_idx = np.concatenate(
                [folds[j] for j in range(k) if j != i]
            )
            model = model_factory()
            model.fit(x[train_idx], y[train_idx], gen)
            scores.append(float(model.score(x[test_idx], y[test_idx])))
    return scores
