"""Evaluation metrics for the Section VI-B experiments."""

from __future__ import annotations

import numpy as np


def mean_squared_error(predictions, truth) -> float:
    """Regression MSE (Fig. 11's metric)."""
    predictions = np.asarray(predictions, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if predictions.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {truth.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot score empty predictions")
    return float(np.mean((predictions - truth) ** 2))


def misclassification_rate(predictions, truth) -> float:
    """Fraction of wrong class predictions (Figs. 9-10's metric)."""
    predictions = np.asarray(predictions)
    truth = np.asarray(truth)
    if predictions.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {truth.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot score empty predictions")
    return float(np.mean(predictions != truth))


def accuracy(predictions, truth) -> float:
    """1 - misclassification rate."""
    return 1.0 - misclassification_rate(predictions, truth)
