"""Fig. 8 — estimation accuracy vs dimensionality d (MX data).

The schema is truncated to its first d attributes, d in {5, 10, 15, 19}.
Expected shape: the composition baselines degrade super-linearly with d
while the proposed collectors degrade sub-linearly; the gap therefore
widens as d grows.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.data.census import make_mx_like
from repro.experiments.results import Row, format_table
from repro.experiments.runner import EstimationConfig, averaged_mixed_mse
from repro.utils.rng import ensure_rng

DEFAULT_DIMENSIONS = (5, 10, 15, 19)
NUMERIC_METHODS = ("laplace", "scdf", "duchi", "pm", "hm")


def _interleaved_names(schema, d: int) -> List[str]:
    """First d attributes mixing numeric and categorical, so every
    truncation keeps at least one attribute of each type."""
    numeric = [a.name for a in schema.numeric]
    categorical = [a.name for a in schema.categorical]
    interleaved: List[str] = []
    i = j = 0
    while len(interleaved) < schema.d:
        if i < len(numeric):
            interleaved.append(numeric[i])
            i += 1
        for _ in range(3):  # MX has ~3x as many categorical attributes
            if j < len(categorical) and len(interleaved) < schema.d:
                interleaved.append(categorical[j])
                j += 1
    return interleaved[:d]


def run(
    config: EstimationConfig = None,
    dimensions: Sequence[int] = DEFAULT_DIMENSIONS,
    epsilon: float = 1.0,
) -> List[Row]:
    """Sweep d at fixed eps; series encode metric/method."""
    config = config or EstimationConfig()
    gen = ensure_rng(config.seed)
    full = make_mx_like(config.n, rng=gen)
    rows: List[Row] = []
    for d in dimensions:
        dataset = full.select_attributes(_interleaved_names(full.schema, d))
        for method in NUMERIC_METHODS:
            mean_mse, freq_mse = averaged_mixed_mse(
                dataset, epsilon, method, config.repeats, gen
            )
            rows.append(
                Row(
                    experiment="fig08",
                    series=f"numeric/{method}",
                    x=float(d),
                    value=mean_mse,
                )
            )
            if method == "laplace":
                rows.append(
                    Row(
                        experiment="fig08",
                        series="categorical/oue-split",
                        x=float(d),
                        value=freq_mse,
                    )
                )
            elif method == "hm":
                rows.append(
                    Row(
                        experiment="fig08",
                        series="categorical/hm",
                        x=float(d),
                        value=freq_mse,
                    )
                )
    return rows


def main(config: EstimationConfig = None) -> List[Row]:
    rows = run(config)
    for panel in ("numeric", "categorical"):
        subset = [r for r in rows if r.series.startswith(panel + "/")]
        print(
            format_table(
                subset,
                title=f"Fig. 8 ({panel}): MSE vs dimensionality (MX, eps=1)",
                x_label="d",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
