"""Command-line entry point: ``python -m repro.experiments <id>``.

``<id>`` is a key of :data:`repro.experiments.EXPERIMENTS` (e.g.
``fig01``, ``table1``) or ``all`` to run everything in order.
"""

from __future__ import annotations

import sys

from repro.experiments import EXPERIMENTS
from repro.experiments.plotting import ascii_plot


def _maybe_plot(name, result) -> None:
    """Render an ASCII chart for row-producing experiments."""
    rows = result if isinstance(result, list) else []
    if not rows or not all(hasattr(r, "value") for r in rows):
        return
    values = [r.value for r in rows]
    log_y = all(v > 0 for v in values)
    if not log_y and max(values) == min(values):
        return
    try:
        print()
        print(ascii_plot(rows, log_y=log_y, title=f"{name} (chart)"))
    except ValueError:
        pass  # non-plottable data; the table above suffices


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    plot = "--plot" in argv
    argv = [a for a in argv if a != "--plot"]
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(EXPERIMENTS)
        print(
            "usage: python -m repro.experiments [--plot] <id>|all\n"
            f"  ids: {names}"
        )
        return 0
    target = argv[0]
    if target == "all":
        for name, module in EXPERIMENTS.items():
            print(f"=== {name} " + "=" * max(0, 66 - len(name)))
            result = module.main()
            if plot:
                _maybe_plot(name, result)
            print()
        return 0
    if target not in EXPERIMENTS:
        print(f"unknown experiment {target!r}; available: {list(EXPERIMENTS)}")
        return 2
    result = EXPERIMENTS[target].main()
    if plot:
        _maybe_plot(target, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
