"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(config) -> List[Row]`` returning the measured
series and ``main()`` printing the same rows the paper's artifact
reports.  Run any of them from the command line::

    python -m repro.experiments fig01
    python -m repro.experiments all
"""

from repro.experiments import (
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    table1,
)
from repro.experiments.erm import ERMConfig
from repro.experiments.plotting import ascii_plot, sparkline
from repro.experiments.results import Row, format_table, rows_to_series
from repro.experiments.runner import EstimationConfig

#: Registry of experiment id -> module with run()/main().
EXPERIMENTS = {
    "table1": table1,
    "fig01": fig01,
    "fig02": fig02,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
}

__all__ = [
    "EXPERIMENTS",
    "Row",
    "ascii_plot",
    "sparkline",
    "format_table",
    "rows_to_series",
    "EstimationConfig",
    "ERMConfig",
]
