"""Fig. 3 — worst-case variance of PM/HM as a fraction of Duchi's, d > 1.

The paper plots MaxVar_PM / MaxVar_Du and MaxVar_HM / MaxVar_Du for
d in {5, 10, 20, 40} over eps in (0, 8].  Expected shape: both ratios
stay below 1 everywhere (Corollary 2), with HM at most ~0.77.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.results import Row, format_table
from repro.theory.variance import worst_variance_ratio_vs_duchi

DEFAULT_DIMENSIONS = (5, 10, 20, 40)
DEFAULT_EPSILONS = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0)


def run(
    dimensions: Sequence[int] = DEFAULT_DIMENSIONS,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
) -> List[Row]:
    """Variance ratios for every (mechanism, d, eps) combination."""
    rows: List[Row] = []
    for d in dimensions:
        for eps in epsilons:
            for mech in ("pm", "hm"):
                rows.append(
                    Row(
                        experiment="fig03",
                        series=f"{mech.upper()} d={d}",
                        x=float(eps),
                        value=worst_variance_ratio_vs_duchi(eps, d, mech),
                    )
                )
    return rows


def main() -> List[Row]:
    rows = run()
    print(
        format_table(
            rows,
            title=(
                "Fig. 3: worst-case variance of PM/HM as a fraction of "
                "Duchi et al.'s (multidimensional)"
            ),
            x_label="eps",
            value_format="{:.4f}",
        )
    )
    return rows


if __name__ == "__main__":
    main()
