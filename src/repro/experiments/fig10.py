"""Fig. 10 — SVM misclassification rate vs eps (BR/MX).

Expected shape: as Fig. 9; for moderate-to-large eps PM/HM approach the
non-private reference.
"""

from __future__ import annotations

from typing import List

from repro.experiments.erm import ERMConfig, run_task
from repro.experiments.results import Row, format_table


def run(config: ERMConfig = None) -> List[Row]:
    return run_task("svm", config)


def main(config: ERMConfig = None) -> List[Row]:
    rows = run(config)
    for ds_name in ("BR", "MX"):
        subset = [r for r in rows if r.series.startswith(ds_name + "/")]
        print(
            format_table(
                subset,
                title=(
                    f"Fig. 10 ({ds_name}): SVM misclassification rate "
                    "vs privacy budget"
                ),
                x_label="eps",
                value_format="{:.4f}",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
