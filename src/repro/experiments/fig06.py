"""Fig. 6 — uniform and power-law distributed numeric data.

Same protocol as Fig. 5 but with 16 iid Uniform[-1, 1] attributes
(panel a) and 16 attributes with pdf proportional to (x+2)^{-10}
(panel b).  Expected shape: same ordering as Fig. 5 — PM/HM < Duchi <<
Laplace/SCDF.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.data.synthetic import power_law_matrix, uniform_matrix
from repro.experiments.results import Row, format_table
from repro.experiments.runner import EstimationConfig, averaged_numeric_mse
from repro.utils.rng import ensure_rng

METHODS = ("laplace", "scdf", "duchi", "pm", "hm")
DIMENSION = 16

DISTRIBUTIONS: Dict[str, Callable] = {
    "uniform": uniform_matrix,
    "powerlaw": power_law_matrix,
}


def run(config: EstimationConfig = None) -> List[Row]:
    """Both panels; series names are '<distribution>/<method>'."""
    config = config or EstimationConfig()
    gen = ensure_rng(config.seed)
    rows: List[Row] = []
    for dist_name, factory in DISTRIBUTIONS.items():
        matrix = factory(config.n, DIMENSION, rng=gen)
        for eps in config.epsilons:
            for method in METHODS:
                rows.append(
                    Row(
                        experiment="fig06",
                        series=f"{dist_name}/{method}",
                        x=eps,
                        value=averaged_numeric_mse(
                            matrix, eps, method, config.repeats, gen
                        ),
                    )
                )
    return rows


def main(config: EstimationConfig = None) -> List[Row]:
    rows = run(config)
    for dist_name in DISTRIBUTIONS:
        subset = [r for r in rows if r.series.startswith(dist_name + "/")]
        print(
            format_table(
                subset,
                title=f"Fig. 6 ({dist_name}): MSE vs privacy budget",
                x_label="eps",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
