"""Fig. 11 — linear regression MSE vs eps (BR/MX).

The paper omits Laplace from this plot (its MSE is off the chart); we
keep it for completeness.  Expected shape: PM/HM below Duchi at every
eps, converging towards the non-private MSE.
"""

from __future__ import annotations

from typing import List

from repro.experiments.erm import ERMConfig, run_task
from repro.experiments.results import Row, format_table


def run(config: ERMConfig = None) -> List[Row]:
    return run_task("linear", config)


def main(config: ERMConfig = None) -> List[Row]:
    rows = run(config)
    for ds_name in ("BR", "MX"):
        subset = [r for r in rows if r.series.startswith(ds_name + "/")]
        print(
            format_table(
                subset,
                title=(
                    f"Fig. 11 ({ds_name}): linear regression MSE "
                    "vs privacy budget"
                ),
                x_label="eps",
                value_format="{:.4f}",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
