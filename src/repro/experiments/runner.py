"""Shared sweep machinery for the Section VI experiment reproductions.

Two workload families cover Figs. 4-8:

* numeric-only matrices (synthetic Gaussian / uniform / power-law data,
  Figs. 5-6, and the numeric halves of Figs. 7-8), measured by
  :func:`numeric_matrix_mse`;
* mixed numeric+categorical datasets (BR/MX-like, Fig. 4 and the
  categorical halves of Figs. 7-8), measured by :func:`mixed_dataset_mse`.

Every point is averaged over ``repeats`` independent runs (the paper
averages 100 runs; the default here is laptop-sized and configurable).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.duchi import DuchiMultidimMechanism
from repro.core.mechanism import get_mechanism
from repro.data.schema import Dataset
from repro.multidim.splitting import SplitCompositionBaseline
from repro.protocol import Protocol
from repro.runtime import run_auto
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.stats import empirical_mse

#: Method labels used across the estimation experiments.  "pm"/"hm" are
#: the proposed Algorithm 4 / Section IV-C collectors; the rest are the
#: Section VI-A best-effort baselines.
ESTIMATION_METHODS = ("laplace", "scdf", "staircase", "duchi", "pm", "hm")


@dataclass
class EstimationConfig:
    """Knobs shared by the Figs. 4-8 harnesses."""

    n: int = 50_000
    repeats: int = 5
    epsilons: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    seed: int = 2019


def _collect(protocol: Protocol, values, gen, num_shards: int,
             executor: str, max_workers):
    """Run one collection through the runtime layer.

    One serial shard (the default) is the inline path — bitwise-
    identical to the pre-runtime ``Protocol.run`` (same rng stream
    consumption).  Anything else plans a sharded run whose seed is
    drawn from ``gen``, keeping the sweep reproducible end to end.
    """
    return run_auto(
        protocol,
        values,
        gen,
        num_shards=num_shards,
        executor=executor,
        max_workers=max_workers,
    ).estimate()


def _warn_unshardable(method: str, num_shards: int, executor: str) -> None:
    """The baseline methods run outside the protocol/runtime layer, so
    sharding knobs cannot be honored for them — say so instead of
    silently running serially."""
    if num_shards != 1 or executor != "serial":
        warnings.warn(
            f"num_shards/executor are ignored for method {method!r}: only "
            "the pm/hm protocol paths run through the sharded runtime",
            UserWarning,
            stacklevel=3,
        )


def numeric_matrix_mse(
    matrix: np.ndarray,
    epsilon: float,
    method: str,
    rng: RngLike = None,
    num_shards: int = 1,
    executor: str = "serial",
    max_workers=None,
) -> float:
    """One run: MSE of estimated vs true attribute means, numeric data.

    * "pm"/"hm": Algorithm 4 at full budget, through the sharded
      runtime (``num_shards``/``executor`` select the parallel plan;
      the defaults run inline on this machine);
    * "duchi":   Algorithm 3 at full budget;
    * "laplace"/"scdf"/"staircase": per-attribute 1-D mechanism at eps/d
      (the composition baseline).
    """
    gen = ensure_rng(rng)
    matrix = np.asarray(matrix, dtype=float)
    d = matrix.shape[1]
    truth = matrix.mean(axis=0)
    if method in ("pm", "hm"):
        estimates = _collect(
            Protocol.multidim(epsilon, d=d, mechanism=method),
            matrix, gen, num_shards, executor, max_workers,
        )
    elif method == "duchi":
        _warn_unshardable(method, num_shards, executor)
        mech = DuchiMultidimMechanism(epsilon, d)
        estimates = mech.privatize(matrix, gen).mean(axis=0)
    elif method in ("laplace", "scdf", "staircase"):
        _warn_unshardable(method, num_shards, executor)
        one_d = get_mechanism(method, epsilon / d)
        # One vectorized privatize over the transposed matrix replaces
        # the former per-column loop; row j of matrix.T is column j of
        # the data, and the row means are the per-attribute estimates.
        # Mechanisms drawing one variate per value (Laplace) consume
        # the rng stream exactly as the loop did; the piecewise-constant
        # mechanisms regroup their data-dependent draws across columns
        # (same distribution, different variates).
        estimates = one_d.privatize(matrix.T, gen).mean(axis=1)
    else:
        raise ValueError(
            f"method must be one of {ESTIMATION_METHODS}, got {method!r}"
        )
    return empirical_mse(estimates, truth)


def averaged_numeric_mse(
    matrix: np.ndarray,
    epsilon: float,
    method: str,
    repeats: int,
    rng: RngLike = None,
) -> float:
    """Mean over ``repeats`` independent runs of :func:`numeric_matrix_mse`."""
    rngs = spawn_rngs(rng, repeats)
    return float(
        np.mean(
            [numeric_matrix_mse(matrix, epsilon, method, r) for r in rngs]
        )
    )


def mixed_dataset_mse(
    dataset: Dataset,
    epsilon: float,
    method: str,
    rng: RngLike = None,
    truth_means: Optional[Dict[str, float]] = None,
    truth_freqs: Optional[Dict[str, np.ndarray]] = None,
    num_shards: int = 1,
    executor: str = "serial",
    max_workers=None,
) -> Tuple[float, float]:
    """One run: (numeric-mean MSE, frequency MSE) on a mixed dataset.

    "pm"/"hm" run the proposed Section IV-C collector (OUE inside)
    through the sharded runtime; the baselines run the Section VI-A
    composition combination with the given numeric method and
    per-attribute OUE.
    """
    gen = ensure_rng(rng)
    if truth_means is None:
        truth_means = dataset.true_numeric_means()
    if truth_freqs is None:
        truth_freqs = dataset.true_categorical_frequencies()
    if method in ("pm", "hm"):
        estimates = _collect(
            Protocol.multidim(epsilon, schema=dataset.schema,
                              mechanism=method),
            dataset, gen, num_shards, executor, max_workers,
        )
    elif method in ("laplace", "scdf", "staircase", "duchi"):
        _warn_unshardable(method, num_shards, executor)
        baseline = SplitCompositionBaseline(
            dataset.schema, epsilon, numeric_method=method
        )
        estimates = baseline.collect(dataset, gen)
    else:
        raise ValueError(
            f"method must be one of {ESTIMATION_METHODS}, got {method!r}"
        )
    mean_mse = estimates.mean_mse(truth_means) if estimates.means else float("nan")
    freq_mse = (
        estimates.frequency_mse(truth_freqs)
        if estimates.frequencies
        else float("nan")
    )
    return mean_mse, freq_mse


def averaged_mixed_mse(
    dataset: Dataset,
    epsilon: float,
    method: str,
    repeats: int,
    rng: RngLike = None,
) -> Tuple[float, float]:
    """Mean over repeats of :func:`mixed_dataset_mse` (both metrics)."""
    truth_means = dataset.true_numeric_means()
    truth_freqs = dataset.true_categorical_frequencies()
    pairs = [
        mixed_dataset_mse(dataset, epsilon, method, r, truth_means, truth_freqs)
        for r in spawn_rngs(rng, repeats)
    ]
    arr = np.asarray(pairs, dtype=float)
    return float(arr[:, 0].mean()), float(arr[:, 1].mean())
