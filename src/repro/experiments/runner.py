"""Shared sweep machinery for the Section VI experiment reproductions.

Two workload families cover Figs. 4-8:

* numeric-only matrices (synthetic Gaussian / uniform / power-law data,
  Figs. 5-6, and the numeric halves of Figs. 7-8), measured by
  :func:`numeric_matrix_mse`;
* mixed numeric+categorical datasets (BR/MX-like, Fig. 4 and the
  categorical halves of Figs. 7-8), measured by :func:`mixed_dataset_mse`.

Every point is averaged over ``repeats`` independent runs (the paper
averages 100 runs; the default here is laptop-sized and configurable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.duchi import DuchiMultidimMechanism
from repro.core.mechanism import get_mechanism
from repro.data.schema import Dataset
from repro.multidim.splitting import SplitCompositionBaseline
from repro.protocol import Protocol
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.stats import empirical_mse

#: Method labels used across the estimation experiments.  "pm"/"hm" are
#: the proposed Algorithm 4 / Section IV-C collectors; the rest are the
#: Section VI-A best-effort baselines.
ESTIMATION_METHODS = ("laplace", "scdf", "staircase", "duchi", "pm", "hm")


@dataclass
class EstimationConfig:
    """Knobs shared by the Figs. 4-8 harnesses."""

    n: int = 50_000
    repeats: int = 5
    epsilons: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    seed: int = 2019


def numeric_matrix_mse(
    matrix: np.ndarray, epsilon: float, method: str, rng: RngLike = None
) -> float:
    """One run: MSE of estimated vs true attribute means, numeric data.

    * "pm"/"hm": Algorithm 4 at full budget;
    * "duchi":   Algorithm 3 at full budget;
    * "laplace"/"scdf"/"staircase": per-attribute 1-D mechanism at eps/d
      (the composition baseline).
    """
    gen = ensure_rng(rng)
    matrix = np.asarray(matrix, dtype=float)
    d = matrix.shape[1]
    truth = matrix.mean(axis=0)
    if method in ("pm", "hm"):
        estimates = Protocol.multidim(epsilon, d=d, mechanism=method).run(
            matrix, gen
        )
    elif method == "duchi":
        mech = DuchiMultidimMechanism(epsilon, d)
        estimates = mech.privatize(matrix, gen).mean(axis=0)
    elif method in ("laplace", "scdf", "staircase"):
        one_d = get_mechanism(method, epsilon / d)
        estimates = np.array(
            [one_d.privatize(matrix[:, j], gen).mean() for j in range(d)]
        )
    else:
        raise ValueError(
            f"method must be one of {ESTIMATION_METHODS}, got {method!r}"
        )
    return empirical_mse(estimates, truth)


def averaged_numeric_mse(
    matrix: np.ndarray,
    epsilon: float,
    method: str,
    repeats: int,
    rng: RngLike = None,
) -> float:
    """Mean over ``repeats`` independent runs of :func:`numeric_matrix_mse`."""
    rngs = spawn_rngs(rng, repeats)
    return float(
        np.mean(
            [numeric_matrix_mse(matrix, epsilon, method, r) for r in rngs]
        )
    )


def mixed_dataset_mse(
    dataset: Dataset,
    epsilon: float,
    method: str,
    rng: RngLike = None,
    truth_means: Optional[Dict[str, float]] = None,
    truth_freqs: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[float, float]:
    """One run: (numeric-mean MSE, frequency MSE) on a mixed dataset.

    "pm"/"hm" run the proposed Section IV-C collector (OUE inside); the
    baselines run the Section VI-A composition combination with the given
    numeric method and per-attribute OUE.
    """
    gen = ensure_rng(rng)
    if truth_means is None:
        truth_means = dataset.true_numeric_means()
    if truth_freqs is None:
        truth_freqs = dataset.true_categorical_frequencies()
    if method in ("pm", "hm"):
        estimates = Protocol.multidim(
            epsilon, schema=dataset.schema, mechanism=method
        ).run(dataset, gen)
    elif method in ("laplace", "scdf", "staircase", "duchi"):
        baseline = SplitCompositionBaseline(
            dataset.schema, epsilon, numeric_method=method
        )
        estimates = baseline.collect(dataset, gen)
    else:
        raise ValueError(
            f"method must be one of {ESTIMATION_METHODS}, got {method!r}"
        )
    mean_mse = estimates.mean_mse(truth_means) if estimates.means else float("nan")
    freq_mse = (
        estimates.frequency_mse(truth_freqs)
        if estimates.frequencies
        else float("nan")
    )
    return mean_mse, freq_mse


def averaged_mixed_mse(
    dataset: Dataset,
    epsilon: float,
    method: str,
    repeats: int,
    rng: RngLike = None,
) -> Tuple[float, float]:
    """Mean over repeats of :func:`mixed_dataset_mse` (both metrics)."""
    truth_means = dataset.true_numeric_means()
    truth_freqs = dataset.true_categorical_frequencies()
    pairs = [
        mixed_dataset_mse(dataset, epsilon, method, r, truth_means, truth_freqs)
        for r in spawn_rngs(rng, repeats)
    ]
    arr = np.asarray(pairs, dtype=float)
    return float(arr[:, 0].mean()), float(arr[:, 1].mean())
