"""Fig. 7 — estimation accuracy vs the number of users n (MX data).

Panel (a): numeric-mean MSE for Laplace/SCDF/Duchi/PM/HM.  Panel (b):
frequency MSE for per-attribute OUE vs the proposed collector.  Expected
shape: every curve decays roughly as 1/n (Lemma 5), with the proposed
solutions below the baselines at every n.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.data.census import make_mx_like
from repro.experiments.results import Row, format_table
from repro.experiments.runner import EstimationConfig, averaged_mixed_mse
from repro.utils.rng import ensure_rng

#: User counts; the paper sweeps 0.25M..4M — scaled to laptop size here.
DEFAULT_USER_COUNTS = (12_500, 25_000, 50_000, 100_000)
NUMERIC_METHODS = ("laplace", "scdf", "duchi", "pm", "hm")


def run(
    config: EstimationConfig = None,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    epsilon: float = 1.0,
) -> List[Row]:
    """Sweep n at fixed eps; series encode metric/method."""
    config = config or EstimationConfig()
    gen = ensure_rng(config.seed)
    rows: List[Row] = []
    for n in user_counts:
        dataset = make_mx_like(n, rng=gen)
        for method in NUMERIC_METHODS:
            mean_mse, freq_mse = averaged_mixed_mse(
                dataset, epsilon, method, config.repeats, gen
            )
            rows.append(
                Row(
                    experiment="fig07",
                    series=f"numeric/{method}",
                    x=float(n),
                    value=mean_mse,
                )
            )
            if method == "laplace":
                rows.append(
                    Row(
                        experiment="fig07",
                        series="categorical/oue-split",
                        x=float(n),
                        value=freq_mse,
                    )
                )
            elif method == "hm":
                rows.append(
                    Row(
                        experiment="fig07",
                        series="categorical/hm",
                        x=float(n),
                        value=freq_mse,
                    )
                )
    return rows


def main(config: EstimationConfig = None) -> List[Row]:
    rows = run(config)
    for panel in ("numeric", "categorical"):
        subset = [r for r in rows if r.series.startswith(panel + "/")]
        print(
            format_table(
                subset,
                title=f"Fig. 7 ({panel}): MSE vs number of users (MX, eps=1)",
                x_label="n",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
