"""Table I — worst-case noise variance ordering of HM, PM and Duchi.

Reproduces the paper's regime table:

    d > 1, eps > 0:            MaxVarHM < MaxVarPM < MaxVarDu
    d = 1, eps > eps#:         MaxVarHM < MaxVarPM < MaxVarDu
    d = 1, eps = eps#:         MaxVarHM < MaxVarPM = MaxVarDu
    d = 1, eps* < eps < eps#:  MaxVarHM < MaxVarDu < MaxVarPM
    d = 1, 0 < eps <= eps*:    MaxVarHM = MaxVarDu < MaxVarPM

``run`` evaluates the three worst-case variances at representative
epsilons in each regime (and several d for the d > 1 block) and checks
the predicted ordering; ``main`` prints the verification table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.theory.constants import EPSILON_SHARP, EPSILON_STAR
from repro.theory.variance import (
    duchi_1d_worst_variance,
    duchi_md_worst_variance,
    hm_md_worst_variance,
    hm_worst_variance,
    pm_md_worst_variance,
    pm_worst_variance,
)

#: Comparison tolerance for "equal" cells of the table.
EQUAL_RTOL = 1e-9


@dataclass(frozen=True)
class RegimeCheck:
    """One verified cell of Table I."""

    regime: str
    d: int
    epsilon: float
    var_hm: float
    var_pm: float
    var_duchi: float
    expected: str
    holds: bool


def _ordering(var_hm: float, var_pm: float, var_duchi: float) -> str:
    """Symbolic ordering string like 'HM < PM < Du' with ties detected."""

    def rel(a: float, b: float) -> str:
        if math.isclose(a, b, rel_tol=EQUAL_RTOL):
            return "="
        return "<" if a < b else ">"

    pairs = sorted(
        [("HM", var_hm), ("PM", var_pm), ("Du", var_duchi)],
        key=lambda item: item[1],
    )
    return (
        f"{pairs[0][0]} {rel(pairs[0][1], pairs[1][1])} "
        f"{pairs[1][0]} {rel(pairs[1][1], pairs[2][1])} {pairs[2][0]}"
    )


def run(dimensions=(2, 5, 10, 40)) -> List[RegimeCheck]:
    """Verify every regime of Table I; returns one check per case."""
    checks: List[RegimeCheck] = []

    # --- d = 1 regimes -------------------------------------------------
    one_d_cases = [
        ("eps > eps#", EPSILON_SHARP * 1.5, "HM < PM < Du"),
        ("eps > eps#", 4.0, "HM < PM < Du"),
        ("eps = eps#", EPSILON_SHARP, "HM < PM = Du"),
        ("eps* < eps < eps#", (EPSILON_STAR + EPSILON_SHARP) / 2.0, "HM < Du < PM"),
        ("0 < eps <= eps*", EPSILON_STAR, "HM = Du < PM"),
        ("0 < eps <= eps*", 0.3, "HM = Du < PM"),
    ]
    for regime, eps, expected in one_d_cases:
        var_hm = hm_worst_variance(eps)
        var_pm = pm_worst_variance(eps)
        var_du = duchi_1d_worst_variance(eps)
        observed = _ordering(var_hm, var_pm, var_du)
        checks.append(
            RegimeCheck(
                regime=regime,
                d=1,
                epsilon=eps,
                var_hm=var_hm,
                var_pm=var_pm,
                var_duchi=var_du,
                expected=expected,
                holds=(observed == expected),
            )
        )

    # --- d > 1: HM < PM < Du everywhere --------------------------------
    for d in dimensions:
        for eps in (0.3, EPSILON_STAR, 1.0, EPSILON_SHARP, 2.0, 4.0, 8.0):
            var_hm = hm_md_worst_variance(eps, d)
            var_pm = pm_md_worst_variance(eps, d)
            var_du = duchi_md_worst_variance(eps, d)
            observed = _ordering(var_hm, var_pm, var_du)
            checks.append(
                RegimeCheck(
                    regime="d > 1",
                    d=d,
                    epsilon=eps,
                    var_hm=var_hm,
                    var_pm=var_pm,
                    var_duchi=var_du,
                    expected="HM < PM < Du",
                    holds=(observed == "HM < PM < Du"),
                )
            )
    return checks


def main() -> List[RegimeCheck]:
    """Print the Table I verification and return the checks."""
    checks = run()
    print(f"Table I verification (eps* = {EPSILON_STAR:.4f}, "
          f"eps# = {EPSILON_SHARP:.4f})")
    header = (
        f"{'regime':<20}{'d':>4}{'eps':>9}{'MaxVarHM':>13}"
        f"{'MaxVarPM':>13}{'MaxVarDu':>13}  {'expected':<16}{'holds'}"
    )
    print(header)
    print("-" * len(header))
    for c in checks:
        print(
            f"{c.regime:<20}{c.d:>4}{c.epsilon:>9.4f}{c.var_hm:>13.5f}"
            f"{c.var_pm:>13.5f}{c.var_duchi:>13.5f}  {c.expected:<16}"
            f"{'yes' if c.holds else 'NO'}"
        )
    return checks


if __name__ == "__main__":
    main()
