"""Fig. 5 — 16-dimensional truncated Gaussian data, mu in {0, 1/3, 2/3, 1}.

Numeric-only workload isolating the mechanism comparison from the
categorical/OUE budget split.  Expected shape: PM and HM beat Duchi at
every (mu, eps); the margin is largest at mu = 0 where inputs are small
in magnitude (PM's variance shrinks with |t|); Laplace/SCDF trail badly
because of eps/d splitting.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.data.synthetic import truncated_gaussian_matrix
from repro.experiments.results import Row, format_table
from repro.experiments.runner import EstimationConfig, averaged_numeric_mse
from repro.utils.rng import ensure_rng

DEFAULT_MUS = (0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0)
METHODS = ("laplace", "scdf", "duchi", "pm", "hm")

#: The paper's Fig. 5 dimensionality and noise scale.
DIMENSION = 16
SIGMA = 0.25


def run(
    config: EstimationConfig = None, mus: Sequence[float] = DEFAULT_MUS
) -> List[Row]:
    """One panel per mu; series are methods, x is eps."""
    config = config or EstimationConfig()
    gen = ensure_rng(config.seed)
    rows: List[Row] = []
    for mu in mus:
        matrix = truncated_gaussian_matrix(
            config.n, DIMENSION, mu, SIGMA, rng=gen
        )
        for eps in config.epsilons:
            for method in METHODS:
                rows.append(
                    Row(
                        experiment="fig05",
                        series=f"mu={mu:.2f}/{method}",
                        x=eps,
                        value=averaged_numeric_mse(
                            matrix, eps, method, config.repeats, gen
                        ),
                    )
                )
    return rows


def main(config: EstimationConfig = None) -> List[Row]:
    rows = run(config)
    for mu in DEFAULT_MUS:
        subset = [r for r in rows if r.series.startswith(f"mu={mu:.2f}/")]
        print(
            format_table(
                subset,
                title=(
                    f"Fig. 5 (mu={mu:.2f}): MSE on 16-dim truncated "
                    "Gaussian data"
                ),
                x_label="eps",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
