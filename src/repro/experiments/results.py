"""Result rows and plain-text table rendering for the experiment harness.

Every experiment module returns a list of :class:`Row` objects — one per
(series, x) point, mirroring one line sample of the paper's plots — and
``format_table`` renders them the way the paper's figures tabulate:
series as rows, x values as columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Row:
    """One measured point: series name, x-coordinate, y value."""

    experiment: str
    series: str
    x: float
    value: float
    extra: tuple = field(default_factory=tuple)


def rows_to_series(rows: Sequence[Row]) -> Dict[str, Dict[float, float]]:
    """Group rows into {series: {x: value}}."""
    out: Dict[str, Dict[float, float]] = {}
    for row in rows:
        out.setdefault(row.series, {})[row.x] = row.value
    return out


def format_table(
    rows: Sequence[Row],
    title: str = "",
    x_label: str = "x",
    value_format: str = "{:.3e}",
) -> str:
    """Render rows as an aligned text table (series x x-grid)."""
    if not rows:
        return f"{title}\n(no rows)"
    series = rows_to_series(rows)
    xs = sorted({row.x for row in rows})
    name_width = max(len(s) for s in series) + 2
    col_width = max(
        max(len(value_format.format(v)) for m in series.values() for v in m.values()),
        max(len(f"{x:g}") for x in xs),
    ) + 2

    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{x_label:<{name_width}}" + "".join(
        f"{x:>{col_width}g}" for x in xs
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in series:
        cells = []
        for x in xs:
            if x in series[name]:
                cells.append(
                    f"{value_format.format(series[name][x]):>{col_width}}"
                )
            else:
                cells.append(f"{'-':>{col_width}}")
        lines.append(f"{name:<{name_width}}" + "".join(cells))
    return "\n".join(lines)
