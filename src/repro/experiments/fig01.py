"""Fig. 1 — worst-case noise variance vs eps for 1-D numeric data.

The paper plots Laplace, Duchi et al., PM and HM over eps in (0, 8];
SCDF and Staircase behave like Laplace and are added here for
completeness.  Expected shape: Duchi flattens above 1 (its variance
never drops below 1), Laplace decays as 8/eps^2 and crosses Duchi near
eps ~= 2, PM crosses Duchi at eps# ~= 1.29, and HM is the lower envelope
everywhere.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.results import Row, format_table
from repro.theory.variance import (
    duchi_1d_worst_variance,
    hm_worst_variance,
    laplace_variance,
    pm_worst_variance,
    scdf_variance,
    staircase_variance,
)

#: Default eps grid (matches the visible range of the paper's figure).
DEFAULT_EPSILONS = (0.25, 0.5, 1.0, 1.29, 2.0, 3.0, 4.0, 6.0, 8.0)

SERIES = {
    "Laplace": laplace_variance,
    "SCDF": scdf_variance,
    "Staircase": staircase_variance,
    "Duchi": duchi_1d_worst_variance,
    "PM": pm_worst_variance,
    "HM": hm_worst_variance,
}


def run(epsilons: Sequence[float] = DEFAULT_EPSILONS) -> List[Row]:
    """Worst-case variance of every mechanism on the eps grid."""
    rows: List[Row] = []
    for eps in epsilons:
        for name, fn in SERIES.items():
            rows.append(
                Row(experiment="fig01", series=name, x=float(eps), value=fn(eps))
            )
    return rows


def main() -> List[Row]:
    rows = run()
    print(
        format_table(
            rows,
            title="Fig. 1: worst-case noise variance (1-D) vs privacy budget",
            x_label="eps",
            value_format="{:.4f}",
        )
    )
    return rows


if __name__ == "__main__":
    main()
