"""Terminal (ASCII) line charts for experiment results.

The paper's figures are log-log MSE plots; this renders the same series
as a character grid so `python -m repro.experiments figNN` shows shape
at a glance without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.experiments.results import Row, rows_to_series

#: Glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scale plot requires positive values")
        return math.log10(value)
    return value


def ascii_plot(
    rows: Sequence[Row],
    width: int = 64,
    height: int = 18,
    log_y: bool = True,
    title: str = "",
    x_label: str = "x",
) -> str:
    """Render rows as an ASCII chart (one marker glyph per series).

    The y axis is log10 by default (the paper's MSE plots); x positions
    are rank-spaced over the sorted distinct x values, matching the
    paper's categorical eps axes.
    """
    if not rows:
        return f"{title}\n(no data)"
    series = rows_to_series(rows)
    xs = sorted({row.x for row in rows})
    ys = [_transform(v, log_y) for m in series.values() for v in m.values()]
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    x_pos = {
        x: int(round(i * (width - 1) / max(len(xs) - 1, 1)))
        for i, x in enumerate(xs)
    }

    legend = []
    for marker, (name, curve) in zip(_MARKERS, series.items()):
        legend.append(f"{marker} = {name}")
        for x, value in curve.items():
            row_frac = (_transform(value, log_y) - y_min) / (y_max - y_min)
            r = (height - 1) - int(round(row_frac * (height - 1)))
            grid[r][x_pos[x]] = marker

    y_top = f"1e{y_max:+.1f}" if log_y else f"{y_max:.3g}"
    y_bottom = f"1e{y_min:+.1f}" if log_y else f"{y_min:.3g}"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_top:>10} ┐")
    for r, grid_row in enumerate(grid):
        lines.append(f"{'':>10} │{''.join(grid_row)}")
    lines.append(f"{y_bottom:>10} ┘" + "─" * width)
    tick_line = [" "] * width
    for x in xs:
        label = f"{x:g}"
        start = min(x_pos[x], width - len(label))
        for i, ch in enumerate(label):
            tick_line[start + i] = ch
    lines.append(f"{x_label:>10}  " + "".join(tick_line))
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """A one-line trend for quick printing: ▁▂▃▄▅▆▇█."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = [_transform(v, log) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return blocks[0] * len(vals)
    return "".join(
        blocks[int(round((v - lo) / (hi - lo) * (len(blocks) - 1)))]
        for v in vals
    )
