"""Fig. 2 — the Piecewise Mechanism's output density for t in {0, 0.5, 1}.

The paper's figure shows pdf(t* | t) as a 3-piece step function on
[-C, C]: a plateau [l(t), r(t)] at height p and wings at height p/e^eps.
``run`` samples the analytic pdf on a grid (and reports the plateau
endpoints); an empirical histogram check lives in the test suite.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.piecewise import PiecewiseMechanism
from repro.experiments.results import Row, format_table

DEFAULT_INPUTS = (0.0, 0.5, 1.0)


def run(
    epsilon: float = 1.0,
    inputs: Sequence[float] = DEFAULT_INPUTS,
    grid_size: int = 9,
) -> List[Row]:
    """Analytic pdf values of PM on a uniform grid over [-C, C]."""
    pm = PiecewiseMechanism(epsilon)
    grid = np.linspace(-pm.c, pm.c, grid_size)
    rows: List[Row] = []
    for t in inputs:
        density = pm.pdf(grid, t)
        for x, y in zip(grid, density):
            rows.append(
                Row(
                    experiment="fig02",
                    series=f"t={t:g}",
                    x=float(round(x, 4)),
                    value=float(y),
                )
            )
    return rows


def main() -> List[Row]:
    epsilon = 1.0
    pm = PiecewiseMechanism(epsilon)
    print(
        f"Fig. 2: PM output pdf at eps={epsilon} "
        f"(C={pm.c:.4f}, p={pm.p:.4f}, wing density={pm.p / np.exp(epsilon):.4f})"
    )
    for t in DEFAULT_INPUTS:
        print(
            f"  t={t:>4g}: plateau [l, r] = "
            f"[{float(pm.left(t)):+.4f}, {float(pm.right(t)):+.4f}]"
        )
    rows = run(epsilon)
    print(
        format_table(
            rows,
            title="pdf(t* = x | t) sampled on a uniform grid over [-C, C]:",
            x_label="x",
            value_format="{:.4f}",
        )
    )
    return rows


if __name__ == "__main__":
    main()
