"""Shared harness for the Section VI-B ERM experiments (Figs. 9-11).

Protocol (mirroring the paper): on BR-like and MX-like data, use
"total_income" as the dependent attribute and everything else, with
categorical attributes dummy-encoded, as features.  For classification
tasks, income is binarized at its mean.  Every method is assessed with
k-fold cross-validation; the paper uses 10-fold x 5 repeats, the default
here is laptop-sized and configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.census import INCOME, make_br_like, make_mx_like
from repro.experiments.results import Row
from repro.sgd.crossval import cross_validate
from repro.sgd.models import (
    LinearRegression,
    LogisticRegression,
    SupportVectorMachine,
)
from repro.utils.rng import ensure_rng

#: Perturbation methods compared in Figs. 9-11 (plus the non-private line).
ERM_METHODS = ("laplace", "duchi", "pm", "hm")

TASK_MODELS = {
    "linear": LinearRegression,
    "logistic": LogisticRegression,
    "svm": SupportVectorMachine,
}


@dataclass
class ERMConfig:
    """Knobs shared by the Figs. 9-11 harnesses."""

    n: int = 30_000
    folds: int = 5
    repeats: int = 1
    epsilons: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    seed: int = 2019
    regularization: float = 1e-4


def prepare_task_data(
    dataset, task: str
) -> Tuple[np.ndarray, np.ndarray]:
    """(X, y) for a task: dummy-encoded features, income as target.

    Classification tasks binarize income at its mean into {-1, +1}
    (Section VI-B).
    """
    x, y = dataset.to_erm_features(INCOME)
    if TASK_MODELS[task].loss_name != "linear":
        y = np.where(y > y.mean(), 1.0, -1.0)
    return x, y


def run_task(task: str, config: ERMConfig = None) -> List[Row]:
    """Cross-validated error of every method on BR and MX.

    Series are '<dataset>/<method>'; x is eps.  The non-private
    reference appears once per dataset at every eps (a flat line, as in
    the paper's figures).
    """
    if task not in TASK_MODELS:
        raise ValueError(
            f"task must be one of {tuple(TASK_MODELS)}, got {task!r}"
        )
    config = config or ERMConfig()
    gen = ensure_rng(config.seed)
    model_cls = TASK_MODELS[task]
    experiment = {"logistic": "fig09", "svm": "fig10", "linear": "fig11"}[task]

    rows: List[Row] = []
    for ds_name, factory in (("BR", make_br_like), ("MX", make_mx_like)):
        dataset = factory(config.n, rng=gen)
        x, y = prepare_task_data(dataset, task)

        non_private_scores = cross_validate(
            lambda: model_cls(
                epsilon=None, regularization=config.regularization
            ),
            x,
            y,
            k=config.folds,
            repeats=config.repeats,
            rng=gen,
        )
        non_private = float(np.mean(non_private_scores))

        for eps in config.epsilons:
            rows.append(
                Row(
                    experiment=experiment,
                    series=f"{ds_name}/non-private",
                    x=eps,
                    value=non_private,
                )
            )
            for method in ERM_METHODS:
                scores = cross_validate(
                    lambda: model_cls(
                        epsilon=eps,
                        method=method,
                        regularization=config.regularization,
                    ),
                    x,
                    y,
                    k=config.folds,
                    repeats=config.repeats,
                    rng=gen,
                )
                rows.append(
                    Row(
                        experiment=experiment,
                        series=f"{ds_name}/{method}",
                        x=eps,
                        value=float(np.mean(scores)),
                    )
                )
    return rows
