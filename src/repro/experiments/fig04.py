"""Fig. 4 — mean and frequency estimation accuracy on BR/MX-like data.

Panels (a)/(b): MSE of numeric-attribute mean estimates on BR and MX,
comparing Laplace / SCDF / Staircase / Duchi composition baselines with
the proposed PM/HM collectors.  Panels (c)/(d): MSE of categorical value
frequencies — per-attribute OUE at eps/d ("OUE") versus the proposed
Section IV-C collector.

Expected shape: the proposed solution wins on both metrics at every eps,
and the gap persists across the eps range.
"""

from __future__ import annotations

from typing import List

from repro.data.census import make_br_like, make_mx_like
from repro.experiments.results import Row, format_table
from repro.experiments.runner import EstimationConfig, averaged_mixed_mse
from repro.utils.rng import ensure_rng

#: Numeric-panel series (paper panels a/b).
NUMERIC_METHODS = ("laplace", "scdf", "staircase", "duchi", "pm", "hm")


def run(config: EstimationConfig = None) -> List[Row]:
    """All four panels; series names encode dataset/metric/method."""
    config = config or EstimationConfig()
    gen = ensure_rng(config.seed)
    rows: List[Row] = []
    for ds_name, factory in (("BR", make_br_like), ("MX", make_mx_like)):
        dataset = factory(config.n, rng=gen)
        for eps in config.epsilons:
            for method in NUMERIC_METHODS:
                mean_mse, freq_mse = averaged_mixed_mse(
                    dataset, eps, method, config.repeats, gen
                )
                rows.append(
                    Row(
                        experiment="fig04",
                        series=f"{ds_name}-numeric/{method}",
                        x=eps,
                        value=mean_mse,
                    )
                )
                # Categorical panel: the composition baselines all share
                # the same per-attribute OUE estimate; report it once
                # under "oue-split", plus the proposed collectors.
                if method in ("laplace",):
                    rows.append(
                        Row(
                            experiment="fig04",
                            series=f"{ds_name}-categorical/oue-split",
                            x=eps,
                            value=freq_mse,
                        )
                    )
                elif method in ("pm", "hm"):
                    rows.append(
                        Row(
                            experiment="fig04",
                            series=f"{ds_name}-categorical/{method}",
                            x=eps,
                            value=freq_mse,
                        )
                    )
    return rows


def main(config: EstimationConfig = None) -> List[Row]:
    rows = run(config)
    for panel in (
        "BR-numeric",
        "MX-numeric",
        "BR-categorical",
        "MX-categorical",
    ):
        subset = [r for r in rows if r.series.startswith(panel + "/")]
        print(
            format_table(
                subset,
                title=f"Fig. 4 ({panel}): MSE vs privacy budget",
                x_label="eps",
            )
        )
        print()
    return rows


if __name__ == "__main__":
    main()
