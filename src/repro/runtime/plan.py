"""Deterministic shard planning for parallel protocol runs.

A :class:`ShardPlan` splits an n-user workload into ``num_shards``
contiguous user ranges and assigns each range an independent random
stream spawned from one root :class:`numpy.random.SeedSequence`.  The
plan — not the executor — owns all randomness, which yields the
runtime's central guarantee:

    **The result of a planned run depends only on the plan, never on
    how it is executed.**  Serial, thread-pool and process-pool
    execution of the same plan produce identical reports, because shard
    i always encodes users ``[start_i, stop_i)`` with the generator
    seeded by spawn key i, and accumulators are merged in shard order.

Changing ``num_shards`` (or ``batch_size``, for protocols whose
encoders draw data-dependent numbers of variates) changes which random
variates each user receives — runs are comparable *statistically*, not
bitwise, across different plans.  Fix the plan, vary the workers.

Plans are plain data: :meth:`ShardPlan.to_dict` round-trips through
JSON so a driver can ship the plan (with the protocol's
:class:`~repro.protocol.spec.ProtocolSpec`) to remote workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

#: Largest seed drawn by :meth:`ShardPlan.from_rng` (inclusive upper
#: bound is 2**63 - 2 because numpy's integers() is exclusive).
_MAX_SEED = 2**63 - 1


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk of a planned workload.

    Attributes
    ----------
    index:
        Position of this shard in the plan; merge order follows it.
    start, stop:
        Half-open user range ``[start, stop)`` this shard covers.
    seed_sequence:
        The spawned child :class:`numpy.random.SeedSequence` owning this
        shard's random stream.  Picklable, so process-pool workers can
        receive the shard and build the generator locally.
    """

    index: int
    start: int
    stop: int
    seed_sequence: np.random.SeedSequence

    @property
    def size(self) -> int:
        """Number of users in this shard (may be 0 when num_shards > n)."""
        return self.stop - self.start

    def rng(self) -> np.random.Generator:
        """A fresh generator positioned at the start of this shard's stream."""
        return np.random.default_rng(self.seed_sequence)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic split of an n-user workload into shards.

    Parameters
    ----------
    n:
        Total number of users in the workload.
    num_shards:
        Number of contiguous chunks; shard sizes differ by at most one
        (the first ``n % num_shards`` shards get the extra user).  More
        shards than users is allowed — trailing shards are empty, and
        empty batches are a protocol-layer no-op.
    seed:
        Entropy for the root :class:`numpy.random.SeedSequence`; the
        per-shard streams are ``SeedSequence(seed).spawn(num_shards)``.
    batch_size:
        Optional bound on how many users a shard encodes per
        ``encode_batch`` call, capping worker memory at
        O(batch_size * report size).  Part of the plan because encoders
        whose draw counts are data-dependent consume their stream
        differently under different batchings.
    """

    n: int
    num_shards: int
    seed: int
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"n must be non-negative, got {self.n}")
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )

    @classmethod
    def from_rng(
        cls,
        n: int,
        num_shards: int,
        rng: RngLike = None,
        batch_size: Optional[int] = None,
    ) -> "ShardPlan":
        """Draw the plan seed from an ``rng`` in the package's idiom."""
        seed = int(ensure_rng(rng).integers(0, _MAX_SEED))
        return cls(n=n, num_shards=num_shards, seed=seed,
                   batch_size=batch_size)

    # ------------------------------------------------------------------
    def shards(self) -> Tuple[Shard, ...]:
        """The shards, in merge order, each with its spawned stream."""
        children = np.random.SeedSequence(self.seed).spawn(self.num_shards)
        base, extra = divmod(self.n, self.num_shards)
        shards = []
        start = 0
        for i, child in enumerate(children):
            stop = start + base + (1 if i < extra else 0)
            shards.append(
                Shard(index=i, start=start, stop=stop, seed_sequence=child)
            )
            start = stop
        return tuple(shards)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description; round-trips through :meth:`from_dict`."""
        return {
            "n": self.n,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardPlan":
        """Rebuild a plan from a :meth:`to_dict` payload."""
        return cls(
            n=int(payload["n"]),
            num_shards=int(payload["num_shards"]),
            seed=int(payload["seed"]),
            batch_size=(
                None
                if payload.get("batch_size") is None
                else int(payload["batch_size"])
            ),
        )
