"""Sharded, parallel and streaming execution of LDP protocols.

PR 1 made every protocol's server state mergeable; this package is the
engine that exploits it at scale:

* :class:`~repro.runtime.plan.ShardPlan` — deterministic split of an
  n-user workload into shards with independent SeedSequence-spawned
  random streams; serializable via ``to_dict``/``from_dict``.
* :class:`~repro.runtime.runner.ParallelRunner` /
  :func:`~repro.runtime.runner.run_sharded` — execute a plan serially,
  on a thread pool, or on a process pool; workers return accumulator
  state, the driver merges in shard order.  Results depend only on the
  plan, never on the executor or worker count.
* :func:`~repro.runtime.runner.run_inline` — the one-shard in-process
  path (bitwise-compatible with ``Protocol.run``) that the experiment
  harnesses and the LDP-SGD trainer route through.
* :class:`~repro.runtime.streaming.StreamingRunner` — absorb batches
  as they arrive with bounded memory.

See DESIGN.md ("The sharded runtime") for the determinism model.
"""

from repro.runtime.plan import Shard, ShardPlan
from repro.runtime.runner import (
    EXECUTORS,
    ParallelRunner,
    run_auto,
    run_inline,
    run_sharded,
)
from repro.runtime.streaming import StreamingRunner

__all__ = [
    "EXECUTORS",
    "ParallelRunner",
    "Shard",
    "ShardPlan",
    "StreamingRunner",
    "run_auto",
    "run_inline",
    "run_sharded",
]
