"""Streaming execution: absorb report batches as they arrive.

Real aggregators never see all n users at once — reports trickle in
over hours.  :class:`StreamingRunner` accepts raw-value batches in
arrival order, encodes them (optionally on a background thread pool)
and folds them into one accumulator, holding at most ``max_pending``
encoded batches at any moment.  Memory is therefore bounded by
O(max_pending * batch report size + accumulator state) no matter how
many batches stream through.

Determinism: batch i is encoded with the i-th child stream spawned from
the runner's root :class:`numpy.random.SeedSequence` (unless the caller
supplies an explicit rng per batch), and batches are absorbed in
submission order — so a streamed run is reproducible from (seed, batch
sequence) alone, and matches a serial loop over the same batches with
the same spawned streams.

    runner = StreamingRunner(protocol, seed=7, max_pending=4)
    for batch in arriving_batches:
        runner.submit(batch)
    estimates = runner.finish().estimate()
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, NoReturn, Optional, Tuple, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry, null_registry
from repro.protocol.accumulators import ServerAccumulator
from repro.runtime.runner import _resolve_encoder
from repro.stream.windows import WindowConfig, WindowedAccumulator
from repro.utils.rng import RngLike, ensure_rng


class StreamingRunner:
    """Bounded-memory, arrival-order absorption of value batches.

    Parameters
    ----------
    protocol_or_encoder:
        A :class:`~repro.protocol.facade.Protocol` or a bare
        :class:`~repro.protocol.encoders.ClientEncoder`.
    seed:
        Entropy for the root SeedSequence whose spawned children seed
        the per-batch encodings; ``None`` draws OS entropy (the run is
        then not reproducible).
    max_pending:
        Upper bound on encoded-but-not-yet-absorbed batches; submitting
        past it blocks on (and absorbs) the oldest pending batch first.
    max_workers:
        Background encoding threads.  ``0`` encodes synchronously in
        :meth:`submit` (still bounded, no pool); defaults to
        ``max_pending``.
    checkpoint_every:
        Invoke ``on_checkpoint`` after every this-many absorbed batches
        (``None`` disables checkpointing).
    on_checkpoint:
        ``callback(accumulator, batches_absorbed)`` fired synchronously
        from the absorbing thread — the accumulator is quiescent for the
        duration of the call, so the callback may snapshot its state
        (e.g. via ``repro.service.store.SnapshotStore``).
    metrics_registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to expose
        runner gauges/histograms on (pending depth, batches absorbed,
        encode+absorb latency).  ``None`` means no instrumentation —
        the runner is also used in tight benchmark loops.
    window:
        Optional :class:`~repro.stream.windows.WindowConfig` (or its
        dict form).  When set, the runner accumulates into a
        :class:`~repro.stream.windows.WindowedAccumulator` and
        :meth:`submit` accepts a ``round`` that buckets the batch into
        that round's pane; :meth:`finish` then returns the windowed
        accumulator (sliding-window and decayed estimates included).
        Round-less submissions land in the current (latest) pane.

    Error handling: if a background encode raises, the exception
    propagates exactly once — out of whichever :meth:`submit` or
    :meth:`finish` call first observes the failed batch.  The thread
    pool is shut down and remaining pending batches are discarded before
    the exception is re-raised; afterwards the runner is closed
    (``submit``/``finish`` raise ``RuntimeError`` describing the earlier
    failure, without re-raising it).
    """

    def __init__(
        self,
        protocol_or_encoder: Any,
        seed: Optional[int] = None,
        max_pending: int = 4,
        max_workers: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
        window: Optional[Union[WindowConfig, Dict[str, Any]]] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_workers is not None and max_workers < 0:
            raise ValueError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if on_checkpoint is None:
                raise ValueError(
                    "checkpoint_every requires an on_checkpoint callback"
                )
        self._encoder = _resolve_encoder(protocol_or_encoder)
        if window is not None and not isinstance(window, WindowConfig):
            window = WindowConfig.from_dict(window)
        self.window: Optional[WindowConfig] = window
        self._accumulator: ServerAccumulator = (
            window.build(self._encoder.new_accumulator)
            if window is not None
            else self._encoder.new_accumulator()
        )
        self._root = np.random.SeedSequence(seed)
        self.max_pending = int(max_pending)
        workers = max_pending if max_workers is None else max_workers
        self._pool = (
            ThreadPoolExecutor(max_workers=workers) if workers else None
        )
        self._pending: Deque[Tuple[Any, Optional[int]]] = deque()
        self._batches = 0
        self._absorbed = 0
        self._closed = False
        self._failure: Optional[BaseException] = None
        self._checkpoint_every = (
            int(checkpoint_every) if checkpoint_every is not None else None
        )
        self._on_checkpoint = on_checkpoint
        obs = (
            metrics_registry
            if metrics_registry is not None
            else null_registry()
        )
        obs.gauge(
            "repro_stream_pending_batches",
            "Encoded-but-not-yet-absorbed batches held by the "
            "streaming runner (bounded by max_pending).",
        ).set_function(lambda: len(self._pending))
        obs.gauge(
            "repro_stream_absorbed_batches",
            "Batches folded into the streaming accumulator so far.",
        ).set_function(lambda: self._absorbed)
        self._absorb_seconds = obs.histogram(
            "repro_stream_absorb_seconds",
            "Latency of folding one encoded batch into the "
            "accumulator (excludes encode time).",
        )

    # ------------------------------------------------------------------
    def _next_rng(self) -> np.random.Generator:
        # spawn() is stateful-deterministic: the i-th call always yields
        # the child with spawn key (i,), so batch i's stream is fixed.
        return np.random.default_rng(self._root.spawn(1)[0])

    def _absorbed_one(self) -> None:
        self._absorbed += 1
        if (
            self._checkpoint_every is not None
            and self._absorbed % self._checkpoint_every == 0
        ):
            assert self._on_checkpoint is not None
            self._on_checkpoint(self._accumulator, self._absorbed)

    def _fail(self, exc: BaseException) -> NoReturn:
        """Tear down after a failed encode; re-raise the error once."""
        self._failure = exc
        self._closed = True
        for future, _ in self._pending:
            future.cancel()
        self._pending.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        raise exc

    def _check_usable(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                f"StreamingRunner failed on a previous batch encode: "
                f"{self._failure!r}"
            )
        if self._closed:
            raise RuntimeError("cannot submit to a finished StreamingRunner")

    def _absorb(self, reports: Any, round_: Optional[int]) -> None:
        with self._absorb_seconds.time():
            if round_ is not None:
                assert isinstance(self._accumulator, WindowedAccumulator)
                self._accumulator.absorb_round(round_, reports)
            else:
                self._accumulator.absorb(reports)

    def _absorb_oldest(self) -> None:
        future, round_ = self._pending.popleft()
        try:
            reports = future.result()
        except BaseException as exc:  # noqa: BLE001 - re-raised in _fail
            self._fail(exc)
        self._absorb(reports, round_)
        self._absorbed_one()

    def submit(
        self,
        values: Any,
        rng: RngLike = None,
        round: Optional[int] = None,
    ) -> "StreamingRunner":
        """Queue one arriving batch of raw values for encode + absorb.

        ``round`` (windowed runners only) buckets the batch into that
        round's pane; absorption order within a pane is submission
        order, so windowed runs stay reproducible too.
        """
        self._check_usable()
        if round is not None and self.window is None:
            raise ValueError(
                "round routing needs a windowed runner — construct "
                "StreamingRunner(..., window=WindowConfig(...))"
            )
        gen = self._next_rng() if rng is None else ensure_rng(rng)
        self._batches += 1
        round_ = int(round) if round is not None else None
        if self._pool is None:
            try:
                reports = self._encoder.encode_batch(values, gen)
            except BaseException as exc:  # noqa: BLE001 - re-raised
                self._fail(exc)  # same close-after-failure contract
            self._absorb(reports, round_)
            self._absorbed_one()
            return self
        while len(self._pending) >= self.max_pending:
            self._absorb_oldest()
        self._pending.append(
            (
                self._pool.submit(self._encoder.encode_batch, values, gen),
                round_,
            )
        )
        return self

    # ------------------------------------------------------------------
    @property
    def batches_submitted(self) -> int:
        """Batches accepted so far (absorbed or still pending)."""
        return self._batches

    @property
    def batches_absorbed(self) -> int:
        """Batches whose reports have been folded into the accumulator."""
        return self._absorbed

    def finish(self) -> ServerAccumulator:
        """Drain pending batches, shut the pool down, return the state.

        Idempotent; the runner rejects further :meth:`submit` calls.
        Raises the pending encode error if one is first observed here;
        after a failure has already propagated (from :meth:`submit` or a
        prior :meth:`finish`) it raises ``RuntimeError`` instead of
        re-raising it.
        """
        if self._failure is not None:
            raise RuntimeError(
                f"StreamingRunner failed on a previous batch encode: "
                f"{self._failure!r}"
            )
        while self._pending:
            self._absorb_oldest()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True
        return self._accumulator

    def __enter__(self) -> "StreamingRunner":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        # After a failure the pool is already down and pending cleared;
        # calling finish() again would mask the propagating exception
        # with the secondary RuntimeError.
        if self._failure is None:
            self.finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingRunner(batches={self._batches}, "
            f"pending={len(self._pending)}, "
            f"max_pending={self.max_pending})"
        )
