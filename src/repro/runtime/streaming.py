"""Streaming execution: absorb report batches as they arrive.

Real aggregators never see all n users at once — reports trickle in
over hours.  :class:`StreamingRunner` accepts raw-value batches in
arrival order, encodes them (optionally on a background thread pool)
and folds them into one accumulator, holding at most ``max_pending``
encoded batches at any moment.  Memory is therefore bounded by
O(max_pending * batch report size + accumulator state) no matter how
many batches stream through.

Determinism: batch i is encoded with the i-th child stream spawned from
the runner's root :class:`numpy.random.SeedSequence` (unless the caller
supplies an explicit rng per batch), and batches are absorbed in
submission order — so a streamed run is reproducible from (seed, batch
sequence) alone, and matches a serial loop over the same batches with
the same spawned streams.

    runner = StreamingRunner(protocol, seed=7, max_pending=4)
    for batch in arriving_batches:
        runner.submit(batch)
    estimates = runner.finish().estimate()
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.protocol.accumulators import ServerAccumulator
from repro.runtime.runner import _resolve_encoder
from repro.utils.rng import RngLike, ensure_rng


class StreamingRunner:
    """Bounded-memory, arrival-order absorption of value batches.

    Parameters
    ----------
    protocol_or_encoder:
        A :class:`~repro.protocol.facade.Protocol` or a bare
        :class:`~repro.protocol.encoders.ClientEncoder`.
    seed:
        Entropy for the root SeedSequence whose spawned children seed
        the per-batch encodings; ``None`` draws OS entropy (the run is
        then not reproducible).
    max_pending:
        Upper bound on encoded-but-not-yet-absorbed batches; submitting
        past it blocks on (and absorbs) the oldest pending batch first.
    max_workers:
        Background encoding threads.  ``0`` encodes synchronously in
        :meth:`submit` (still bounded, no pool); defaults to
        ``max_pending``.
    """

    def __init__(
        self,
        protocol_or_encoder,
        seed: Optional[int] = None,
        max_pending: int = 4,
        max_workers: Optional[int] = None,
    ):
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_workers is not None and max_workers < 0:
            raise ValueError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        self._encoder = _resolve_encoder(protocol_or_encoder)
        self._accumulator = self._encoder.new_accumulator()
        self._root = np.random.SeedSequence(seed)
        self.max_pending = int(max_pending)
        workers = max_pending if max_workers is None else max_workers
        self._pool = (
            ThreadPoolExecutor(max_workers=workers) if workers else None
        )
        self._pending = deque()
        self._batches = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _next_rng(self) -> np.random.Generator:
        # spawn() is stateful-deterministic: the i-th call always yields
        # the child with spawn key (i,), so batch i's stream is fixed.
        return np.random.default_rng(self._root.spawn(1)[0])

    def _absorb_oldest(self) -> None:
        future = self._pending.popleft()
        self._accumulator.absorb(future.result())

    def submit(self, values, rng: RngLike = None) -> "StreamingRunner":
        """Queue one arriving batch of raw values for encode + absorb."""
        if self._closed:
            raise RuntimeError("cannot submit to a finished StreamingRunner")
        gen = self._next_rng() if rng is None else ensure_rng(rng)
        self._batches += 1
        if self._pool is None:
            self._accumulator.absorb(self._encoder.encode_batch(values, gen))
            return self
        while len(self._pending) >= self.max_pending:
            self._absorb_oldest()
        self._pending.append(
            self._pool.submit(self._encoder.encode_batch, values, gen)
        )
        return self

    # ------------------------------------------------------------------
    @property
    def batches_submitted(self) -> int:
        """Batches accepted so far (absorbed or still pending)."""
        return self._batches

    def finish(self) -> ServerAccumulator:
        """Drain pending batches, shut the pool down, return the state.

        Idempotent; the runner rejects further :meth:`submit` calls.
        """
        while self._pending:
            self._absorb_oldest()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True
        return self._accumulator

    def __enter__(self) -> "StreamingRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingRunner(batches={self._batches}, "
            f"pending={len(self._pending)}, "
            f"max_pending={self.max_pending})"
        )
