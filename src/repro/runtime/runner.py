"""Parallel execution of a planned protocol run.

The driver/worker split mirrors the protocol's client/server split:

* each **worker** runs the stateless client encoder over its shard's
  users (in bounded batches) and folds the reports into a private
  :class:`~repro.protocol.accumulators.ServerAccumulator` — it ships
  back only that accumulator's sufficient statistics, never a report;
* the **driver** merges the returned accumulators in shard order and
  estimates once.

Because encoders are stateless and every shard owns an independent
SeedSequence-spawned stream (see :mod:`repro.runtime.plan`), the three
executors — ``"serial"``, ``"thread"``, ``"process"`` — produce
identical accumulator state for the same plan.  ``"process"`` pickles
the encoder and each shard's data chunk to the workers; sufficient
statistics (a few vectors) come back, so driver memory stays O(state).

    from repro.runtime import ShardPlan, run_sharded

    protocol = Protocol.frequency(epsilon=1.0, domain=64)
    acc = run_sharded(protocol, values, num_shards=8, seed=2019,
                      executor="process", max_workers=4)
    frequencies = acc.estimate()
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

import numpy as np

from repro.protocol.accumulators import ServerAccumulator
from repro.runtime.plan import Shard, ShardPlan
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.encoders import ClientEncoder

#: Executor names accepted by :class:`ParallelRunner`.
EXECUTORS = ("serial", "thread", "process")


def _resolve_encoder(protocol_or_encoder: Any) -> "ClientEncoder":
    """Accept either a Protocol facade or a bare ClientEncoder."""
    client = getattr(protocol_or_encoder, "client", None)
    if callable(client):
        return client()
    return protocol_or_encoder


def _slice_workload(values: Any, start: int, stop: int) -> Any:
    """Extract users [start, stop) from any supported workload form.

    Supported: numpy arrays / anything sliceable (row range), objects
    with a ``subset(indices)`` method (e.g. :class:`repro.data.schema.
    Dataset`), or a loader callable ``values(start, stop) -> chunk``
    for workloads too large to materialize.
    """
    subset = getattr(values, "subset", None)
    if callable(subset):
        return subset(np.arange(start, stop))
    if callable(values):
        return values(start, stop)
    return values[start:stop]


def _encode_shard(
    encoder: "ClientEncoder",
    chunk: Any,
    seed_sequence: np.random.SeedSequence,
    batch_size: Optional[int],
) -> ServerAccumulator:
    """Worker body: encode one shard's users into a fresh accumulator.

    Module-level (not a closure) so process pools can pickle it; the
    returned accumulator carries only sufficient statistics.
    """
    return run_inline(
        encoder, chunk, np.random.default_rng(seed_sequence), batch_size
    )


class ParallelRunner:
    """Executes a :class:`ShardPlan` and merges the shard accumulators.

    Parameters
    ----------
    executor:
        ``"serial"`` (in-process loop), ``"thread"``
        (:class:`~concurrent.futures.ThreadPoolExecutor` — cheap, shares
        memory, parallel where numpy releases the GIL) or ``"process"``
        (:class:`~concurrent.futures.ProcessPoolExecutor` — true
        parallelism; encoder and chunks are pickled to the workers).
    max_workers:
        Pool size for the parallel executors; defaults to the number of
        shards in the plan being run.  Never affects results — only the
        plan does.
    """

    def __init__(self, executor: str = "serial",
                 max_workers: Optional[int] = None) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.executor = executor
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def _shard_accumulators(
        self, encoder: "ClientEncoder", values: Any, shards: Sequence[Shard],
        batch_size: Optional[int],
    ) -> Tuple[ServerAccumulator, ...]:
        if self.executor == "serial":
            # Chunks are sliced one shard at a time, so driver memory
            # holds a single shard even for loader-callable workloads.
            return tuple(
                _encode_shard(
                    encoder,
                    _slice_workload(values, shard.start, shard.stop),
                    shard.seed_sequence,
                    batch_size,
                )
                for shard in shards
            )
        workers = self.max_workers or len(shards)
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return self._drain_pool(
                    pool, workers, encoder, values, shards, batch_size
                )
        # "process": fork where available (cheap, inherits the parent's
        # imports); the default start method elsewhere.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            return self._drain_pool(
                pool, workers, encoder, values, shards, batch_size
            )

    @staticmethod
    def _drain_pool(
        pool: Any, workers: int, encoder: "ClientEncoder", values: Any,
        shards: Sequence[Shard],
        batch_size: Optional[int],
    ) -> Tuple[ServerAccumulator, ...]:
        """Windowed submission: at most ``workers`` shard chunks are
        sliced and in flight at once, so driver memory stays
        O(workers * shard size) for arbitrarily large workloads."""
        results: List[Optional[ServerAccumulator]] = [None] * len(shards)
        pending: Dict[Any, int] = {}
        queue = iter(shards)

        def submit_next() -> bool:
            shard = next(queue, None)
            if shard is None:
                return False
            future = pool.submit(
                _encode_shard,
                encoder,
                _slice_workload(values, shard.start, shard.stop),
                shard.seed_sequence,
                batch_size,
            )
            pending[future] = shard.index
            return True

        for _ in range(min(workers, len(shards))):
            submit_next()
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                results[pending.pop(future)] = future.result()
                submit_next()
        return cast(Tuple[ServerAccumulator, ...], tuple(results))

    def run(
        self, protocol_or_encoder: Any, values: Any, plan: ShardPlan
    ) -> ServerAccumulator:
        """Execute the plan; returns the merged accumulator.

        ``values`` must cover exactly ``plan.n`` users (checked
        whenever the workload exposes a length).  Accumulators are
        merged in shard-index order, so the result is independent of
        executor choice and worker count.
        """
        encoder = _resolve_encoder(protocol_or_encoder)
        try:
            size: Optional[int] = len(values)
        except TypeError:
            size = None  # loader callables carry no length
        if size is not None and size != plan.n:
            raise ValueError(
                f"workload has {size} users but the plan covers {plan.n}"
            )
        accumulators = self._shard_accumulators(
            encoder, values, plan.shards(), plan.batch_size
        )
        merged = encoder.new_accumulator()
        for acc in accumulators:
            merged.merge(acc)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelRunner(executor={self.executor!r}, "
            f"max_workers={self.max_workers})"
        )


# ----------------------------------------------------------------------
# Conveniences
# ----------------------------------------------------------------------
def run_inline(
    protocol_or_encoder: Any,
    values: Any,
    rng: RngLike = None,
    batch_size: Optional[int] = None,
) -> ServerAccumulator:
    """One-shard, in-process run consuming the caller's rng directly.

    With ``batch_size=None`` this is bitwise-identical to
    ``protocol.server().absorb(client.encode_batch(values, rng))`` —
    the single-machine paths (experiments, the LDP-SGD trainer) route
    through here so every collection in the repo flows through the
    runtime layer without changing any seeded result.
    """
    encoder = _resolve_encoder(protocol_or_encoder)
    gen = ensure_rng(rng)
    acc = encoder.new_accumulator()
    size = len(values)
    if size == 0:
        return acc
    if batch_size is None:
        return acc.absorb(encoder.encode_batch(values, gen))
    for lo in range(0, size, batch_size):
        acc.absorb(
            encoder.encode_batch(
                _slice_workload(values, lo, min(lo + batch_size, size)), gen
            )
        )
    return acc


def run_auto(
    protocol_or_encoder: Any,
    values: Any,
    rng: RngLike = None,
    *,
    num_shards: int = 1,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> ServerAccumulator:
    """Dispatch between the inline and sharded paths.

    One serial shard (the default) runs :func:`run_inline`, consuming
    ``rng`` directly — bitwise-compatible with ``Protocol.run``.
    Anything else plans a sharded run seeded from ``rng``.  This is the
    single dispatch rule the experiment harnesses and the LDP-SGD
    trainer share.
    """
    if num_shards == 1 and executor == "serial":
        return run_inline(protocol_or_encoder, values, rng, batch_size)
    return run_sharded(
        protocol_or_encoder,
        values,
        num_shards=num_shards,
        rng=rng,
        executor=executor,
        max_workers=max_workers,
        batch_size=batch_size,
    )


def run_sharded(
    protocol_or_encoder: Any,
    values: Any,
    *,
    plan: Optional[ShardPlan] = None,
    num_shards: Optional[int] = None,
    seed: Optional[int] = None,
    rng: RngLike = None,
    batch_size: Optional[int] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> ServerAccumulator:
    """Plan (if needed) and execute a sharded run; returns the merged
    accumulator.

    Pass an explicit ``plan`` for exact reproducibility, or
    ``num_shards`` plus either a ``seed`` or an ``rng`` to draw one.
    """
    if plan is None:
        if num_shards is None:
            raise ValueError("pass either plan= or num_shards=")
        n = len(values)
        if seed is not None:
            plan = ShardPlan(n=n, num_shards=num_shards, seed=int(seed),
                             batch_size=batch_size)
        else:
            plan = ShardPlan.from_rng(n, num_shards, rng,
                                      batch_size=batch_size)
    else:
        if num_shards is not None and num_shards != plan.num_shards:
            raise ValueError(
                f"plan has {plan.num_shards} shards but num_shards="
                f"{num_shards} was also given"
            )
        if batch_size is not None and batch_size != plan.batch_size:
            raise ValueError(
                f"plan has batch_size={plan.batch_size} but batch_size="
                f"{batch_size} was also given"
            )
        if seed is not None or rng is not None:
            raise ValueError(
                "an explicit plan fixes all randomness; do not also "
                "pass seed= or rng="
            )
    runner = ParallelRunner(executor=executor, max_workers=max_workers)
    return runner.run(protocol_or_encoder, values, plan)
