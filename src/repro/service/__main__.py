"""``python -m repro.service`` — serve one or many campaigns.

Single-campaign (v1 compatible — the spec becomes the *default*
campaign, so campaign-unaware clients keep working):

    python -m repro.service --spec spec.json --port 8321 \
        --snapshot-dir ./snapshots --checkpoint-every 100

Multi-campaign (shell globs expand to one campaign per file):

    python -m repro.service --campaigns specs/*.json \
        --lifetime-epsilon 2.0 --snapshot-dir ./snapshots

Each spec file is ``ProtocolSpec.to_dict()`` JSON, e.g.:

    {"spec_version": "1.0", "kind": "mean", "epsilon": 1.0,
     "mechanism": "hm"}

``--spec`` and ``--campaigns`` combine: the former is the default
campaign, the latter are addressable by fingerprint only.  Further
campaigns can always be registered at runtime via ``POST /campaigns``.
With ``--snapshot-dir`` the server checkpoints periodically and
resumes *all* campaigns plus the cross-campaign ledger from the latest
manifest on restart.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.service.server import IngestionServer
from repro.service.store import SnapshotStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Networked LDP ingestion server (multi-campaign).",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="path to the DEFAULT campaign's ProtocolSpec.to_dict() "
        "JSON file (v1 clients route here)",
    )
    parser.add_argument(
        "--campaigns",
        nargs="+",
        default=[],
        metavar="SPEC_JSON",
        help="additional campaign spec files (e.g. specs/*.json); each "
        "is registered under its fingerprint",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--lifetime-epsilon",
        type=float,
        default=None,
        help="per-user GLOBAL budget cap shared across all campaigns "
        "(default: the default campaign's epsilon, else the max over "
        "--campaigns)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for durable checkpoints (enables resume)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        help="snapshot after every N accepted batches "
        "(needs --snapshot-dir)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard worker threads for ingestion (1 = inline absorb "
        "on the event loop; N > 1 routes batches by idempotency key "
        "over N bounded worker queues)",
    )
    parser.add_argument(
        "--shard-queue-depth",
        type=int,
        default=64,
        help="per-shard queue bound in batches; a full queue answers "
        "429 with Retry-After (backpressure)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.spec is None and not args.campaigns:
        build_parser().error(
            "at least one of --spec / --campaigns is required"
        )

    def _load(path):
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    default_spec = _load(args.spec) if args.spec is not None else None
    campaign_specs = [_load(path) for path in args.campaigns]
    store = (
        SnapshotStore(args.snapshot_dir)
        if args.snapshot_dir is not None
        else None
    )
    server = IngestionServer(
        default_spec,
        lifetime_epsilon=args.lifetime_epsilon,
        store=store,
        checkpoint_every=(
            args.checkpoint_every if store is not None else None
        ),
        host=args.host,
        port=args.port,
        campaigns=campaign_specs,
        shards=args.shards,
        shard_queue_depth=args.shard_queue_depth,
    )

    async def _serve() -> None:
        await server.start()
        default = server.registry.default
        headline = (
            f"{default.spec.kind!r} default campaign"
            if default is not None
            else f"{len(server.registry)} campaigns, no default"
        )
        print(
            f"repro.service: {headline} on "
            f"http://{server.host}:{server.port} "
            f"(lifetime eps {server.ledger.lifetime_epsilon:g}, "
            f"shards: {server.shards}, "
            f"checkpoints: "
            f"{store.directory if store else 'disabled'})",
            flush=True,
        )
        for campaign in server.registry:
            print(
                f"repro.service:   campaign {campaign.fingerprint[:12]}... "
                f"kind={campaign.spec.kind} eps={campaign.spec.epsilon:g} "
                f"state={campaign.state.value}"
                f"{' [default]' if campaign.default else ''}",
                flush=True,
            )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        if store is not None:
            seq = server.checkpoint_now()
            print(f"repro.service: final checkpoint {seq}", flush=True)
        print("repro.service: stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
