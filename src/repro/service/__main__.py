"""``python -m repro.service`` — serve one or many campaigns.

Single-campaign (v1 compatible — the spec becomes the *default*
campaign, so campaign-unaware clients keep working):

    python -m repro.service --spec spec.json --port 8321 \
        --snapshot-dir ./snapshots --checkpoint-every 100

Multi-campaign (shell globs expand to one campaign per file):

    python -m repro.service --campaigns specs/*.json \
        --lifetime-epsilon 2.0 --snapshot-dir ./snapshots

Each spec file is ``ProtocolSpec.to_dict()`` JSON, e.g.:

    {"spec_version": "1.0", "kind": "mean", "epsilon": 1.0,
     "mechanism": "hm"}

``--spec`` and ``--campaigns`` combine: the former is the default
campaign, the latter are addressable by fingerprint only.  Further
campaigns can always be registered at runtime via ``POST /campaigns``.
With ``--snapshot-dir`` the server checkpoints periodically and
resumes *all* campaigns plus the cross-campaign ledger from the latest
manifest on restart.

Observability: ``GET /metrics`` serves Prometheus text exposition;
``--log-format json`` switches the process to one-JSON-object-per-line
structured logs.  **SIGTERM drains gracefully**: new batches get 503,
shard queues flush, a final checkpoint lands (bitwise-equal to what an
uninterrupted run would have written), and the process exits 0.
SIGINT (Ctrl-C) keeps its historical behavior: checkpoint and stop.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.obs.lifecycle import SignalDrain
from repro.obs.logging import add_logging_arguments, configure_logging
from repro.service.server import IngestionServer
from repro.service.store import SnapshotStore
from repro.stream.windows import WindowConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Networked LDP ingestion server (multi-campaign).",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="path to the DEFAULT campaign's ProtocolSpec.to_dict() "
        "JSON file (v1 clients route here)",
    )
    parser.add_argument(
        "--campaigns",
        nargs="+",
        default=[],
        metavar="SPEC_JSON",
        help="additional campaign spec files (e.g. specs/*.json); each "
        "is registered under its fingerprint",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--lifetime-epsilon",
        type=float,
        default=None,
        help="per-user GLOBAL budget cap shared across all campaigns "
        "(default: the default campaign's epsilon, else the max over "
        "--campaigns)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for durable checkpoints (enables resume)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        help="snapshot after every N accepted batches "
        "(needs --snapshot-dir)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard worker threads for ingestion (1 = inline absorb "
        "on the event loop; N > 1 routes batches by idempotency key "
        "over N bounded worker queues)",
    )
    parser.add_argument(
        "--shard-queue-depth",
        type=int,
        default=64,
        help="per-shard queue bound in batches; a full queue answers "
        "429 with Retry-After (backpressure)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="PANES",
        help="make every campaign windowed with a ring of PANES "
        "per-round pane accumulators; enables "
        "GET /estimate?window=... and GET /heavy-hitters",
    )
    parser.add_argument(
        "--pane-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock seconds one pane (round) represents, so "
        "?window=5m style duration queries resolve to pane counts "
        "(needs --window)",
    )
    parser.add_argument(
        "--decay",
        type=float,
        default=None,
        metavar="GAMMA",
        help="exponential decay per pane of age, in (0, 1]; the "
        "default estimate becomes the decayed view "
        "(needs --window)",
    )
    add_logging_arguments(parser)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.spec is None and not args.campaigns:
        build_parser().error(
            "at least one of --spec / --campaigns is required"
        )
    configure_logging(args.log_format, args.log_level)

    def _load(path):
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    if args.window is None and (
        args.pane_seconds is not None or args.decay is not None
    ):
        build_parser().error("--pane-seconds/--decay require --window")
    window = (
        WindowConfig(
            panes=args.window,
            pane_seconds=args.pane_seconds,
            decay=args.decay,
        )
        if args.window is not None
        else None
    )

    default_spec = _load(args.spec) if args.spec is not None else None
    campaign_specs = [_load(path) for path in args.campaigns]
    store = (
        SnapshotStore(args.snapshot_dir)
        if args.snapshot_dir is not None
        else None
    )
    server = IngestionServer(
        default_spec,
        lifetime_epsilon=args.lifetime_epsilon,
        store=store,
        checkpoint_every=(
            args.checkpoint_every if store is not None else None
        ),
        host=args.host,
        port=args.port,
        campaigns=campaign_specs,
        shards=args.shards,
        shard_queue_depth=args.shard_queue_depth,
        window=window,
    )
    drained = False

    async def _serve() -> None:
        nonlocal drained
        await server.start()
        # SIGTERM = graceful drain: 503 new batches, flush shards,
        # final checkpoint, exit 0.  SIGINT stays a KeyboardInterrupt
        # (handled below) for historical Ctrl-C behavior.  Installed
        # before the banner: once the banner is readable the process
        # must already be drainable.
        sigterm = SignalDrain((signal.SIGTERM,)).install()
        default = server.registry.default
        headline = (
            f"{default.spec.kind!r} default campaign"
            if default is not None
            else f"{len(server.registry)} campaigns, no default"
        )
        window_note = (
            f", window: {server.window.panes} panes"
            + (
                f" x {server.window.pane_seconds:g}s"
                if server.window.pane_seconds is not None
                else ""
            )
            + (
                f" decay {server.window.decay:g}"
                if server.window.decay is not None
                else ""
            )
            if server.window is not None
            else ""
        )
        print(
            f"repro.service: {headline} on "
            f"http://{server.host}:{server.port} "
            f"(lifetime eps {server.ledger.lifetime_epsilon:g}, "
            f"shards: {server.shards}, "
            f"checkpoints: "
            f"{store.directory if store else 'disabled'}"
            f"{window_note})",
            flush=True,
        )
        for campaign in server.registry:
            print(
                f"repro.service:   campaign {campaign.fingerprint[:12]}... "
                f"kind={campaign.spec.kind} eps={campaign.spec.epsilon:g} "
                f"state={campaign.state.value}"
                f"{' [default]' if campaign.default else ''}",
                flush=True,
            )
        serve_task = asyncio.ensure_future(server.serve_forever())
        drain_task = asyncio.ensure_future(sigterm.wait())
        try:
            done, _ = await asyncio.wait(
                {serve_task, drain_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if serve_task in done and serve_task.exception() is not None:
                raise serve_task.exception()
            if drain_task in done:
                print(
                    "repro.service: draining (SIGTERM): refusing new "
                    "batches, flushing shards",
                    flush=True,
                )
                result = server.drain()
                if result.checkpoint_seq is not None:
                    print(
                        f"repro.service: final checkpoint "
                        f"{result.checkpoint_seq}",
                        flush=True,
                    )
                print(
                    f"repro.service: drained "
                    f"({result.batches_accepted} batches accepted, "
                    f"{result.shards_flushed} shards flushed, "
                    f"{result.seconds:.3f}s)",
                    flush=True,
                )
                drained = True
        finally:
            sigterm.uninstall()
            for task in (serve_task, drain_task):
                if not task.done():
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
            await server.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        if store is not None:
            seq = server.checkpoint_now()
            print(f"repro.service: final checkpoint {seq}", flush=True)
        print("repro.service: stopped", flush=True)
        return 0
    if drained:
        print("repro.service: stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
