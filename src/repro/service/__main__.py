"""``python -m repro.service`` — serve one protocol from a spec file.

    python -m repro.service --spec spec.json --port 8321 \
        --snapshot-dir ./snapshots --checkpoint-every 100

The spec file is ``ProtocolSpec.to_dict()`` JSON, e.g.:

    {"spec_version": "1.0", "kind": "mean", "epsilon": 1.0,
     "mechanism": "hm"}

With ``--snapshot-dir`` the server checkpoints periodically and resumes
from the latest snapshot on restart.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.service.server import IngestionServer
from repro.service.store import SnapshotStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Networked LDP ingestion server for one protocol.",
    )
    parser.add_argument(
        "--spec",
        required=True,
        help="path to a ProtocolSpec.to_dict() JSON file",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--lifetime-epsilon",
        type=float,
        default=None,
        help="per-user lifetime budget cap (default: the spec's epsilon)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for durable checkpoints (enables resume)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        help="snapshot after every N accepted batches "
        "(needs --snapshot-dir)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    store = (
        SnapshotStore(args.snapshot_dir)
        if args.snapshot_dir is not None
        else None
    )
    server = IngestionServer(
        spec,
        lifetime_epsilon=args.lifetime_epsilon,
        store=store,
        checkpoint_every=(
            args.checkpoint_every if store is not None else None
        ),
        host=args.host,
        port=args.port,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"repro.service: {server.spec.kind!r} protocol on "
            f"http://{server.host}:{server.port} "
            f"(fingerprint {server.fingerprint[:12]}..., "
            f"checkpoints: "
            f"{store.directory if store else 'disabled'})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        if store is not None:
            seq = server.checkpoint_now()
            print(f"repro.service: final checkpoint {seq}", flush=True)
        print("repro.service: stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
