"""Consistent-hash shard routing + worker threads for ingestion.

The sharded server splits each campaign's accumulation across N
:class:`ShardWorker` threads, each owning index ``i`` of every
campaign's per-shard accumulator list.  Batches are routed by
idempotency key through a :class:`ShardRing` (consistent hashing over
SHA-256 vnode points), so a given key always lands on the same shard —
across restarts too, which is what keeps kill-and-resume bitwise: the
same batches replay into the same shards in the same per-shard order.

Workers communicate through bounded queues.  The request handler (on
the event loop, the only producer) checks capacity *before* charging
budget — a full queue is HTTP 429 backpressure with a Retry-After, and
nothing is charged or enqueued.  Validation also happens on the event
loop (``Campaign.validate_batch``), so a batch that reaches a worker
cannot fail absorption on client data; residual worker errors (a bug,
not bad input) are counted and surfaced through ``/healthz``.

Queue sentinels: a :class:`FlushToken` asks the worker to signal when
everything enqueued before it has been absorbed (checkpoint/estimate
barriers); ``None`` shuts the worker down.
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
from typing import Any, List, Optional, Tuple

from repro.obs.logging import get_logger

_log = get_logger("repro.service.sharding")


class FlushToken:
    """Queue barrier: set when every earlier item has been absorbed."""

    def __init__(self) -> None:
        self.done = threading.Event()


class ShardRing:
    """Consistent-hash ring mapping string keys to shard indices.

    ``vnodes`` points per shard (SHA-256 of ``shard:<i>:<v>``) keep the
    key distribution even; lookups bisect the sorted point list.  The
    mapping depends only on ``(shards, vnodes)``, never on process
    state, so routing is stable across restarts.
    """

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = int(shards)
        points: List[Tuple[int, int]] = []
        for shard in range(self.shards):
            for v in range(vnodes):
                digest = hashlib.sha256(
                    f"shard:{shard}:{v}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRing(shards={self.shards})"


class ShardWorker:
    """One shard's absorption thread behind a bounded queue.

    Items are ``(campaign, batch, round)`` triples — ``batch`` is
    either a report container or a columnar
    :class:`~repro.protocol.reports.ColumnBlock`, ``round`` the
    optional streaming round the envelope carried; the worker calls
    ``campaign.absorb_shard(self.index, batch, round)``.  Per-shard
    FIFO order is the determinism contract: floats fold in arrival
    order within a shard, and the fan-in merge runs in fixed shard
    order.
    """

    def __init__(self, index: int, queue_depth: int = 64) -> None:
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        self.index = int(index)
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self.absorbed_batches = 0
        self.absorbed_reports = 0
        self.errors = 0
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=True
        )
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> "ShardWorker":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                self.queue.task_done()
                return
            if isinstance(item, FlushToken):
                item.done.set()
                self.queue.task_done()
                continue
            campaign, batch, round_ = item
            try:
                absorbed = campaign.absorb_shard(self.index, batch, round_)
                self.absorbed_batches += 1
                self.absorbed_reports += int(absorbed)
            except Exception:  # noqa: BLE001 - validated upstream; count
                # Validation ran on the event loop, so this is a server
                # bug, not client data — count it (healthz/metrics) and
                # leave a trace with the stack.
                self.errors += 1
                _log.exception(
                    "shard absorb failed",
                    extra={
                        "shard": self.index,
                        "campaign": getattr(campaign, "fingerprint", None),
                    },
                )
            finally:
                self.queue.task_done()

    # ------------------------------------------------------------------
    def has_capacity(self) -> bool:
        """Whether an enqueue right now would succeed.

        Only the event loop produces, so a ``True`` here cannot be
        invalidated before the matching :meth:`submit` — consumers only
        drain the queue.
        """
        return not self.queue.full()

    def submit(
        self, campaign: Any, batch: Any, round_: Optional[int] = None
    ) -> None:
        """Enqueue one validated batch (caller checked capacity)."""
        self.queue.put_nowait((campaign, batch, round_))

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything enqueued so far has been absorbed."""
        if not self._started or self._stopped:
            return
        token = FlushToken()
        self.queue.put(token, timeout=timeout)
        if not token.done.wait(timeout):
            raise TimeoutError(
                f"shard {self.index} did not drain within {timeout}s"
            )

    def depth(self) -> int:
        """Approximate number of batches waiting in the queue."""
        return self.queue.qsize()

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and stop the worker thread (idempotent)."""
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        self.queue.put(None, timeout=timeout)
        self._thread.join(timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardWorker(index={self.index}, depth={self.depth()}, "
            f"batches={self.absorbed_batches}, errors={self.errors})"
        )
