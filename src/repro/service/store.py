"""Durable checkpoint/recovery of service state.

A :class:`SnapshotStore` persists the full ingestion state — encoded
accumulator statistics, accountant ledger, batch counters, processed
idempotency keys — as numbered JSON snapshot files in one directory.

Write protocol (crash-safe): serialize to ``<name>.tmp`` in the same
directory, flush + fsync, then ``os.replace`` onto the final name.  A
reader therefore only ever observes complete snapshots; a crash
mid-write leaves at worst a stale ``.tmp`` file that the next save
overwrites.  Old snapshots are pruned down to ``keep`` after every
save, and recovery always resumes from the highest surviving sequence
number.

Stores can be **namespaced**: :meth:`SnapshotStore.namespace` returns
a child store rooted at a subdirectory of this one, with the same
``keep`` policy but independent sequences and pruning.  The campaign
layer gives every campaign its own namespace (accumulator payloads)
under the root store (which holds the manifest + cross-campaign
ledger), so one campaign's churn never prunes another's history.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{10})\.json$")


class SnapshotStore:
    """Atomic, numbered JSON snapshots under one directory.

    Parameters
    ----------
    directory:
        Where snapshots live; created if missing.
    keep:
        How many most-recent snapshots to retain (>= 1).
    """

    def __init__(self, directory, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    # ------------------------------------------------------------------
    def namespace(self, name: str) -> "SnapshotStore":
        """Child store at ``directory/name`` (same ``keep`` policy).

        Namespace names must be flat path components (the campaign
        layer uses spec fingerprints, which are hex).
        """
        if not re.fullmatch(r"[A-Za-z0-9._-]+", name) or name in {
            ".",
            "..",
        }:
            raise ValueError(f"invalid namespace name {name!r}")
        return SnapshotStore(self.directory / name, keep=self.keep)

    def namespaces(self) -> List[str]:
        """Names of all existing child namespaces, sorted."""
        return sorted(
            entry.name
            for entry in self.directory.iterdir()
            if entry.is_dir()
        )

    # ------------------------------------------------------------------
    def _path(self, seq: int) -> Path:
        return self.directory / f"snapshot-{seq:010d}.json"

    def sequences(self) -> List[int]:
        """Sequence numbers of all complete snapshots, ascending."""
        out = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def latest_sequence(self) -> Optional[int]:
        """Highest stored sequence number, or ``None`` when empty."""
        seqs = self.sequences()
        return seqs[-1] if seqs else None

    # ------------------------------------------------------------------
    def save(self, seq: int, payload: Dict[str, Any]) -> Path:
        """Atomically write snapshot ``seq``; prunes old snapshots."""
        if seq < 0:
            raise ValueError(f"seq must be >= 0, got {seq}")
        final = self._path(seq)
        tmp = final.with_suffix(".tmp")
        data = json.dumps({"seq": int(seq), **payload})
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def _prune(self) -> None:
        for seq in self.sequences()[: -self.keep]:
            try:
                self._path(seq).unlink()
            except FileNotFoundError:  # pragma: no cover - racing pruners
                pass

    # ------------------------------------------------------------------
    def load(self, seq: int) -> Dict[str, Any]:
        """Read one snapshot by sequence number."""
        with open(self._path(seq), encoding="utf-8") as handle:
            return json.load(handle)

    def load_latest(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """``(seq, payload)`` of the newest snapshot, or ``None``."""
        seq = self.latest_sequence()
        if seq is None:
            return None
        return seq, self.load(seq)

    def latest_info(self) -> Optional[Tuple[int, float]]:
        """``(seq, mtime)`` of the newest snapshot without reading it
        (healthz reports the sequence and its age)."""
        seq = self.latest_sequence()
        if seq is None:
            return None
        return seq, self._path(seq).stat().st_mtime

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SnapshotStore({str(self.directory)!r}, "
            f"snapshots={len(self.sequences())}, keep={self.keep})"
        )
