"""Client SDK for the LDP ingestion service.

The user-device half of the deployment.  The SDK fetches the server's
``/spec`` once, rebuilds the identical :class:`Protocol` locally, and
**perturbs on the client** — raw values are encoded into LDP reports
before anything is written to the socket, so the server (and the wire)
only ever see privatized data, exactly the paper's trust model.

Submission is retry-safe: every batch carries an idempotency key
(caller-supplied or derived deterministically from the report bytes),
so a retry after a lost response cannot double-count the batch — the
server answers ``duplicate`` for a key it has already folded in.
Transport retries use bounded exponential backoff with jitter and
cover both connection failures and 5xx responses.

A client is bound to at most one campaign.  Constructed bare it talks
to the server's *default* campaign (the pre-campaign v1 behavior);
:meth:`ServiceClient.for_campaign` returns a sibling bound to a
specific campaign fingerprint:

    client = ServiceClient("127.0.0.1", 8321)
    registered = client.register_campaign(spec)
    ab_test = client.for_campaign(registered["campaign"])
    ab_test.submit(values, users=user_ids, rng=7)
    ab_test.seal_campaign()
    estimate = ab_test.estimate()
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.protocol.facade import Protocol
from repro.protocol.spec import ProtocolSpec
from repro.service import wire
from repro.stream.memo import MemoizedEncoder
from repro.utils.rng import RngLike

_log = get_logger("repro.service.client")


class ServiceError(RuntimeError):
    """Non-2xx response from the service.

    ``attempts`` counts how many transport attempts were made before
    this error surfaced (retries cover connection errors and 5xx).
    """

    def __init__(
        self, status: int, payload: Dict[str, Any], attempts: int = 1
    ):
        self.status = int(status)
        self.payload = payload
        self.attempts = int(attempts)
        detail = payload.get("detail") or payload.get("error") or payload
        suffix = f" (after {attempts} attempts)" if attempts > 1 else ""
        super().__init__(f"HTTP {status}: {detail}{suffix}")


class OverBudgetError(ServiceError):
    """The batch contained users past their lifetime budget (HTTP 429)."""

    @property
    def rejected_users(self) -> List[str]:
        return list(self.payload.get("rejected_users", []))


class CampaignClosedError(ServiceError):
    """The addressed campaign is sealed and no longer ingests (409)."""


class ServiceClient:
    """HTTP client bound to one ingestion server (and optionally one
    campaign on it).

    Parameters
    ----------
    host / port:
        Server address.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Transport-level retry attempts beyond the first try, covering
        connection errors (refused/reset, timeouts) *and* 5xx
        responses.  Safe for :meth:`submit` because the idempotency
        key is fixed before the first attempt.
    retry_delay / retry_max_delay:
        Exponential backoff base and cap: attempt k sleeps
        ``min(retry_delay * 2**(k-1), retry_max_delay)`` scaled by a
        uniform jitter in [0.5, 1].
    backoff_rng:
        The ``random.Random`` instance drawing the jitter.  Defaults
        to a fresh OS-seeded instance per client; pass a seeded one to
        make retry timing deterministic in tests.  Never the module
        globals — backoff draws must not perturb (or be perturbed by)
        any other consumer of ``random``.
    campaign:
        Campaign fingerprint this client addresses; ``None`` targets
        the server's default campaign.
    wire_version:
        Force a specific report wire format (1 = JSON envelopes, 2 =
        columnar frames).  ``None`` (the default) negotiates: the SDK
        picks the highest version both it and the server's
        ``/spec``-advertised ``wire_versions`` support, falling back to
        v1 against servers that predate the columnar format.
    metrics_registry:
        Where the client's own instruments (request latency, retry
        counters) live.  ``None`` creates a private registry; siblings
        from :meth:`for_campaign` share their parent's.  Render with
        :meth:`metrics_text`.
    memoize:
        Enable longitudinal memoization
        (:class:`~repro.stream.memo.MemoizedEncoder`): each user's
        perturbed report is cached per value, so re-submitting an
        unchanged value replays the *same* report bytes and the batch
        marks that user as not-fresh — the server charges zero
        additional epsilon for them.  The cache lives for this client
        instance; siblings from :meth:`for_campaign` get their own.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retries: int = 2,
        retry_delay: float = 0.1,
        retry_max_delay: float = 2.0,
        backoff_rng: Optional[random.Random] = None,
        campaign: Optional[str] = None,
        wire_version: Optional[int] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
        memoize: bool = False,
    ):
        if (
            wire_version is not None
            and wire_version not in wire.SUPPORTED_WIRE_VERSIONS
        ):
            raise ValueError(
                f"this SDK speaks wire versions "
                f"{list(wire.SUPPORTED_WIRE_VERSIONS)}, got {wire_version}"
            )
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_delay = float(retry_delay)
        self.retry_max_delay = float(retry_max_delay)
        self.backoff_rng = (
            backoff_rng if backoff_rng is not None else random.Random()
        )
        self.campaign = campaign
        self.wire_version = wire_version
        self.memoize = bool(memoize)
        self._memo: Optional[MemoizedEncoder] = None
        self._negotiated: Optional[int] = None
        self._protocol: Optional[Protocol] = None
        self._fingerprint: Optional[str] = None
        self._spec_response: Optional[Dict[str, Any]] = None
        self.metrics_registry = (
            metrics_registry
            if metrics_registry is not None
            else MetricsRegistry()
        )
        self._request_seconds = self.metrics_registry.histogram(
            "repro_client_request_seconds",
            "Per-attempt HTTP round-trip latency, by endpoint.",
            labels=("endpoint",),
        )
        self._responses = self.metrics_registry.counter(
            "repro_client_responses_total",
            "HTTP responses the client received, by endpoint and "
            "status code.",
            labels=("endpoint", "status"),
        )
        self._retries = self.metrics_registry.counter(
            "repro_client_retries_total",
            "Transport retries, by what triggered them "
            "(connection_error, server_error, backpressure).",
            labels=("reason",),
        )

    # ------------------------------------------------------------------
    # Campaign binding
    # ------------------------------------------------------------------
    def for_campaign(
        self,
        campaign: Union[str, ProtocolSpec, Dict[str, Any]],
    ) -> "ServiceClient":
        """A sibling client addressing one specific campaign.

        Accepts a campaign fingerprint, a :class:`ProtocolSpec`, or a
        spec dict (fingerprinted locally — handy right after
        :meth:`register_campaign` with the same spec).
        """
        if isinstance(campaign, (ProtocolSpec, dict)):
            campaign = wire.spec_fingerprint(campaign)
        return ServiceClient(
            self.host,
            self.port,
            timeout=self.timeout,
            retries=self.retries,
            retry_delay=self.retry_delay,
            retry_max_delay=self.retry_max_delay,
            backoff_rng=self.backoff_rng,
            campaign=str(campaign),
            wire_version=self.wire_version,
            metrics_registry=self.metrics_registry,
            memoize=self.memoize,
        )

    def _campaign_query(self) -> str:
        if self.campaign is None:
            return ""
        return f"?campaign={self.campaign}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Sleep time before retry ``attempt`` (1-based): bounded
        exponential with jitter in [0.5, 1] to avoid thundering-herd
        resubmission from a fleet of clients."""
        base = min(
            self.retry_delay * (2.0 ** (attempt - 1)), self.retry_max_delay
        )
        return base * (0.5 + 0.5 * self.backoff_rng.random())

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        raw_body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> Dict[str, Any]:
        if raw_body is not None:
            data: Optional[bytes] = raw_body
        else:
            data = (
                json.dumps(body).encode("utf-8")
                if body is not None
                else None
            )
        endpoint = path.partition("?")[0]
        if endpoint.startswith("/campaigns/"):
            endpoint = "/campaigns/seal"
        last_error: Optional[Exception] = None
        last_response: Optional[tuple] = None
        attempts = 0
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._backoff(attempt))
            attempts = attempt + 1
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            started = time.perf_counter()
            try:
                connection.request(
                    method,
                    path,
                    body=data,
                    headers={"Content-Type": content_type}
                    if data is not None
                    else {},
                )
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, TimeoutError, OSError) as exc:
                last_error = exc
                if attempt < self.retries:
                    self._retries.labels(reason="connection_error").inc()
                    _log.debug(
                        "retrying after connection error",
                        extra={"endpoint": endpoint, "attempt": attempts},
                    )
                continue
            finally:
                connection.close()
            self._request_seconds.labels(endpoint=endpoint).observe(
                time.perf_counter() - started
            )
            self._responses.labels(
                endpoint=endpoint, status=str(response.status)
            ).inc()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    response.status,
                    {"error": "non_json_response"},
                    attempts=attempts,
                ) from exc
            if response.status >= 500:
                # Transient server-side failure: retry (idempotency
                # keys make resubmission safe), surface the last one.
                last_error = None
                last_response = (response.status, payload)
                if attempt < self.retries:
                    self._retries.labels(reason="server_error").inc()
                continue
            if response.status == 429:
                if payload.get("error") == "backpressure":
                    # A full shard queue is transient — honor the
                    # server's Retry-After hint and resubmit (the
                    # idempotency key makes this safe).
                    last_error = None
                    last_response = (response.status, payload)
                    if attempt < self.retries:
                        self._retries.labels(reason="backpressure").inc()
                    retry_after = payload.get(
                        "retry_after", response.getheader("Retry-After")
                    )
                    try:
                        time.sleep(min(float(retry_after), 5.0))
                    except (TypeError, ValueError):
                        pass
                    continue
                raise OverBudgetError(
                    response.status, payload, attempts=attempts
                )
            if response.status >= 400:
                if payload.get("error") == "campaign_sealed":
                    raise CampaignClosedError(
                        response.status, payload, attempts=attempts
                    )
                raise ServiceError(
                    response.status, payload, attempts=attempts
                )
            return payload
        if last_response is not None:
            raise ServiceError(
                last_response[0], last_response[1], attempts=attempts
            )
        raise ConnectionError(
            f"could not reach service at {self.host}:{self.port} after "
            f"{attempts} attempts"
        ) from last_error

    # ------------------------------------------------------------------
    # Spec / protocol
    # ------------------------------------------------------------------
    def fetch_spec(self) -> Dict[str, Any]:
        """``GET /spec`` (cached); builds the local protocol twin."""
        if self._spec_response is None:
            response = self._request(
                "GET", "/spec" + self._campaign_query()
            )
            version = response.get("wire_version")
            offered = response.get("wire_versions")
            if not isinstance(offered, list) or not offered:
                # Pre-negotiation server: it speaks exactly one version.
                offered = [version]
            if self.wire_version is not None:
                if self.wire_version not in offered:
                    raise wire.WireFormatError(
                        f"forced wire_version {self.wire_version} but the "
                        f"server only speaks {offered}"
                    )
                self._negotiated = self.wire_version
            else:
                mutual = [
                    v
                    for v in wire.SUPPORTED_WIRE_VERSIONS
                    if v in offered
                ]
                if not mutual:
                    raise wire.WireFormatError(
                        f"server speaks wire versions {offered}, this SDK "
                        f"speaks {list(wire.SUPPORTED_WIRE_VERSIONS)}"
                    )
                self._negotiated = max(mutual)
            self._protocol = Protocol.from_spec(response["spec"])
            # Fingerprint what we *rebuilt*, so any local/remote drift
            # (e.g. a spec field this SDK does not understand) is caught
            # here instead of corrupting the aggregate server-side.
            self._fingerprint = wire.spec_fingerprint(self._protocol.spec)
            if self._fingerprint != response.get("fingerprint"):
                raise wire.SpecMismatchError(
                    "local protocol rebuild does not match the server's "
                    "fingerprint — client and server disagree on the "
                    "spec schema"
                )
            if (
                self.campaign is not None
                and self._fingerprint != self.campaign
            ):
                raise wire.SpecMismatchError(
                    f"campaign {self.campaign[:12]!r}... served a spec "
                    f"fingerprinting to {self._fingerprint[:12]!r}... — "
                    f"the campaign id IS the spec fingerprint, so these "
                    f"must agree"
                )
            self._spec_response = response
        return self._spec_response

    @property
    def protocol(self) -> Protocol:
        """The locally rebuilt protocol (fetches the spec on first use)."""
        self.fetch_spec()
        return self._protocol

    @property
    def fingerprint(self) -> str:
        self.fetch_spec()
        return self._fingerprint

    @property
    def negotiated_wire_version(self) -> int:
        """The report wire format this client will submit with."""
        self.fetch_spec()
        return self._negotiated

    # ------------------------------------------------------------------
    # Campaign management
    # ------------------------------------------------------------------
    def register_campaign(
        self,
        spec: Union[Protocol, ProtocolSpec, Dict[str, Any]],
        window: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """``POST /campaigns`` — register a collection campaign.

        Idempotent by content: re-registering the same spec returns the
        live campaign (``created: false``).  Returns the server's
        ``{campaign, state, epsilon, created}`` response; pass
        ``response["campaign"]`` to :meth:`for_campaign`.  ``window``
        (a ``WindowConfig.to_dict()``-shaped object) makes the campaign
        windowed; re-registering with a *conflicting* window is HTTP
        409, omitting it keeps the existing one.
        """
        if isinstance(spec, Protocol):
            spec = spec.spec
        if isinstance(spec, ProtocolSpec):
            spec = spec.to_dict()
        body: Dict[str, Any] = {"spec": spec}
        if window is not None:
            body["window"] = window
        return self._request("POST", "/campaigns", body)

    def campaigns(self) -> List[Dict[str, Any]]:
        """``GET /campaigns`` — every campaign and its state."""
        return self._request("GET", "/campaigns")["campaigns"]

    def seal_campaign(
        self, campaign: Optional[str] = None
    ) -> Dict[str, Any]:
        """``POST /campaigns/<fp>/seal`` — close a campaign to further
        ingestion (defaults to this client's bound campaign)."""
        target = campaign if campaign is not None else self.campaign
        if target is None:
            target = self.fingerprint  # default campaign's fingerprint
        return self._request("POST", f"/campaigns/{target}/seal")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def encode(self, values, rng: RngLike = None):
        """Perturb raw values locally into transmit-ready reports."""
        return self.protocol.client().encode_batch(values, rng)

    @property
    def encoder(self) -> MemoizedEncoder:
        """The persistent memoizing encoder (``memoize=True`` only)."""
        if not self.memoize:
            raise RuntimeError(
                "this client was constructed with memoize=False"
            )
        if self._memo is None:
            self._memo = MemoizedEncoder(self.protocol.client())
        return self._memo

    def submit(
        self,
        values,
        users: Sequence[str],
        rng: RngLike = None,
        idempotency_key: Optional[str] = None,
        round: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Encode locally and submit one batch for ``users``.

        Raw ``values`` never leave this process; only the perturbed
        reports are serialized onto the wire.  With ``memoize=True``
        unchanged values replay the cached report and the batch's
        ``fresh`` vector tells the server to charge only the users
        whose reports were newly perturbed.  ``round`` buckets the
        batch into the campaign's window pane for that round.
        """
        if self.memoize:
            reports, fresh = self.encoder.encode_users(values, users, rng)
        else:
            reports, fresh = self.encode(values, rng), None
        return self.submit_reports(
            reports, users, idempotency_key, round=round, fresh=fresh
        )

    def submit_reports(
        self,
        reports,
        users: Sequence[str],
        idempotency_key: Optional[str] = None,
        round: Optional[int] = None,
        fresh: Optional[Sequence[bool]] = None,
    ) -> Dict[str, Any]:
        """Submit already-encoded reports (``POST /report``).

        Uses the negotiated wire format: v2 frames the batch as packed
        columnar arrays (:func:`repro.service.wire.pack_columns`), v1
        sends the classic JSON envelope.  Either way the batch carries
        the same fingerprint, users and idempotency key and lands in
        the same server-side accumulator, bitwise.  The streaming keys
        (``round``, ``fresh``) ride along only when given — a
        round-less submission is byte-identical to a pre-streaming
        SDK's.
        """
        fresh_list = (
            [bool(f) for f in fresh] if fresh is not None else None
        )
        round_int = int(round) if round is not None else None
        if self.negotiated_wire_version == wire.WIRE_VERSION_COLUMNAR:
            block = wire.reports_to_columns(reports)
            if idempotency_key is None:
                idempotency_key = self._derive_columnar_key(
                    block, users, round_int, fresh_list
                )
            frame = wire.pack_columns(
                block,
                self.fingerprint,
                users=[str(u) for u in users],
                idempotency_key=idempotency_key,
                campaign=self.campaign,
                round=round_int,
                fresh=fresh_list,
            )
            return self._request(
                "POST",
                "/report",
                raw_body=frame,
                content_type=wire.COLUMNAR_CONTENT_TYPE,
            )
        encoded = wire.encode_reports(reports)
        if idempotency_key is None:
            idempotency_key = self._derive_key(
                encoded, users, round_int, fresh_list
            )
        payload: Dict[str, Any] = {
            "users": [str(u) for u in users],
            "idempotency_key": idempotency_key,
            "reports": encoded,
        }
        if round_int is not None:
            payload["round"] = round_int
        if fresh_list is not None:
            payload["fresh"] = fresh_list
        envelope = wire.pack(
            payload,
            self.fingerprint,
            campaign=self.campaign,
        )
        return self._request("POST", "/report", envelope)

    @staticmethod
    def _streaming_key_suffix(
        digest, round_: Optional[int], fresh: Optional[List[bool]]
    ) -> None:
        """Fold the streaming keys into an idempotency digest.

        Only when present — a round-less batch hashes to exactly what a
        pre-streaming SDK derived, so mixed fleets agree on duplicate
        detection.  A memoized batch resubmitted into a *different*
        round is deliberately a distinct key: it is a new pane's worth
        of (replayed, zero-cost) evidence, not a duplicate.
        """
        if round_ is not None:
            digest.update(f"round:{round_}".encode("ascii"))
        if fresh is not None:
            digest.update(json.dumps(fresh).encode("ascii"))

    @staticmethod
    def _derive_key(
        encoded_reports: Dict[str, Any],
        users,
        round_: Optional[int] = None,
        fresh: Optional[List[bool]] = None,
    ) -> str:
        """Deterministic idempotency key from the batch content.

        Retrying the same encoded batch reuses the same key even across
        SDK instances, so a crash-and-rerun of a client script cannot
        double-submit.
        """
        digest = hashlib.sha256()
        digest.update(
            json.dumps(encoded_reports, sort_keys=True).encode("utf-8")
        )
        digest.update(json.dumps([str(u) for u in users]).encode("utf-8"))
        ServiceClient._streaming_key_suffix(digest, round_, fresh)
        return digest.hexdigest()

    @staticmethod
    def _derive_columnar_key(
        block,
        users,
        round_: Optional[int] = None,
        fresh: Optional[List[bool]] = None,
    ) -> str:
        """Deterministic idempotency key for a columnar batch.

        Hashes the block's structure (kind, n, meta, per-column
        dtype/shape) and the raw little-endian column bytes plus the
        user list — the same inputs :func:`wire.pack_columns` frames,
        so identical batches collide by construction.  Deliberately
        *not* the same key as the v1 JSON derivation: a client that
        renegotiates mid-stream resubmits under a fresh key, and the
        server-side duplicate check stays per-representation.
        """
        digest = hashlib.sha256()
        structure = {
            "kind": block.kind,
            "n": int(block.n),
            "meta": block.meta,
            "columns": [
                {
                    "name": name,
                    "dtype": np.asarray(block.columns[name]).dtype.str,
                    "shape": list(np.asarray(block.columns[name]).shape),
                }
                for name in sorted(block.columns)
            ],
        }
        digest.update(
            json.dumps(structure, sort_keys=True).encode("utf-8")
        )
        for name in sorted(block.columns):
            arr = np.ascontiguousarray(block.columns[name])
            digest.update(arr.tobytes())
        digest.update(json.dumps([str(u) for u in users]).encode("utf-8"))
        ServiceClient._streaming_key_suffix(digest, round_, fresh)
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query_path(self, path: str, **params: Any) -> str:
        pairs = []
        if self.campaign is not None:
            pairs.append(("campaign", self.campaign))
        pairs.extend(
            (k, str(v)) for k, v in params.items() if v is not None
        )
        if not pairs:
            return path
        return path + "?" + "&".join(f"{k}={v}" for k, v in pairs)

    def estimate(
        self,
        window: Optional[Union[int, str]] = None,
        decay: Optional[float] = None,
    ):
        """Current server-side estimate, decoded to native objects."""
        return self.estimate_info(window=window, decay=decay)["estimate"]

    def estimate_info(
        self,
        window: Optional[Union[int, str]] = None,
        decay: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Estimate plus its provenance: ``{estimate, reports, state,
        final}``.  ``final`` is False while the campaign is still open
        (more reports may arrive); serving an estimate from a sealed
        campaign finalizes it (state becomes ``estimated``).

        ``window`` (a pane count like ``4`` or a duration like
        ``"5m"``) restricts the estimate to the campaign's most recent
        panes; ``decay`` asks for the exponentially-decayed view.
        Windowed queries never finalize the campaign.
        """
        payload = wire.unpack(
            self._request(
                "GET",
                self._query_path("/estimate", window=window, decay=decay),
            ),
            self.fingerprint,
        )
        return {
            "estimate": wire.decode_estimate(payload["estimate"]),
            "reports": payload.get("reports"),
            "state": payload.get("state"),
            "final": payload.get("final"),
            "window": payload.get("window"),
        }

    def heavy_hitters(
        self,
        k: Optional[int] = None,
        window: Optional[Union[int, str]] = None,
    ) -> Dict[str, Any]:
        """``GET /heavy-hitters`` — live top-k + churn vs the previous
        round, for frequency-shaped campaigns.  Returns the server's
        ``{round, k, indices, frequencies, entered, exited, ...}``."""
        return self._request(
            "GET",
            self._query_path("/heavy-hitters", k=k, window=window),
        )

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """This client's own instruments, rendered as Prometheus text
        exposition (request latency, retry counters).  For the
        *server's* metrics, scrape its ``GET /metrics``."""
        return self.metrics_registry.render()

    def server_metrics_text(self) -> str:
        """Fetch the server's ``GET /metrics`` page (raw exposition
        text; not retried — scraping is periodic by nature)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        if response.status != 200:
            raise ServiceError(response.status, {"error": "metrics"})
        return raw.decode("utf-8")

    def checkpoint(self) -> int:
        """Ask the server to snapshot now; returns the sequence number."""
        return int(self._request("POST", "/checkpoint")["seq"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = (
            f", campaign={self.campaign[:12]}..."
            if self.campaign
            else ""
        )
        return f"ServiceClient({self.host!r}, {self.port}{bound})"
