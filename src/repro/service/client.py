"""Client SDK for the LDP ingestion service.

The user-device half of the deployment.  The SDK fetches the server's
``/spec`` once, rebuilds the identical :class:`Protocol` locally, and
**perturbs on the client** — raw values are encoded into LDP reports
before anything is written to the socket, so the server (and the wire)
only ever see privatized data, exactly the paper's trust model.

Submission is retry-safe: every batch carries an idempotency key
(caller-supplied or derived deterministically from the report bytes),
so a retry after a lost response cannot double-count the batch — the
server answers ``duplicate`` for a key it has already folded in.

    client = ServiceClient("127.0.0.1", 8321)
    response = client.submit(values, users=user_ids, rng=7)
    estimate = client.estimate()
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.protocol.facade import Protocol
from repro.service import wire
from repro.utils.rng import RngLike


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        self.status = int(status)
        self.payload = payload
        detail = payload.get("detail") or payload.get("error") or payload
        super().__init__(f"HTTP {status}: {detail}")


class OverBudgetError(ServiceError):
    """The batch contained users past their lifetime budget (HTTP 429)."""

    @property
    def rejected_users(self) -> List[str]:
        return list(self.payload.get("rejected_users", []))


class ServiceClient:
    """HTTP client bound to one ingestion server.

    Parameters
    ----------
    host / port:
        Server address.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Transport-level retry attempts (connection refused/reset,
        timeouts).  Safe for :meth:`submit` because the idempotency key
        is fixed before the first attempt.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retries: int = 2,
        retry_delay: float = 0.1,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_delay = float(retry_delay)
        self._protocol: Optional[Protocol] = None
        self._fingerprint: Optional[str] = None
        self._spec_response: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_delay)
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(
                    method,
                    path,
                    body=data,
                    headers={"Content-Type": "application/json"}
                    if data is not None
                    else {},
                )
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, TimeoutError, OSError) as exc:
                last_error = exc
                continue
            finally:
                connection.close()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    response.status, {"error": "non_json_response"}
                ) from exc
            if response.status == 429:
                raise OverBudgetError(response.status, payload)
            if response.status >= 400:
                raise ServiceError(response.status, payload)
            return payload
        raise ConnectionError(
            f"could not reach service at {self.host}:{self.port} after "
            f"{self.retries + 1} attempts"
        ) from last_error

    # ------------------------------------------------------------------
    # Spec / protocol
    # ------------------------------------------------------------------
    def fetch_spec(self) -> Dict[str, Any]:
        """``GET /spec`` (cached); builds the local protocol twin."""
        if self._spec_response is None:
            response = self._request("GET", "/spec")
            version = response.get("wire_version")
            if version != wire.WIRE_VERSION:
                raise wire.WireFormatError(
                    f"server speaks wire_version {version!r}, this SDK "
                    f"speaks {wire.WIRE_VERSION}"
                )
            self._protocol = Protocol.from_spec(response["spec"])
            # Fingerprint what we *rebuilt*, so any local/remote drift
            # (e.g. a spec field this SDK does not understand) is caught
            # here instead of corrupting the aggregate server-side.
            self._fingerprint = wire.spec_fingerprint(self._protocol.spec)
            if self._fingerprint != response.get("fingerprint"):
                raise wire.SpecMismatchError(
                    "local protocol rebuild does not match the server's "
                    "fingerprint — client and server disagree on the "
                    "spec schema"
                )
            self._spec_response = response
        return self._spec_response

    @property
    def protocol(self) -> Protocol:
        """The locally rebuilt protocol (fetches the spec on first use)."""
        self.fetch_spec()
        return self._protocol

    @property
    def fingerprint(self) -> str:
        self.fetch_spec()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def encode(self, values, rng: RngLike = None):
        """Perturb raw values locally into transmit-ready reports."""
        return self.protocol.client().encode_batch(values, rng)

    def submit(
        self,
        values,
        users: Sequence[str],
        rng: RngLike = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Encode locally and submit one batch for ``users``.

        Raw ``values`` never leave this process; only the perturbed
        reports are serialized onto the wire.
        """
        return self.submit_reports(
            self.encode(values, rng), users, idempotency_key
        )

    def submit_reports(
        self,
        reports,
        users: Sequence[str],
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit already-encoded reports (``POST /report``)."""
        encoded = wire.encode_reports(reports)
        if idempotency_key is None:
            idempotency_key = self._derive_key(encoded, users)
        envelope = wire.pack(
            {
                "users": [str(u) for u in users],
                "idempotency_key": idempotency_key,
                "reports": encoded,
            },
            self.fingerprint,
        )
        return self._request("POST", "/report", envelope)

    @staticmethod
    def _derive_key(encoded_reports: Dict[str, Any], users) -> str:
        """Deterministic idempotency key from the batch content.

        Retrying the same encoded batch reuses the same key even across
        SDK instances, so a crash-and-rerun of a client script cannot
        double-submit.
        """
        digest = hashlib.sha256()
        digest.update(
            json.dumps(encoded_reports, sort_keys=True).encode("utf-8")
        )
        digest.update(json.dumps([str(u) for u in users]).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self):
        """Current server-side estimate, decoded to native objects."""
        payload = wire.unpack(
            self._request("GET", "/estimate"), self.fingerprint
        )
        return wire.decode_estimate(payload["estimate"])

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def checkpoint(self) -> int:
        """Ask the server to snapshot now; returns the sequence number."""
        return int(self._request("POST", "/checkpoint")["seq"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient({self.host!r}, {self.port})"
