"""Stdlib-only asyncio HTTP ingestion server (multi-tenant).

The aggregator half of the paper's deployment, as an actual network
service.  One :class:`IngestionServer` owns

* a :class:`~repro.campaigns.registry.CampaignRegistry` of concurrent
  collection campaigns — each campaign is a
  :class:`~repro.protocol.facade.Protocol` with its own
  :class:`~repro.protocol.accumulators.ServerAccumulator`,
  idempotency-key set, and lifecycle state
  (``open -> sealed -> estimated``),
* a :class:`~repro.campaigns.ledger.CrossCampaignLedger` charging every
  accepted report against the submitting user's single *global* budget
  (no matter how many campaigns they report into) — over-budget users
  get the whole batch rejected with HTTP 429 and nothing is charged or
  absorbed,
* an optional :class:`~repro.service.store.SnapshotStore` for periodic
  durable checkpoints and resume-on-restart: the root store holds a
  manifest (specs, lifecycle states, counters, the ledger), one child
  namespace per campaign holds its accumulator payload.

Endpoints (all JSON):

======================  ================================================
``GET  /healthz``        liveness, uptime, snapshot seq/age, counters
``GET  /campaigns``      list all campaigns and their states
``POST /campaigns``      register a campaign from a ``{"spec": ...}``
``POST /campaigns/<fp>/seal``  close a campaign to ingestion
``GET  /spec``           spec + fingerprint (``?campaign=<fp>``)
``GET  /estimate``       current estimate (``?campaign=<fp>``); windowed
                         campaigns also take ``?window=<panes|duration>``
                         and ``?decay=<gamma>`` for sliding/decayed views
``GET  /heavy-hitters``  live top-k + churn for frequency campaigns
                         (``?campaign=<fp>&k=<n>[&window=...]``)
``POST /report``         enveloped report batch (batch, idempotent)
``POST /checkpoint``     force a snapshot now; returns its sequence
======================  ================================================

Streaming: a campaign constructed (or registered) with a
:class:`~repro.stream.windows.WindowConfig` buckets reports by the
``round`` their envelope carries into ring-buffer panes (see
:mod:`repro.stream.windows`), enabling sliding-window and
exponentially-decayed estimates without giving up the exact all-time
answer.  Envelopes may also carry a per-user ``fresh`` vector from the
client-side :class:`~repro.stream.memo.MemoizedEncoder`: users replaying
a memoized report are charged **zero** additional epsilon in the
cross-campaign ledger.  Both keys are optional on both wire versions —
round-less, window-unaware v1 clients keep working unchanged.

Campaign routing: a report envelope may carry a ``campaign``
fingerprint; without one it routes to the *default* campaign (the one
the server was constructed with), which is how pre-campaign v1 clients
keep working unchanged.  The envelope fingerprint is always checked
against the **addressed** campaign's spec — a mismatch is HTTP 409,
never a silent mis-aggregation.

Report batches arrive in either wire format: v1 JSON envelopes
(``application/json``) or v2 columnar frames
(``application/x-repro-columnar``, see :func:`repro.service.wire.
pack_columns`); both are checked by the same envelope machinery and
counted per wire version in ``/healthz``.

With ``shards=1`` (the default) ingestion is strictly ordered: request
handlers run on the event loop and absorb synchronously, so
accumulators see batches in arrival order and a checkpoint always
captures a quiescent state.  With ``shards=N`` the handler validates,
charges and routes each batch by idempotency key to one of N
consistent-hash shard workers (each owning index i of every campaign's
per-shard accumulator); a full worker queue is HTTP 429 with a
``Retry-After`` header *before* anything is charged.  Estimates and
checkpoints flush the workers first, then merge shards in fixed order
— deterministic, so kill-and-resume stays bitwise.

The HTTP layer is a deliberately minimal HTTP/1.1 implementation over
``asyncio.start_server`` (no third-party dependency, connection per
request), sufficient for the SDK in :mod:`repro.service.client`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
import urllib.parse
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.campaigns.ledger import CrossCampaignLedger, batch_multiplicity
from repro.campaigns.registry import (
    Campaign,
    CampaignRegistry,
    UnknownCampaignError,
)
from repro.obs.lifecycle import DrainResult, DrainState, advance
from repro.obs.logging import bind_campaign, bound_context, get_logger
from repro.obs.metrics import (
    CONTENT_TYPE_LATEST,
    MetricsRegistry,
    null_registry,
)
from repro.protocol.facade import Protocol
from repro.protocol.spec import ProtocolSpec
from repro.service import wire
from repro.service.sharding import ShardRing, ShardWorker
from repro.service.store import SnapshotStore
from repro.stream.windows import WindowConfig

_log = get_logger("repro.service.server")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on accepted request bodies (64 MiB of JSON).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: ``Retry-After`` (seconds) suggested on shard-queue backpressure.
BACKPRESSURE_RETRY_AFTER = 1

#: ``Retry-After`` (seconds) suggested while the server is draining —
#: long enough that a well-behaved client gives up on this replica.
DRAINING_RETRY_AFTER = 5

SpecLike = Union[Protocol, ProtocolSpec, Dict[str, Any]]

#: Fixed route labels for request metrics (unknown paths collapse to
#: "other" so a URL-scanning client cannot inflate label cardinality).
_KNOWN_ENDPOINTS = {
    "/healthz",
    "/metrics",
    "/spec",
    "/estimate",
    "/heavy-hitters",
    "/campaigns",
    "/report",
    "/checkpoint",
}

#: Budget-spend buckets: epsilon is O(1), not O(milliseconds), so the
#: default latency buckets would put every user in the last bucket.
_EPSILON_BUCKETS = (
    0.125, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0,
)


class ServerMetrics:
    """Every instrument the ingestion server owns, on one registry.

    Two groups, one registry:

    * **State counters/gauges** (always live, whatever ``instrument``
      says) — ``/healthz`` and the checkpoint logic *read these back*,
      so they are the single source of truth: batches accepted (which
      doubles as the snapshot sequence and is restored on resume),
      duplicates, per-wire-version batch counts, shard queue depths
      (live callbacks into the workers), checkpoint latency/size, and
      campaign/ledger views.
    * **Request-path observation** (``instrument=False`` swaps these
      for no-ops) — per-campaign ingest throughput, batch-handling and
      request latency histograms, HTTP rejection counters, per-user
      budget-spend distribution.  This is the group whose cost the
      benchmark's instrumented-vs-uninstrumented row bounds (≤ 5 %).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        instrument: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.instrumented = bool(instrument) and self.registry.enabled
        observed = self.registry if self.instrumented else null_registry()

        # -- state (always live; healthz is a view over these) --------
        self.batches_accepted = self.registry.counter(
            "repro_batches_accepted_total",
            "Report batches accepted, by campaign; the sum over "
            "campaigns doubles as the snapshot sequence number and "
            "therefore resumes across restarts (per-child restore).",
            labels=("campaign",),
        )
        self.duplicate_batches = self.registry.counter(
            "repro_duplicate_batches_total",
            "Batches answered 'duplicate' via their idempotency key; "
            "resumes across restarts.",
        )
        self.wire_batches = self.registry.counter(
            "repro_ingest_batches_total",
            "Accepted batches by wire format version.",
            labels=("wire_version",),
        )
        for version in wire.SUPPORTED_WIRE_VERSIONS:
            # Pre-seed both series so /metrics shows an explicit zero
            # (and healthz its key) before the first batch arrives.
            self.wire_batches.labels(wire_version=str(version))
        self.shard_queue_depth = self.registry.gauge(
            "repro_shard_queue_depth",
            "Batches waiting in each shard worker's bounded queue "
            "(live view; empty on a single-shard server).",
            labels=("shard",),
        )
        self.shard_absorbed = self.registry.gauge(
            "repro_shard_absorbed_batches",
            "Batches each shard worker has absorbed since process "
            "start (live view of the worker counter).",
            labels=("shard",),
        )
        self.shard_errors = self.registry.gauge(
            "repro_shard_absorb_errors",
            "Residual absorb errors per shard worker — validated "
            "batches cannot fail on client data, so nonzero means a "
            "server-side bug.",
            labels=("shard",),
        )
        self.checkpoints = self.registry.counter(
            "repro_checkpoints_total",
            "Snapshots written (periodic, explicit, and drain-time).",
        )
        self.checkpoint_seconds = self.registry.histogram(
            "repro_checkpoint_seconds",
            "Wall-clock latency of one full checkpoint (shard flush + "
            "campaign payloads + manifest).",
        )
        self.checkpoint_bytes = self.registry.gauge(
            "repro_checkpoint_last_bytes",
            "Total bytes of the most recent checkpoint (manifest plus "
            "every campaign payload written in that round).",
        )
        self.campaign_reports = self.registry.gauge(
            "repro_campaign_reports",
            "Reports absorbed per campaign, summed across shards "
            "(live view of the accumulators).",
            labels=("campaign",),
        )
        self.campaigns = self.registry.gauge(
            "repro_campaigns",
            "Registered campaigns on this server.",
        )
        self.users_charged = self.registry.gauge(
            "repro_users_charged",
            "Distinct users with nonzero spend in the cross-campaign "
            "ledger.",
        )
        self.uptime = self.registry.gauge(
            "repro_uptime_seconds",
            "Seconds since this server object was constructed.",
        )
        self.draining = self.registry.gauge(
            "repro_draining",
            "1 while the server is draining (new batches get 503), "
            "else 0.",
        )

        # -- request-path observation (instrument-gated) ---------------
        self.ingest_reports = observed.counter(
            "repro_ingest_reports_total",
            "Individual LDP reports accepted, by campaign and wire "
            "format version.",
            labels=("campaign", "wire_version"),
        )
        self.batch_seconds = observed.histogram(
            "repro_batch_handle_seconds",
            "POST /report handling latency per batch (decode, "
            "validate, charge, absorb/enqueue), by campaign.",
            labels=("campaign",),
        )
        self.request_seconds = observed.histogram(
            "repro_request_seconds",
            "HTTP request handling latency by endpoint.",
            labels=("endpoint",),
        )
        self.http_responses = observed.counter(
            "repro_http_responses_total",
            "HTTP responses by endpoint and status code (the 400/404/"
            "409/429 series are the rejection counters).",
            labels=("endpoint", "status"),
        )
        self.rejected_batches = observed.counter(
            "repro_rejected_batches_total",
            "POST /report batches rejected, by reason.",
            labels=("reason",),
        )
        self.budget_spend = observed.histogram(
            "repro_user_budget_spent_epsilon",
            "Cumulative per-user epsilon spend, observed for every "
            "*charged* user in each accepted batch after the charge "
            "(memoized re-reports charge nobody), by campaign.",
            buckets=_EPSILON_BUCKETS,
            labels=("campaign",),
        )
        self.campaign_window_latest = self.registry.gauge(
            "repro_campaign_window_latest_round",
            "Highest streaming round absorbed per windowed campaign "
            "(-1 before any data; absent for unwindowed campaigns).",
            labels=("campaign",),
        )
        self.campaign_window_panes = self.registry.gauge(
            "repro_campaign_window_live_panes",
            "Distinct live ring panes per windowed campaign, across "
            "shards.",
            labels=("campaign",),
        )
        self.campaign_window_reports = self.registry.gauge(
            "repro_campaign_window_reports",
            "Reports currently held in live (in-window) panes per "
            "windowed campaign; the all-time total is "
            "repro_campaign_reports.",
            labels=("campaign",),
        )

    # ------------------------------------------------------------------
    def track_server(self, server: "IngestionServer") -> None:
        """Point the live-view gauges at the server's real state."""
        self.campaigns.set_function(lambda: len(server.registry))
        self.users_charged.set_function(
            lambda: len(server.ledger.users())
        )
        self.uptime.set_function(
            lambda: time.monotonic() - server._started_at
        )
        self.draining.set_function(
            lambda: 0.0 if server.drain_state is DrainState.SERVING else 1.0
        )

    def track_worker(self, worker: ShardWorker) -> None:
        shard = str(worker.index)
        self.shard_queue_depth.labels(shard=shard).set_function(
            worker.depth
        )
        self.shard_absorbed.labels(shard=shard).set_function(
            lambda: worker.absorbed_batches
        )
        self.shard_errors.labels(shard=shard).set_function(
            lambda: worker.errors
        )

    def track_campaign(self, campaign: Campaign) -> None:
        fp = campaign.fingerprint
        self.campaign_reports.labels(campaign=fp).set_function(
            lambda: campaign.reports
        )
        # Pre-seed the per-campaign series so exposition shows explicit
        # zeros (deterministically, children render sorted by label).
        self.batches_accepted.labels(campaign=fp)
        self.budget_spend.labels(campaign=fp)
        if campaign.windowed:
            self.campaign_window_latest.labels(campaign=fp).set_function(
                campaign.window_latest_round
            )
            self.campaign_window_panes.labels(campaign=fp).set_function(
                campaign.window_live_panes
            )
            self.campaign_window_reports.labels(campaign=fp).set_function(
                campaign.window_reports
            )


class IngestionServer:
    """Networked LDP aggregator for one or many campaigns.

    Parameters
    ----------
    protocol_or_spec:
        The *default* campaign — a :class:`Protocol`, a
        :class:`ProtocolSpec`, or a spec dict.  Campaign-unaware (v1)
        envelopes route here.  ``None`` starts a server with no
        default; every request must then address a campaign.
    lifetime_epsilon:
        Per-user **global** budget cap, shared across every campaign
        (cross-campaign sequential composition).  Defaults to the
        default campaign's epsilon (each user reports once, the
        paper's m = 1 policy), else the registered campaigns' max;
        required when the server starts with no campaigns at all.
    store:
        Snapshot store for durable checkpoints; when it already holds
        a manifest the server resumes *all* campaigns plus the ledger
        from it (fingerprint-checked per campaign).
    checkpoint_every:
        Write a snapshot after every this-many accepted batches
        (requires ``store``; ``None`` disables periodic checkpoints).
        Campaign registrations and seals checkpoint immediately.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    campaigns:
        Additional (non-default) campaign specs to register at boot.
    shards:
        Number of shard workers.  ``1`` (the default) keeps the classic
        inline event-loop ingest; ``N > 1`` starts N absorption threads
        behind bounded queues with consistent-hash routing.
    shard_queue_depth:
        Bound on each shard worker's queue (batches); a full queue is
        HTTP 429 backpressure with ``Retry-After``.
    metrics_registry:
        Mount the server's instruments on an existing
        :class:`~repro.obs.metrics.MetricsRegistry` (embedding hosts
        share one ``/metrics`` page this way).  ``None`` creates a
        private registry; see :attr:`metrics`.
    instrument:
        ``False`` swaps the request-path observation instruments
        (latency/spend histograms, per-campaign counters) for no-ops.
        State counters stay live either way — healthz and the
        checkpoint sequence read them.
    window:
        Optional :class:`~repro.stream.windows.WindowConfig` (or its
        dict form) applied to every campaign registered at boot.  The
        campaigns then accumulate into ring-buffer panes keyed by the
        envelope's streaming round and answer
        ``GET /estimate?window=...`` and ``GET /heavy-hitters``;
        campaigns registered later via ``POST /campaigns`` choose their
        own window in the request body.
    """

    def __init__(
        self,
        protocol_or_spec: Optional[SpecLike] = None,
        lifetime_epsilon: Optional[float] = None,
        store: Optional[SnapshotStore] = None,
        checkpoint_every: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        campaigns: Optional[Iterable[SpecLike]] = None,
        shards: int = 1,
        shard_queue_depth: int = 64,
        metrics_registry: Optional[MetricsRegistry] = None,
        instrument: bool = True,
        window: Optional[Union[WindowConfig, Dict[str, Any]]] = None,
    ):
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if store is None:
                raise ValueError("checkpoint_every requires a store")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.metrics = ServerMetrics(metrics_registry, instrument)
        self.shards = int(shards)
        self.registry = CampaignRegistry(shards=self.shards)
        self._ring: Optional[ShardRing] = None
        self._workers: Optional[list] = None
        if self.shards > 1:
            self._ring = ShardRing(self.shards)
            self._workers = [
                ShardWorker(i, queue_depth=shard_queue_depth).start()
                for i in range(self.shards)
            ]
            for worker in self._workers:
                self.metrics.track_worker(worker)
        if window is not None and not isinstance(window, WindowConfig):
            window = WindowConfig.from_dict(window)
        self.window = window
        if protocol_or_spec is not None:
            campaign, _ = self.registry.register(
                protocol_or_spec, default=True, window=window
            )
            self.metrics.track_campaign(campaign)
        for spec in campaigns or ():
            campaign, _ = self.registry.register(spec, window=window)
            self.metrics.track_campaign(campaign)
        if lifetime_epsilon is None:
            if len(self.registry) == 0:
                raise ValueError(
                    "a server starting with no campaigns needs an "
                    "explicit lifetime_epsilon"
                )
            default = self.registry.default
            lifetime_epsilon = (
                default.spec.epsilon
                if default is not None
                else max(c.spec.epsilon for c in self.registry)
            )
        self.ledger = CrossCampaignLedger(lifetime_epsilon)
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.host = host
        self.port = port
        self._drain_state = DrainState.SERVING
        self._request_seq = itertools.count(1)
        self._resumed_from: Optional[int] = None
        self._started_at = time.monotonic()
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.metrics.track_server(self)
        if self.store is not None:
            self._maybe_resume()

    # ------------------------------------------------------------------
    # Single-campaign (v1) compatibility surface
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> Optional[Protocol]:
        """The default campaign's protocol (``None`` without one)."""
        default = self.registry.default
        return default.protocol if default is not None else None

    @property
    def spec(self) -> Optional[ProtocolSpec]:
        default = self.registry.default
        return default.spec if default is not None else None

    @property
    def fingerprint(self) -> Optional[str]:
        default = self.registry.default
        return default.fingerprint if default is not None else None

    @property
    def accountant(self):
        """The cross-campaign ledger's underlying accountant."""
        return self.ledger.accountant

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _maybe_resume(self) -> None:
        loaded = self.store.load_latest()
        if loaded is None:
            return
        seq, snapshot = loaded
        if "campaigns" in snapshot:
            self._resume_manifest(seq, snapshot)
        else:
            self._resume_legacy(seq, snapshot)
        self._resumed_from = seq

    def _resume_manifest(self, seq: int, snapshot: Dict[str, Any]) -> None:
        """Restore every campaign + the ledger from a campaign manifest."""
        manifest_default = snapshot.get("default")
        configured = self.registry.default
        if (
            configured is not None
            and manifest_default is not None
            and configured.fingerprint != manifest_default
        ):
            raise wire.SpecMismatchError(
                f"snapshot {seq} in {self.store.directory} has default "
                f"campaign {str(manifest_default)[:12]!r}..., this server "
                f"was configured with {configured.fingerprint[:12]!r}..."
            )
        for fp, entry in snapshot["campaigns"].items():
            if fp in self.registry:
                campaign = self.registry.get(fp)
            else:
                campaign, _ = self.registry.register(
                    entry["spec"],
                    default=(fp == manifest_default),
                    window=entry.get("window"),
                )
                self.metrics.track_campaign(campaign)
            if campaign.fingerprint != fp:
                raise wire.SpecMismatchError(
                    f"manifest entry {str(fp)[:12]!r}... does not match "
                    f"its own spec (fingerprint "
                    f"{campaign.fingerprint[:12]!r}...)"
                )
            # The sequence counter is labelled by campaign; restore each
            # child so both the per-campaign series and the summed
            # snapshot seq come back exact.
            self.metrics.batches_accepted.labels(campaign=fp).restore(
                int(entry.get("batches_accepted", 0))
            )
            saved_seq = entry.get("seq")
            if saved_seq is None:  # registered but never checkpointed
                continue
            payload = self.store.namespace(fp).load(int(saved_seq))
            campaign.restore(entry, payload)
        self.ledger = CrossCampaignLedger.from_dict(snapshot["ledger"])
        self.metrics.duplicate_batches.restore(
            int(snapshot.get("duplicates", 0))
        )
        _log.info(
            "resumed from snapshot",
            extra={
                "seq": seq,
                "campaigns": len(self.registry),
                "batches_accepted": int(snapshot["batches_accepted"]),
            },
        )

    def _resume_legacy(self, seq: int, snapshot: Dict[str, Any]) -> None:
        """Restore a pre-campaign (PR 3) single-protocol snapshot into
        the default campaign."""
        default = self.registry.default
        if default is None or snapshot.get("fingerprint") != (
            default.fingerprint
        ):
            raise wire.SpecMismatchError(
                f"snapshot {seq} in {self.store.directory} was written "
                f"by a different protocol (fingerprint "
                f"{str(snapshot.get('fingerprint'))[:12]!r}...)"
            )
        wire.decode_accumulator_state(
            default.accumulator, snapshot["accumulator"]
        )
        self.ledger = CrossCampaignLedger.from_dict(snapshot["accountant"])
        default.seen_keys = set(snapshot.get("idempotency_keys", []))
        default.batches_accepted = int(snapshot["batches_accepted"])
        default.dirty = True
        self.metrics.batches_accepted.labels(
            campaign=default.fingerprint
        ).restore(default.batches_accepted)
        _log.info(
            "resumed from legacy snapshot",
            extra={
                "seq": seq,
                "batches_accepted": default.batches_accepted,
            },
        )

    def _flush_shards(self) -> None:
        """Barrier: wait until every enqueued batch has been absorbed.

        Estimates and checkpoints run behind this, so they always see
        (and persist) a state covering exactly the accepted batches —
        the quiescence the inline single-shard path gets for free.
        """
        if self._workers is not None:
            for worker in self._workers:
                worker.flush()

    def checkpoint_now(self) -> int:
        """Write a full snapshot — every dirty campaign's payload into
        its namespace, then the root manifest — and return its seq.

        The manifest lands last, so a crash mid-checkpoint leaves the
        previous manifest pointing at campaign payloads that are still
        retained (``keep`` >= 2 guarantees the window).
        """
        if self.store is None:
            raise RuntimeError("server has no snapshot store")
        started = time.perf_counter()
        self._flush_shards()
        seq = self.metrics.batches_accepted.value_int()
        written_bytes = 0
        for campaign in self.registry:
            if not campaign.dirty:
                continue
            namespace = self.store.namespace(campaign.fingerprint)
            path = namespace.save(seq, campaign.snapshot_payload())
            written_bytes += path.stat().st_size
            campaign.saved_seq = seq
            campaign.dirty = False
        default = self.registry.default
        manifest_path = self.store.save(
            seq,
            {
                "wire_version": wire.WIRE_VERSION,
                "type": "campaign-manifest",
                "default": default.fingerprint if default else None,
                "campaigns": {
                    c.fingerprint: c.manifest_entry() for c in self.registry
                },
                "ledger": self.ledger.to_dict(),
                "batches_accepted": seq,
                "duplicates": self.metrics.duplicate_batches.value_int(),
            },
        )
        written_bytes += manifest_path.stat().st_size
        elapsed = time.perf_counter() - started
        self.metrics.checkpoints.inc()
        self.metrics.checkpoint_seconds.observe(elapsed)
        self.metrics.checkpoint_bytes.set(written_bytes)
        _log.info(
            "checkpoint written",
            extra={
                "seq": seq,
                "bytes": written_bytes,
                "seconds": round(elapsed, 6),
            },
        )
        return seq

    def _checkpoint_if_durable(self) -> None:
        """Persist registry mutations (register/seal) immediately."""
        if self.store is not None:
            self.checkpoint_now()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _resolve(
        self, campaign_id: Optional[str]
    ) -> Tuple[Optional[Campaign], Optional[Tuple[int, Dict[str, Any]]]]:
        """Route to a campaign; returns (campaign, error_response)."""
        try:
            return self.registry.resolve(campaign_id), None
        except UnknownCampaignError as exc:
            return None, (
                404,
                {
                    "error": "unknown_campaign",
                    "campaign": campaign_id,
                    "detail": str(exc.args[0]) if exc.args else str(exc),
                },
            )

    def _handle_healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness view, read back out of the metrics registry.

        Everything numeric here is a registry sample — the server keeps
        no parallel healthz bookkeeping.  ``/metrics`` is the same data
        with history (histograms) and labels; this endpoint stays for
        humans and cheap liveness probes.
        """
        m = self.metrics
        snapshot_info = None
        if self.store is not None:
            info = self.store.latest_info()
            if info is not None:
                seq, mtime = info
                snapshot_info = {
                    "latest_seq": seq,
                    "age_seconds": max(0.0, time.time() - mtime),
                }
        return 200, {
            "status": (
                "ok"
                if self._drain_state is DrainState.SERVING
                else self._drain_state.value
            ),
            "uptime_seconds": m.uptime.value,
            "reports": self.registry.total_reports(),
            "batches_accepted": m.batches_accepted.value_int(),
            "duplicates": m.duplicate_batches.value_int(),
            "wire_versions": {
                str(v): m.wire_batches.labels(
                    wire_version=str(v)
                ).value_int()
                for v in wire.SUPPORTED_WIRE_VERSIONS
            },
            "shards": {
                "count": self.shards,
                "queue_depths": [
                    w.depth() for w in self._workers or ()
                ],
                "absorbed_batches": [
                    w.absorbed_batches for w in self._workers or ()
                ],
                "absorb_errors": [
                    w.errors for w in self._workers or ()
                ],
            },
            "resumed_from_snapshot": self._resumed_from,
            "users_charged": int(m.users_charged.value),
            "lifetime_epsilon": self.ledger.lifetime_epsilon,
            "snapshot": snapshot_info,
            "campaigns": {
                c.fingerprint: {
                    "kind": c.spec.kind,
                    "state": c.state.value,
                    "default": c.default,
                    "reports": c.reports,
                    "batches_accepted": c.batches_accepted,
                    "duplicates": c.duplicates,
                }
                for c in self.registry
            },
        }

    def _handle_metrics(self) -> Tuple[int, str]:
        """``GET /metrics`` — Prometheus text exposition v0.0.4."""
        return 200, self.metrics.registry.render()

    def _handle_spec(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        campaign, error = self._resolve(query.get("campaign"))
        if error is not None:
            return error
        return 200, {
            # ``wire_version`` stays 1 — old clients equality-check it;
            # version-2-capable clients negotiate on ``wire_versions``.
            "wire_version": wire.WIRE_VERSION,
            "wire_versions": list(wire.SUPPORTED_WIRE_VERSIONS),
            "fingerprint": campaign.fingerprint,
            "campaign": campaign.fingerprint,
            "state": campaign.state.value,
            "spec": campaign.spec.to_dict(),
            "epsilon_per_report": campaign.spec.epsilon,
            "lifetime_epsilon": self.ledger.lifetime_epsilon,
            # Window-unaware clients ignore this; window-aware ones
            # learn the pane geometry for their ?window= queries.
            "window": (
                campaign.window.to_dict()
                if campaign.window is not None
                else None
            ),
        }

    def _handle_estimate(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        campaign, error = self._resolve(query.get("campaign"))
        if error is not None:
            return error
        if query.get("window") is not None or query.get("decay") is not None:
            return self._handle_window_estimate(campaign, query)
        # Quiesce the shard workers so the estimate covers every batch
        # accepted so far, then merge the shards in fixed order.
        self._flush_shards()
        if campaign.reports == 0:
            return 409, {
                "error": "no_reports",
                "campaign": campaign.fingerprint,
            }
        # Serving an estimate from a *sealed* campaign finalizes it;
        # an open campaign may be estimated at any time, but the result
        # is explicitly non-final (more reports can still arrive).
        final = not campaign.accepts_reports
        if final and campaign.state.value == "sealed":
            campaign.mark_estimated()
            self._checkpoint_if_durable()
        try:
            estimate = campaign.merged_accumulator().estimate()
        except TypeError as exc:
            # A decay-configured campaign whose protocol kind has no
            # linear estimate (histogram projection, mixed tuples).
            return 400, {
                "error": "bad_estimate",
                "campaign": campaign.fingerprint,
                "detail": str(exc),
            }
        return 200, wire.pack(
            {
                "estimate": wire.encode_estimate(estimate),
                "reports": campaign.reports,
                "state": campaign.state.value,
                "final": final,
            },
            campaign.fingerprint,
            campaign=campaign.fingerprint,
        )

    def _handle_window_estimate(
        self, campaign: Campaign, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        """``GET /estimate?window=<panes|duration>[&decay=<gamma>]``.

        Windowed estimates never finalize a campaign — they are live
        monitoring views, not the collection's final answer.
        """
        if not campaign.windowed:
            return 409, {
                "error": "not_windowed",
                "campaign": campaign.fingerprint,
                "detail": "campaign has no window config; only the "
                "all-time estimate is available",
            }
        try:
            panes = campaign.window.resolve_panes(query.get("window"))
            decay = (
                float(query["decay"]) if query.get("decay") is not None
                else None
            )
        except ValueError as exc:
            return 400, {"error": "bad_window", "detail": str(exc)}
        self._flush_shards()
        merged = campaign.merged_window()
        try:
            if decay is not None:
                estimate = merged.decayed_estimate(decay, panes)
            else:
                estimate = merged.window_estimate(panes)
        except ValueError as exc:
            return 409, {
                "error": "no_reports",
                "campaign": campaign.fingerprint,
                "detail": str(exc),
            }
        except TypeError as exc:
            return 400, {"error": "bad_window", "detail": str(exc)}
        latest = merged.latest_round
        return 200, wire.pack(
            {
                "estimate": wire.encode_estimate(estimate),
                "reports": merged.window_count(panes),
                "state": campaign.state.value,
                "final": False,
                "window": {
                    "panes": panes,
                    "latest_round": latest,
                    "decay": decay,
                },
            },
            campaign.fingerprint,
            campaign=campaign.fingerprint,
        )

    def _handle_heavy_hitters(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        """``GET /heavy-hitters?[campaign=..&k=..&window=..]`` — top-k
        categories with churn against the previous round.

        Frequency-shaped campaigns only.  Windowed campaigns rank over
        the current window (the live view heavy hitters are *for*);
        plain campaigns rank over the all-time estimate.
        """
        campaign, error = self._resolve(query.get("campaign"))
        if error is not None:
            return error
        if campaign.spec.kind not in ("frequency", "histogram"):
            return 409, {
                "error": "not_frequency",
                "campaign": campaign.fingerprint,
                "detail": f"heavy hitters need a frequency-shaped "
                f"campaign, not {campaign.spec.kind!r}",
            }
        try:
            k = int(query.get("k", 10))
        except ValueError:
            return 400, {
                "error": "bad_request",
                "detail": f"k must be an integer, got {query.get('k')!r}",
            }
        if k < 1:
            return 400, {
                "error": "bad_request",
                "detail": f"k must be >= 1, got {k}",
            }
        panes: Optional[int] = None
        if campaign.windowed:
            try:
                panes = campaign.window.resolve_panes(query.get("window"))
            except ValueError as exc:
                return 400, {"error": "bad_window", "detail": str(exc)}
        self._flush_shards()
        round_: Optional[int] = None
        try:
            if campaign.windowed:
                merged = campaign.merged_window()
                windowed_view = merged.window_accumulator(panes)
                if windowed_view.count == 0:
                    raise ValueError("no reports in window")
                estimate = windowed_view.estimate()
                round_ = merged.latest_round
                reports = int(windowed_view.count)
            else:
                if query.get("window") is not None:
                    return 409, {
                        "error": "not_windowed",
                        "campaign": campaign.fingerprint,
                        "detail": "campaign has no window config",
                    }
                if campaign.reports == 0:
                    raise ValueError("no reports received yet")
                estimate = campaign.merged_accumulator().estimate()
                reports = int(campaign.reports)
        except ValueError as exc:
            return 409, {
                "error": "no_reports",
                "campaign": campaign.fingerprint,
                "detail": str(exc),
            }
        # Histogram estimates carry the projected probability vector;
        # frequency estimates are already the frequency vector.
        frequencies = getattr(estimate, "histogram", estimate)
        view = campaign.heavy_tracker(k).update(
            frequencies, round_=round_, k=k
        )
        return 200, {
            "campaign": campaign.fingerprint,
            "reports": reports,
            **view.to_dict(),
        }

    def _handle_campaign_list(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "campaigns": self.registry.describe(),
            "lifetime_epsilon": self.ledger.lifetime_epsilon,
        }

    def _handle_campaign_register(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        if body is None or not isinstance(body.get("spec"), dict):
            return 400, {
                "error": "bad_request",
                "detail": "POST /campaigns requires a JSON body with a "
                "'spec' object (ProtocolSpec.to_dict())",
            }
        window = body.get("window")
        if window is not None and not isinstance(window, dict):
            return 400, {
                "error": "bad_request",
                "detail": "'window' must be a WindowConfig object "
                "(panes / pane_seconds / decay)",
            }
        try:
            campaign, created = self.registry.register(
                body["spec"], window=window
            )
        except ValueError as exc:
            if "already registered" in str(exc):
                # Same spec, conflicting window config: the campaign
                # exists, so this is a conflict, not a bad request.
                return 409, {"error": "window_conflict", "detail": str(exc)}
            return 400, {"error": "bad_spec", "detail": str(exc)}
        except (KeyError, TypeError) as exc:
            return 400, {"error": "bad_spec", "detail": str(exc)}
        if created:
            self.metrics.track_campaign(campaign)
            _log.info(
                "campaign registered",
                extra={
                    "campaign": campaign.fingerprint,
                    "kind": campaign.spec.kind,
                },
            )
            self._checkpoint_if_durable()
        return 200, {
            "campaign": campaign.fingerprint,
            "state": campaign.state.value,
            "epsilon": campaign.spec.epsilon,
            "created": created,
        }

    def _handle_campaign_seal(
        self, fingerprint: str
    ) -> Tuple[int, Dict[str, Any]]:
        campaign, error = self._resolve(fingerprint)
        if error is not None:
            return error
        was = campaign.state
        state = campaign.seal()
        if state is not was:
            _log.info(
                "campaign sealed",
                extra={
                    "campaign": campaign.fingerprint,
                    "reports": campaign.reports,
                },
            )
            self._checkpoint_if_durable()
        return 200, {
            "campaign": campaign.fingerprint,
            "state": state.value,
            "reports": campaign.reports,
        }

    def _handle_report(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Drain gate + instrumentation around the batch handler."""
        if self._drain_state is not DrainState.SERVING:
            self.metrics.rejected_batches.labels(reason="draining").inc()
            return 503, {
                "error": "draining",
                "retry_after": DRAINING_RETRY_AFTER,
                "detail": "server is draining; no new batches accepted",
            }
        started = time.perf_counter()
        status, payload = self._handle_report_inner(body)
        if self.metrics.instrumented:
            self.metrics.batch_seconds.labels(
                campaign=str(payload.get("campaign") or "")
            ).observe(time.perf_counter() - started)
            if status != 200:
                reason = str(payload.get("error") or f"http_{status}")
                self.metrics.rejected_batches.labels(reason=reason).inc()
                _log.info(
                    "batch rejected",
                    extra={"status": status, "reason": reason},
                )
        return status, payload

    def _handle_report_inner(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            campaign_id = wire.envelope_campaign(body)
        except wire.WireFormatError as exc:
            return 400, {"error": "bad_envelope", "detail": str(exc)}
        campaign, error = self._resolve(campaign_id)
        if error is not None:
            return error
        bind_campaign(campaign.fingerprint)
        try:
            payload = wire.unpack(body, campaign.fingerprint)
        except wire.SpecMismatchError as exc:
            return 409, {"error": "spec_mismatch", "detail": str(exc)}
        except wire.WireFormatError as exc:
            return 400, {"error": "bad_envelope", "detail": str(exc)}

        if not campaign.accepts_reports:
            return 409, {
                "error": "campaign_sealed",
                "campaign": campaign.fingerprint,
                "state": campaign.state.value,
                "detail": "campaign no longer accepts reports",
            }

        key = payload.get("idempotency_key")
        if key is not None and key in campaign.seen_keys:
            campaign.duplicates += 1
            self.metrics.duplicate_batches.inc()
            return 200, {
                "status": "duplicate",
                "accepted": 0,
                "campaign": campaign.fingerprint,
                "total_reports": campaign.reports,
            }

        users = payload.get("users")
        if not isinstance(users, list) or not users:
            return 400, {
                "error": "bad_request",
                "detail": "payload must carry a non-empty 'users' list",
            }

        # Streaming extensions (both optional, both wire versions):
        # 'round' buckets the batch into a window pane, 'fresh' marks
        # which users' reports were newly perturbed this round — only
        # those are charged (memoized replays are privacy-free, see
        # DESIGN.md "Streaming analytics").
        round_ = payload.get("round")
        if round_ is not None:
            if not isinstance(round_, int) or isinstance(round_, bool) \
                    or round_ < 0:
                return 400, {
                    "error": "bad_request",
                    "detail": f"'round' must be a non-negative integer, "
                    f"got {round_!r}",
                }
        fresh = payload.get("fresh")
        if fresh is not None:
            if (
                not isinstance(fresh, list)
                or len(fresh) != len(users)
                or not all(isinstance(f, bool) for f in fresh)
            ):
                return 400, {
                    "error": "bad_request",
                    "detail": "'fresh' must be a list of booleans, one "
                    "per user",
                }
        block = payload.get("columns")
        if block is not None:
            wire_version = wire.WIRE_VERSION_COLUMNAR
            batch: Any = block
            n = int(block.n)
        else:
            wire_version = wire.WIRE_VERSION
            try:
                batch = wire.decode_reports(payload["reports"])
            except (KeyError, wire.WireFormatError, ValueError) as exc:
                return 400, {"error": "bad_reports", "detail": str(exc)}
            n = wire.report_count(batch)
        if n != len(users):
            return 400, {
                "error": "bad_request",
                "detail": f"batch carries {n} reports for {len(users)} "
                f"users",
            }

        # Validate before charging: a shape/protocol violation the
        # codec could not catch must not consume anyone's budget.  On
        # the sharded path this runs the checks the worker's absorb
        # would, so a batch that reaches a worker queue cannot fail on
        # client data.
        try:
            campaign.validate_batch(batch)
        except ValueError as exc:
            return 400, {"error": "bad_reports", "detail": str(exc)}

        # Backpressure before budget: a full shard queue rejects the
        # batch retryably (429 + Retry-After) with nothing charged.
        # The capacity check cannot go stale — handlers are the only
        # producers and run single-threaded on the event loop.
        worker = None
        if self._workers is not None:
            route_key = (
                str(key) if key is not None
                else f"batch:{self.metrics.batches_accepted.value_int()}"
            )
            worker = self._workers[self._ring.route(route_key)]
            if not worker.has_capacity():
                return 429, {
                    "error": "backpressure",
                    "campaign": campaign.fingerprint,
                    "shard": worker.index,
                    "retry_after": BACKPRESSURE_RETRY_AFTER,
                }

        # Budget enforcement is atomic per batch *against the global
        # cross-campaign ledger*: either every user has room for all
        # their reports in the batch (at multiplicity) on top of what
        # they already spent in ANY campaign, or nothing happens.
        # Memoized replays ('fresh' flag False) cost zero epsilon —
        # they are byte-identical to a report already paid for.
        epsilon = campaign.spec.epsilon
        charged_users = (
            [u for u, f in zip(users, fresh) if f]
            if fresh is not None else users
        )
        multiplicity = batch_multiplicity(charged_users)
        rejected = self.ledger.rejected_users(multiplicity, epsilon)
        if rejected:
            return 429, {
                "error": "budget_exceeded",
                "campaign": campaign.fingerprint,
                "rejected_users": rejected,
                "lifetime_epsilon": self.ledger.lifetime_epsilon,
            }

        if worker is not None:
            # Validated and pre-checked: hand off to the shard worker
            # (absorption happens off-loop, in per-shard FIFO order).
            worker.submit(campaign, batch, round_)
        else:
            try:
                campaign.absorb_shard(0, batch, round_)
            except ValueError as exc:  # pragma: no cover - validated
                return 400, {"error": "bad_reports", "detail": str(exc)}
        self.ledger.charge_batch(
            multiplicity, epsilon, campaign=campaign.fingerprint
        )
        m = self.metrics
        m.wire_batches.labels(wire_version=str(wire_version)).inc()
        campaign.batches_accepted += 1
        campaign.dirty = True
        m.batches_accepted.labels(campaign=campaign.fingerprint).inc()
        if m.instrumented:
            m.ingest_reports.labels(
                campaign=campaign.fingerprint,
                wire_version=str(wire_version),
            ).inc(n)
            # Bulk-observe every charged user's *cumulative* spend:
            # one lock, sort + bisect, ~100 µs for a 2k-user batch.
            if multiplicity:
                m.budget_spend.labels(
                    campaign=campaign.fingerprint
                ).observe_many(self.ledger.spent_many(multiplicity))
        if _log.isEnabledFor(10):  # DEBUG — skip extra-dict on hot path
            _log.debug(
                "batch accepted",
                extra={
                    "reports": n,
                    "wire_version": wire_version,
                    "sharded": worker is not None,
                },
            )
        if key is not None:
            campaign.seen_keys.add(key)
        if (
            self.checkpoint_every is not None
            and m.batches_accepted.value_int() % self.checkpoint_every == 0
        ):
            self.checkpoint_now()
        return 200, {
            "status": "accepted",
            "accepted": n,
            "campaign": campaign.fingerprint,
            "total_reports": campaign.reports,
        }

    def _handle_checkpoint(self) -> Tuple[int, Dict[str, Any]]:
        if self.store is None:
            return 409, {"error": "no_store"}
        return 200, {"status": "ok", "seq": self.checkpoint_now()}

    def _dispatch(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ) -> Tuple[int, Any]:
        """Route + request-level instrumentation (latency, responses)."""
        endpoint = path if path in _KNOWN_ENDPOINTS else (
            "/campaigns/seal" if path.startswith("/campaigns/") else "other"
        )
        started = time.perf_counter()
        status, payload = self._route(method, path, query, body)
        if self.metrics.instrumented:
            self.metrics.request_seconds.labels(endpoint=endpoint).observe(
                time.perf_counter() - started
            )
            self.metrics.http_responses.labels(
                endpoint=endpoint, status=str(status)
            ).inc()
        return status, payload

    def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ) -> Tuple[int, Any]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}
            return self._handle_healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}
            return self._handle_metrics()
        if path == "/spec":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}
            return self._handle_spec(query)
        if path == "/estimate":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}
            return self._handle_estimate(query)
        if path == "/heavy-hitters":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}
            return self._handle_heavy_hitters(query)
        if path == "/campaigns":
            if method == "GET":
                return self._handle_campaign_list()
            if method == "POST":
                return self._handle_campaign_register(body)
            return 405, {"error": "method_not_allowed"}
        parts = [p for p in path.split("/") if p]
        if len(parts) == 3 and parts[0] == "campaigns" and (
            parts[2] == "seal"
        ):
            if method != "POST":
                return 405, {"error": "method_not_allowed"}
            return self._handle_campaign_seal(parts[1])
        if path == "/report":
            if method != "POST":
                return 405, {"error": "method_not_allowed"}
            if body is None:
                return 400, {
                    "error": "bad_request",
                    "detail": "POST /report requires a JSON body",
                }
            return self._handle_report(body)
        if path == "/checkpoint":
            if method != "POST":
                return 405, {"error": "method_not_allowed"}
            return self._handle_checkpoint()
        return 404, {"error": "not_found", "path": path}

    # ------------------------------------------------------------------
    # Minimal HTTP/1.1 plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload = await self._process_request(reader)
        except Exception as exc:  # noqa: BLE001 - report, don't crash loop
            status, payload = 500, {
                "error": "internal",
                "detail": f"{type(exc).__name__}: {exc}",
            }
        try:
            if isinstance(payload, str):
                # /metrics: pre-rendered text exposition, not JSON.
                body = payload.encode("utf-8")
                content_type = CONTENT_TYPE_LATEST
            else:
                body = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            extra = ""
            if status in (429, 503) and isinstance(payload, dict) and (
                payload.get("retry_after") is not None
            ):
                extra = f"Retry-After: {int(payload['retry_after'])}\r\n"
            writer.write(
                (
                    f"HTTP/1.1 {status} "
                    f"{_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"{extra}"
                    f"Connection: close\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _process_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "bad_request_line"}
        method = parts[0].upper()
        path, _, raw_query = parts[1].partition("?")
        query = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(raw_query).items()
        }
        content_length = 0
        content_type = "application/json"
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            header = name.strip().lower()
            if header == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad_content_length"}
            elif header == "content-type":
                content_type = value.strip().lower()
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": "payload_too_large"}
        body = None
        if content_length:
            raw = await reader.readexactly(content_length)
            if content_type.startswith(wire.COLUMNAR_CONTENT_TYPE):
                try:
                    body = wire.unpack_columns(raw)
                except wire.WireFormatError as exc:
                    return 400, {"error": "bad_envelope", "detail": str(exc)}
            else:
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError as exc:
                    return 400, {"error": "bad_json", "detail": str(exc)}
        with bound_context(request_id=f"r-{next(self._request_seq)}"):
            return self._dispatch(method, path, query, body)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def drain_state(self) -> DrainState:
        return self._drain_state

    @property
    def draining(self) -> bool:
        return self._drain_state is not DrainState.SERVING

    def begin_drain(self) -> None:
        """Stop admitting new batches (``POST /report`` answers 503).

        Reads (``/spec``, ``/estimate``, ``/healthz``, ``/metrics``)
        keep working — a draining server can still be scraped and can
        still serve its final estimate.  Idempotent.
        """
        if self._drain_state is DrainState.SERVING:
            self._drain_state = advance(
                self._drain_state, DrainState.DRAINING
            )
            _log.info(
                "drain started",
                extra={
                    "batches_accepted": (
                        self.metrics.batches_accepted.value_int()
                    ),
                },
            )

    def drain(self) -> DrainResult:
        """Graceful drain: refuse new batches, flush every shard queue,
        write the final checkpoint, and report what was persisted.

        The snapshot this leaves behind is **bitwise-equal** to the one
        an uninterrupted server would write after the same accepted
        batches — drain adds no state, it only runs the ordinary flush
        + checkpoint path early.  Idempotent: a second call flushes
        nothing new and (with a store) rewrites the same sequence.
        """
        started = time.perf_counter()
        self.begin_drain()
        shards_flushed = 0
        if self._workers is not None:
            self._flush_shards()
            shards_flushed = len(self._workers)
        checkpoint_seq: Optional[int] = None
        if self.store is not None:
            checkpoint_seq = self.checkpoint_now()
        self._drain_state = advance(self._drain_state, DrainState.DRAINED)
        result = DrainResult(
            checkpoint_seq=checkpoint_seq,
            shards_flushed=shards_flushed,
            batches_accepted=self.metrics.batches_accepted.value_int(),
            seconds=time.perf_counter() - started,
        )
        _log.info(
            "drain complete",
            extra={
                "checkpoint_seq": result.checkpoint_seq,
                "shards_flushed": result.shards_flushed,
                "batches_accepted": result.batches_accepted,
                "seconds": round(result.seconds, 6),
            },
        )
        return result

    async def start(self) -> "IngestionServer":
        """Bind and start accepting connections (non-blocking)."""
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        # DEBUG, not INFO: the CLI banner is the contract-bearing
        # startup line (tests parse it), and merged-stream consumers
        # must see the banner first.
        _log.debug(
            "listening",
            extra={
                "host": self.host,
                "port": self.port,
                "shards": self.shards,
                "campaigns": len(self.registry),
            },
        )
        return self

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._asyncio_server is None:
            await self.start()
        async with self._asyncio_server:
            await self._asyncio_server.serve_forever()

    async def aclose(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        self._stop_workers()

    def _stop_workers(self) -> None:
        """Drain and join the shard workers (idempotent)."""
        if self._workers is not None:
            for worker in self._workers:
                worker.stop()

    def run_in_thread(self) -> "IngestionServer":
        """Serve from a daemon thread; returns once the port is bound.

        The embedding pattern tests, benchmarks and examples use:

            server = IngestionServer(spec).run_in_thread()
            ... ServiceClient("127.0.0.1", server.port) ...
            server.stop()

        :meth:`stop` halts abruptly (no final checkpoint) — exactly the
        crash model the snapshot store is designed to recover from.
        """
        if self._thread is not None:
            raise RuntimeError("server is already running in a thread")
        started = threading.Event()
        startup_error: list = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                startup_error.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.aclose())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service", daemon=True
        )
        self._thread.start()
        started.wait()
        if startup_error:
            self._thread.join()
            self._thread = None
            raise startup_error[0]
        return self

    def stop(self) -> None:
        """Stop a :meth:`run_in_thread` server (abrupt, crash-like)."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None
        self._stop_workers()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestionServer(campaigns={len(self.registry)}, "
            f"port={self.port}, reports={self.registry.total_reports()})"
        )
