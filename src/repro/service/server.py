"""Stdlib-only asyncio HTTP ingestion server.

The aggregator half of the paper's deployment, as an actual network
service.  One :class:`IngestionServer` owns

* the :class:`~repro.protocol.facade.Protocol` (built from a spec) and
  its single :class:`~repro.protocol.accumulators.ServerAccumulator`,
* a :class:`~repro.analysis.accountant.PrivacyAccountant` that every
  accepted report batch is charged against *before* absorption —
  over-budget users get the whole batch rejected with HTTP 429 and
  nothing is charged or absorbed (the client may resubmit without the
  exhausted users),
* an optional :class:`~repro.service.store.SnapshotStore` for periodic
  durable checkpoints and resume-on-restart.

Endpoints (all JSON):

==================  ====================================================
``GET  /healthz``   liveness + counters
``GET  /spec``      protocol spec dict, fingerprint, wire version
``GET  /estimate``  current estimate (wire-encoded), report count
``POST /report``    enveloped report batch (batch-capable, idempotent)
``POST /checkpoint``  force a snapshot now; returns its sequence number
==================  ====================================================

Ingestion is strictly ordered: request handlers run on the event loop
and absorb synchronously, so the accumulator sees batches in arrival
order and a checkpoint always captures a quiescent state.

The HTTP layer is a deliberately minimal HTTP/1.1 implementation over
``asyncio.start_server`` (no third-party dependency, connection per
request), sufficient for the SDK in :mod:`repro.service.client`.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple, Union

from repro.analysis.accountant import PrivacyAccountant
from repro.protocol.facade import Protocol
from repro.protocol.spec import ProtocolSpec
from repro.service import wire
from repro.service.store import SnapshotStore

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Upper bound on accepted request bodies (64 MiB of JSON).
MAX_BODY_BYTES = 64 * 1024 * 1024


class IngestionServer:
    """Networked LDP aggregator for one protocol.

    Parameters
    ----------
    protocol_or_spec:
        A :class:`Protocol`, a :class:`ProtocolSpec`, or a spec dict.
    lifetime_epsilon:
        Per-user lifetime budget cap; defaults to the spec's epsilon
        (each user reports once, the paper's m = 1 policy).
    store:
        Snapshot store for durable checkpoints; when it already holds a
        snapshot the server resumes from it (fingerprint-checked).
    checkpoint_every:
        Write a snapshot after every this-many accepted batches
        (requires ``store``; ``None`` disables periodic checkpoints).
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    """

    def __init__(
        self,
        protocol_or_spec: Union[Protocol, ProtocolSpec, Dict[str, Any]],
        lifetime_epsilon: Optional[float] = None,
        store: Optional[SnapshotStore] = None,
        checkpoint_every: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if isinstance(protocol_or_spec, Protocol):
            self.protocol = protocol_or_spec
        else:
            self.protocol = Protocol.from_spec(protocol_or_spec)
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if store is None:
                raise ValueError("checkpoint_every requires a store")
        self.spec = self.protocol.spec
        self.fingerprint = wire.spec_fingerprint(self.spec)
        self.accountant = PrivacyAccountant(
            lifetime_epsilon=(
                self.spec.epsilon
                if lifetime_epsilon is None
                else lifetime_epsilon
            )
        )
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.host = host
        self.port = port
        self._accumulator = self.protocol.server()
        self._batches_accepted = 0
        self._duplicates = 0
        self._seen_keys = set()
        self._resumed_from: Optional[int] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        if self.store is not None:
            self._maybe_resume()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _maybe_resume(self) -> None:
        loaded = self.store.load_latest()
        if loaded is None:
            return
        seq, snapshot = loaded
        if snapshot.get("fingerprint") != self.fingerprint:
            raise wire.SpecMismatchError(
                f"snapshot {seq} in {self.store.directory} was written "
                f"by a different protocol (fingerprint "
                f"{str(snapshot.get('fingerprint'))[:12]!r}...)"
            )
        wire.decode_accumulator_state(
            self._accumulator, snapshot["accumulator"]
        )
        self.accountant = PrivacyAccountant.from_dict(snapshot["accountant"])
        self._batches_accepted = int(snapshot["batches_accepted"])
        self._seen_keys = set(snapshot.get("idempotency_keys", []))
        self._resumed_from = seq

    def checkpoint_now(self) -> int:
        """Write a snapshot of the full ingestion state; returns seq."""
        if self.store is None:
            raise RuntimeError("server has no snapshot store")
        seq = self._batches_accepted
        self.store.save(
            seq,
            {
                "wire_version": wire.WIRE_VERSION,
                "fingerprint": self.fingerprint,
                "spec": self.spec.to_dict(),
                "accumulator": wire.encode_accumulator_state(
                    self._accumulator
                ),
                "accountant": self.accountant.to_dict(),
                "batches_accepted": self._batches_accepted,
                "idempotency_keys": sorted(self._seen_keys),
            },
        )
        return seq

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "status": "ok",
            "reports": self._accumulator.count,
            "batches_accepted": self._batches_accepted,
            "duplicates": self._duplicates,
            "resumed_from_snapshot": self._resumed_from,
            "users_charged": len(self.accountant.users()),
        }

    def _handle_spec(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "wire_version": wire.WIRE_VERSION,
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_dict(),
            "epsilon_per_report": self.spec.epsilon,
            "lifetime_epsilon": self.accountant.lifetime_epsilon,
        }

    def _handle_estimate(self) -> Tuple[int, Dict[str, Any]]:
        if self._accumulator.count == 0:
            return 409, {"error": "no_reports"}
        return 200, wire.pack(
            {
                "estimate": wire.encode_estimate(
                    self._accumulator.estimate()
                ),
                "reports": self._accumulator.count,
            },
            self.fingerprint,
        )

    def _handle_report(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = wire.unpack(body, self.fingerprint)
        except wire.SpecMismatchError as exc:
            return 409, {"error": "spec_mismatch", "detail": str(exc)}
        except wire.WireFormatError as exc:
            return 400, {"error": "bad_envelope", "detail": str(exc)}

        key = payload.get("idempotency_key")
        if key is not None and key in self._seen_keys:
            self._duplicates += 1
            return 200, {
                "status": "duplicate",
                "accepted": 0,
                "total_reports": self._accumulator.count,
            }

        users = payload.get("users")
        if not isinstance(users, list) or not users:
            return 400, {
                "error": "bad_request",
                "detail": "payload must carry a non-empty 'users' list",
            }
        try:
            reports = wire.decode_reports(payload["reports"])
        except (KeyError, wire.WireFormatError, ValueError) as exc:
            return 400, {"error": "bad_reports", "detail": str(exc)}
        n = wire.report_count(reports)
        if n != len(users):
            return 400, {
                "error": "bad_request",
                "detail": f"batch carries {n} reports for {len(users)} "
                f"users",
            }

        # Budget enforcement is atomic per batch: either every user has
        # room for *all* their reports in the batch and all are
        # charged, or nothing happens.  Multiplicity matters — a user
        # appearing twice must afford 2x epsilon.
        epsilon = self.spec.epsilon
        multiplicity: Dict[str, int] = {}
        for user in users:
            name = str(user)
            multiplicity[name] = multiplicity.get(name, 0) + 1
        rejected = [
            user
            for user, reports_by_user in multiplicity.items()
            if not self.accountant.can_charge(
                user, reports_by_user * epsilon
            )
        ]
        if rejected:
            return 429, {
                "error": "budget_exceeded",
                "rejected_users": rejected,
                "lifetime_epsilon": self.accountant.lifetime_epsilon,
            }

        # Absorb before charging: a shape/protocol violation the codec
        # could not catch must not consume anyone's budget.  The charge
        # loop below cannot fail — handlers run single-threaded on the
        # event loop and every user was pre-checked at multiplicity.
        try:
            self._accumulator.absorb(reports)
        except ValueError as exc:
            return 400, {"error": "bad_reports", "detail": str(exc)}
        for user, reports_by_user in multiplicity.items():
            self.accountant.charge(
                user, reports_by_user * epsilon, label="service"
            )
        self._batches_accepted += 1
        if key is not None:
            self._seen_keys.add(key)
        if (
            self.checkpoint_every is not None
            and self._batches_accepted % self.checkpoint_every == 0
        ):
            self.checkpoint_now()
        return 200, {
            "status": "accepted",
            "accepted": n,
            "total_reports": self._accumulator.count,
        }

    def _handle_checkpoint(self) -> Tuple[int, Dict[str, Any]]:
        if self.store is None:
            return 409, {"error": "no_store"}
        return 200, {"status": "ok", "seq": self.checkpoint_now()}

    def _dispatch(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/spec"): self._handle_spec,
            ("GET", "/estimate"): self._handle_estimate,
            ("POST", "/checkpoint"): self._handle_checkpoint,
        }
        if (method, path) == ("POST", "/report"):
            if body is None:
                return 400, {
                    "error": "bad_request",
                    "detail": "POST /report requires a JSON body",
                }
            return self._handle_report(body)
        handler = routes.get((method, path))
        if handler is not None:
            return handler()
        known_paths = {"/healthz", "/spec", "/estimate", "/report",
                       "/checkpoint"}
        if path in known_paths:
            return 405, {"error": "method_not_allowed"}
        return 404, {"error": "not_found", "path": path}

    # ------------------------------------------------------------------
    # Minimal HTTP/1.1 plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload = await self._process_request(reader)
        except Exception as exc:  # noqa: BLE001 - report, don't crash loop
            status, payload = 500, {
                "error": "internal",
                "detail": f"{type(exc).__name__}: {exc}",
            }
        try:
            body = json.dumps(payload).encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status} "
                    f"{_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _process_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "bad_request_line"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad_content_length"}
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": "payload_too_large"}
        body = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return 400, {"error": "bad_json", "detail": str(exc)}
        return self._dispatch(method, path, body)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "IngestionServer":
        """Bind and start accepting connections (non-blocking)."""
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._asyncio_server is None:
            await self.start()
        async with self._asyncio_server:
            await self._asyncio_server.serve_forever()

    async def aclose(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None

    def run_in_thread(self) -> "IngestionServer":
        """Serve from a daemon thread; returns once the port is bound.

        The embedding pattern tests, benchmarks and examples use:

            server = IngestionServer(spec).run_in_thread()
            ... ServiceClient("127.0.0.1", server.port) ...
            server.stop()

        :meth:`stop` halts abruptly (no final checkpoint) — exactly the
        crash model the snapshot store is designed to recover from.
        """
        if self._thread is not None:
            raise RuntimeError("server is already running in a thread")
        started = threading.Event()
        startup_error: list = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                startup_error.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.aclose())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service", daemon=True
        )
        self._thread.start()
        started.wait()
        if startup_error:
            self._thread.join()
            self._thread = None
            raise startup_error[0]
        return self

    def stop(self) -> None:
        """Stop a :meth:`run_in_thread` server (abrupt, crash-like)."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestionServer(kind={self.spec.kind!r}, "
            f"port={self.port}, reports={self._accumulator.count})"
        )
