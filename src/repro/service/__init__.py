"""Networked LDP collection service.

The deployment layer the paper assumes: clients perturb locally and
submit over HTTP; a remote aggregator runs many concurrent collection
*campaigns*, enforces one global per-user privacy budget across all of
them at ingestion, folds reports through the mergeable accumulators,
and checkpoints durable state so a crash never loses the aggregate.

* :mod:`repro.service.wire` — versioned, fingerprinted codec for every
  report container, accumulator snapshot, and estimate; envelopes may
  address a campaign.
* :mod:`repro.service.store` — atomic snapshot files with namespaces
  and resume-from-latest recovery.
* :mod:`repro.service.server` — stdlib asyncio HTTP ingestion server
  (``POST /report``, ``POST /campaigns``, ``GET /estimate``,
  ``GET /spec``, ``GET /campaigns``, ``GET /healthz``), routing
  through :mod:`repro.campaigns`.
* :mod:`repro.service.client` — SDK that encodes on-device, submits
  with retry-safe idempotency keys and bounded-backoff transport
  retries, and binds to campaigns via ``for_campaign``.

Serve deployment configs with ``python -m repro.service --spec
spec.json`` (single default campaign) or ``--campaigns specs/*.json``
(multi-tenant); see DESIGN.md ("The campaign layer") for lifecycle,
ledger invariants and wire/versioning notes.
"""

from repro.campaigns import (
    Campaign,
    CampaignRegistry,
    CampaignState,
    CrossCampaignLedger,
    UnknownCampaignError,
)
from repro.service.client import (
    CampaignClosedError,
    OverBudgetError,
    ServiceClient,
    ServiceError,
)
from repro.service.server import IngestionServer
from repro.service.store import SnapshotStore
from repro.service.wire import (
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_COLUMNAR,
    SpecMismatchError,
    WireFormatError,
    columns_to_reports,
    decode_estimate,
    decode_reports,
    encode_estimate,
    encode_reports,
    envelope_campaign,
    pack,
    pack_columns,
    reports_to_columns,
    spec_fingerprint,
    unpack,
    unpack_columns,
)

__all__ = [
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "WIRE_VERSION_COLUMNAR",
    "Campaign",
    "CampaignClosedError",
    "CampaignRegistry",
    "CampaignState",
    "CrossCampaignLedger",
    "IngestionServer",
    "OverBudgetError",
    "ServiceClient",
    "ServiceError",
    "SnapshotStore",
    "SpecMismatchError",
    "UnknownCampaignError",
    "WireFormatError",
    "columns_to_reports",
    "decode_estimate",
    "decode_reports",
    "encode_estimate",
    "encode_reports",
    "envelope_campaign",
    "pack",
    "pack_columns",
    "reports_to_columns",
    "spec_fingerprint",
    "unpack",
    "unpack_columns",
]
