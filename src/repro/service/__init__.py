"""Networked LDP collection service.

The deployment layer the paper assumes: clients perturb locally and
submit over HTTP; a remote aggregator enforces per-user privacy budgets
at ingestion, folds reports through the mergeable accumulators, and
checkpoints durable state so a crash never loses the aggregate.

* :mod:`repro.service.wire` — versioned, fingerprinted codec for every
  report container, accumulator snapshot, and estimate.
* :mod:`repro.service.store` — atomic snapshot files with
  resume-from-latest recovery.
* :mod:`repro.service.server` — stdlib asyncio HTTP ingestion server
  (``POST /report``, ``GET /estimate``, ``GET /spec``,
  ``GET /healthz``).
* :mod:`repro.service.client` — SDK that encodes on-device and submits
  with retry-safe idempotency keys.

Serve a deployment config with ``python -m repro.service --spec
spec.json``; see DESIGN.md ("The service layer") for the envelope
format, checkpoint policy and budget-enforcement semantics.
"""

from repro.service.client import (
    OverBudgetError,
    ServiceClient,
    ServiceError,
)
from repro.service.server import IngestionServer
from repro.service.store import SnapshotStore
from repro.service.wire import (
    WIRE_VERSION,
    SpecMismatchError,
    WireFormatError,
    decode_estimate,
    decode_reports,
    encode_estimate,
    encode_reports,
    pack,
    spec_fingerprint,
    unpack,
)

__all__ = [
    "WIRE_VERSION",
    "IngestionServer",
    "OverBudgetError",
    "ServiceClient",
    "ServiceError",
    "SnapshotStore",
    "SpecMismatchError",
    "WireFormatError",
    "decode_estimate",
    "decode_reports",
    "encode_estimate",
    "encode_reports",
    "pack",
    "spec_fingerprint",
    "unpack",
]
