"""Versioned wire codec for reports, estimates and accumulator state.

Everything that crosses the service's network or disk boundary goes
through this module.  Three layers:

* **Arrays** — :func:`encode_array` / :func:`decode_array` carry any
  numpy array as ``{dtype, shape, base64(raw bytes)}``; the round-trip
  is bitwise because the raw buffer is transported untouched.
* **Payloads** — :func:`encode_reports` / :func:`decode_reports`
  type-tag every report container a protocol can emit (perturbed-value
  arrays, unary bit matrices, :class:`~repro.frequency.olh.OLHReports`,
  :class:`~repro.protocol.reports.SampledNumericReports`,
  :class:`~repro.multidim.collector.MixedReports`);
  :func:`encode_accumulator_state` / :func:`decode_accumulator_state`
  do the same for ``ServerAccumulator.state_dict`` snapshots, and
  :func:`encode_estimate` / :func:`decode_estimate` for every estimate
  shape the accumulators produce.
* **Envelopes** — :func:`pack` wraps a payload with the wire version
  and the protocol *fingerprint* (a SHA-256 over the canonical spec
  dict); :func:`unpack` rejects unknown wire versions
  (:class:`WireFormatError`) and mismatched fingerprints
  (:class:`SpecMismatchError`) so a stale or misconfigured client is
  turned away instead of silently mis-aggregated.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.frequency.olh import OLHReports
from repro.multidim.collector import MixedReports
from repro.protocol.reports import ColumnBlock, SampledNumericReports
from repro.protocol.spec import ProtocolSpec

#: Version of the envelope + payload encoding itself (independent of
#: the ProtocolSpec schema version).  Version 1 is the JSON envelope
#: codec below; version 2 is the binary columnar framing
#: (:func:`pack_columns` / :func:`unpack_columns`).
WIRE_VERSION = 1

#: The binary columnar wire format introduced for the sharded
#: ingestion tier: one JSON header + packed little-endian arrays.
WIRE_VERSION_COLUMNAR = 2

#: Every wire version this codec can decode.  Servers advertise this
#: tuple from ``/spec`` (as ``wire_versions``); clients pick the
#: highest mutual entry and fall back to v1 against old servers.
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: Content type of v2 report frames on the HTTP boundary; v1 JSON
#: envelopes travel as ``application/json``.
COLUMNAR_CONTENT_TYPE = "application/x-repro-columnar"

#: Leading magic of every v2 frame — rejects stray JSON (or anything
#: else) posted to the columnar path with a clean 400.
COLUMNAR_MAGIC = b"RPC2"


class WireFormatError(ValueError):
    """Malformed or wrong-version wire data."""


class SpecMismatchError(WireFormatError):
    """The sender's protocol fingerprint differs from the receiver's."""


# ----------------------------------------------------------------------
# Arrays
# ----------------------------------------------------------------------
def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """Bitwise-exact JSON-friendly encoding of any numpy array."""
    arr = np.asarray(arr)
    # Shape first: ascontiguousarray promotes 0-d arrays to shape (1,).
    shape = list(arr.shape)
    contiguous = np.ascontiguousarray(arr)
    return {
        "dtype": contiguous.dtype.str,
        "shape": shape,
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(obj: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(obj["shape"])
        raw = base64.b64decode(obj["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed array payload: {exc}") from exc
    arr = np.frombuffer(raw, dtype=dtype)
    if arr.size != int(np.prod(shape, dtype=np.int64)):
        raise WireFormatError(
            f"array payload carries {arr.size} elements, shape {shape} "
            f"needs {int(np.prod(shape, dtype=np.int64))}"
        )
    # frombuffer views are read-only; copy so callers can absorb freely.
    return arr.reshape(shape).copy()


# ----------------------------------------------------------------------
# Report containers
# ----------------------------------------------------------------------
def report_count(reports) -> int:
    """Number of reporting users in any report container."""
    if isinstance(reports, MixedReports):
        return int(reports.n)
    return int(len(reports))


def encode_reports(reports) -> Dict[str, Any]:
    """Type-tagged encoding of any report container.

    Covers every container the protocol encoders emit: plain numpy
    arrays (numeric perturbed values, GRR integers, unary bit
    matrices), ``OLHReports``, ``SampledNumericReports`` and
    ``MixedReports`` (whose per-attribute categorical reports recurse
    through this function).
    """
    if isinstance(reports, SampledNumericReports):
        return {
            "type": "sampled-numeric",
            "d": int(reports.d),
            "k": int(reports.k),
            "cols": encode_array(reports.cols),
            "values": encode_array(reports.values),
        }
    if isinstance(reports, OLHReports):
        return {
            "type": "olh",
            "seeds": encode_array(reports.seeds),
            "buckets": encode_array(reports.buckets),
        }
    if isinstance(reports, MixedReports):
        return {
            "type": "mixed",
            "n": int(reports.n),
            "numeric": encode_array(np.asarray(reports.numeric)),
            "categorical": {
                name: encode_reports(sub)
                for name, sub in reports.categorical.items()
            },
        }
    arr = np.asarray(reports)
    if arr.dtype == object:
        raise WireFormatError(
            f"cannot encode report container of type "
            f"{type(reports).__name__}"
        )
    return {"type": "array", "array": encode_array(arr)}


def decode_reports(obj: Dict[str, Any]):
    """Inverse of :func:`encode_reports`."""
    kind = obj.get("type")
    if kind == "array":
        return decode_array(obj["array"])
    if kind == "sampled-numeric":
        return SampledNumericReports(
            d=int(obj["d"]),
            k=int(obj["k"]),
            cols=decode_array(obj["cols"]),
            values=decode_array(obj["values"]),
        )
    if kind == "olh":
        return OLHReports(
            seeds=decode_array(obj["seeds"]),
            buckets=decode_array(obj["buckets"]),
        )
    if kind == "mixed":
        return MixedReports(
            n=int(obj["n"]),
            numeric=decode_array(obj["numeric"]),
            categorical={
                name: decode_reports(sub)
                for name, sub in obj["categorical"].items()
            },
        )
    raise WireFormatError(f"unknown report payload type {kind!r}")


# ----------------------------------------------------------------------
# Columnar report form (wire v2)
# ----------------------------------------------------------------------
def reports_to_columns(reports) -> ColumnBlock:
    """Canonical columnar form of any report container.

    The v2 twin of :func:`encode_reports`: same container coverage
    (plain arrays, ``OLHReports``, ``SampledNumericReports``,
    ``MixedReports``), but the output is a
    :class:`~repro.protocol.reports.ColumnBlock` whose arrays are the
    container's own buffers — nothing is copied or re-encoded until
    :func:`pack_columns` frames them.
    """
    if isinstance(reports, SampledNumericReports):
        return ColumnBlock(
            kind="sampled-numeric",
            n=reports.n,
            meta={"d": int(reports.d), "k": int(reports.k)},
            columns=reports.to_columns(),
        )
    if isinstance(reports, OLHReports):
        return ColumnBlock(
            kind="olh", n=len(reports), columns=reports.to_columns()
        )
    if isinstance(reports, MixedReports):
        return ColumnBlock(
            kind="mixed",
            n=int(reports.n),
            meta={
                "categorical": {
                    name: "olh" if isinstance(sub, OLHReports) else "array"
                    for name, sub in reports.categorical.items()
                }
            },
            columns=reports.to_columns(),
        )
    arr = np.asarray(reports)
    if arr.dtype == object:
        raise WireFormatError(
            f"cannot encode report container of type "
            f"{type(reports).__name__}"
        )
    if arr.ndim == 0:
        arr = arr.reshape(1)
    return ColumnBlock(kind="array", n=int(arr.shape[0]),
                       columns={"array": arr})


def columns_to_reports(block: ColumnBlock):
    """Inverse of :func:`reports_to_columns` (bitwise).

    Only needed off the hot path — the server absorbs
    :class:`ColumnBlock` batches directly via
    ``ServerAccumulator.absorb_columns`` — but kept total over the
    container vocabulary so v2 frames can always be lifted back to the
    objects v1 tooling expects.
    """
    if block.kind == "array":
        return block.column("array")
    if block.kind == "sampled-numeric":
        try:
            d, k = int(block.meta["d"]), int(block.meta["k"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError(
                f"sampled-numeric block needs integer d/k metadata: {exc}"
            ) from exc
        return SampledNumericReports.from_columns(block.columns, d=d, k=k)
    if block.kind == "olh":
        return OLHReports.from_columns(
            {"seeds": block.column("seeds"), "buckets": block.column("buckets")}
        )
    if block.kind == "mixed":
        categorical = block.meta.get("categorical")
        if not isinstance(categorical, dict):
            raise WireFormatError(
                "mixed block carries no 'categorical' kind map"
            )
        return MixedReports.from_columns(
            block.columns,
            n=block.n,
            categorical={str(k): str(v) for k, v in categorical.items()},
        )
    raise WireFormatError(f"unknown columnar block kind {block.kind!r}")


def _little_endian(arr: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian view/copy of ``arr`` for framing."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


def pack_columns(
    block: ColumnBlock,
    fingerprint: str,
    *,
    users: Optional[List[str]] = None,
    idempotency_key: Optional[str] = None,
    campaign: Optional[str] = None,
    round: Optional[int] = None,
    fresh: Optional[List[bool]] = None,
) -> bytes:
    """Frame a columnar batch as one v2 binary message.

    Layout: ``RPC2`` magic, a little-endian uint32 header length, a
    UTF-8 JSON header (wire version, fingerprint, campaign address,
    block kind/n/meta, users, idempotency key, and a column table of
    name/dtype/shape/offset/nbytes), then the packed little-endian
    array payloads back to back.  The array bytes are transported
    untouched, so the round-trip through :func:`unpack_columns` is
    bitwise.
    """
    names = sorted(block.columns)
    table = []
    payloads = []
    offset = 0
    for name in names:
        arr = _little_endian(block.columns[name])
        raw = arr.tobytes()
        table.append({
            "name": name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": len(raw),
        })
        payloads.append(raw)
        offset += len(raw)
    header: Dict[str, Any] = {
        "wire_version": WIRE_VERSION_COLUMNAR,
        "fingerprint": str(fingerprint),
        "kind": block.kind,
        "n": int(block.n),
        "meta": block.meta,
        "columns": table,
    }
    if users is not None:
        header["users"] = [str(u) for u in users]
    if idempotency_key is not None:
        header["idempotency_key"] = str(idempotency_key)
    if campaign is not None:
        header["campaign"] = str(campaign)
    if round is not None:
        header["round"] = int(round)
    if fresh is not None:
        header["fresh"] = [bool(f) for f in fresh]
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [COLUMNAR_MAGIC, struct.pack("<I", len(head)), head] + payloads
    )


def unpack_columns(data: bytes) -> Dict[str, Any]:
    """Parse a v2 frame into an envelope-shaped dict.

    Returns ``{"wire_version": 2, "fingerprint": ..., "campaign": ...,
    "payload": {"users": ..., "idempotency_key": ..., "columns":
    ColumnBlock}}`` — the same envelope shape :func:`pack` produces, so
    the receiver routes (:func:`envelope_campaign`) and fingerprint-
    checks (:func:`unpack`) v1 and v2 traffic through one path.
    Structural damage (bad magic, truncated header or payload, column
    table out of bounds) raises :class:`WireFormatError`.
    """
    if len(data) < 8 or data[:4] != COLUMNAR_MAGIC:
        raise WireFormatError(
            "not a columnar v2 frame (bad magic); v1 clients must POST "
            "JSON envelopes"
        )
    (head_len,) = struct.unpack("<I", data[4:8])
    head_end = 8 + head_len
    if head_end > len(data):
        raise WireFormatError(
            f"truncated columnar frame: header claims {head_len} bytes, "
            f"{len(data) - 8} available"
        )
    try:
        header = json.loads(data[8:head_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(
            f"malformed columnar header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise WireFormatError("columnar header must be a JSON object")
    body = data[head_end:]
    table = header.get("columns")
    if not isinstance(table, list):
        raise WireFormatError("columnar header carries no column table")
    columns: Dict[str, np.ndarray] = {}
    for entry in table:
        try:
            name = str(entry["name"])
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
            start = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError(
                f"malformed column table entry: {exc}"
            ) from exc
        if start < 0 or nbytes < 0 or start + nbytes > len(body):
            raise WireFormatError(
                f"column {name!r} spans [{start}, {start + nbytes}) but "
                f"payload holds {len(body)} bytes"
            )
        arr = np.frombuffer(body[start:start + nbytes], dtype=dtype)
        if arr.size != int(np.prod(shape, dtype=np.int64)):
            raise WireFormatError(
                f"column {name!r} carries {arr.size} elements, shape "
                f"{shape} needs {int(np.prod(shape, dtype=np.int64))}"
            )
        # frombuffer views are read-only; copy so absorb can run freely.
        columns[name] = arr.reshape(shape).copy()
    meta = header.get("meta")
    if meta is None:
        meta = {}
    if not isinstance(meta, dict):
        raise WireFormatError("columnar header 'meta' must be an object")
    try:
        block = ColumnBlock(
            kind=str(header.get("kind")),
            n=int(header.get("n", -1)),
            meta=meta,
            columns=columns,
        )
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed columnar block: {exc}") from exc
    envelope: Dict[str, Any] = {
        "wire_version": header.get("wire_version"),
        "fingerprint": header.get("fingerprint"),
        "payload": {
            "users": header.get("users"),
            "idempotency_key": header.get("idempotency_key"),
            "columns": block,
        },
    }
    # Streaming keys ride in the payload dict, the same place the v1
    # JSON envelope carries them, so the server reads one shape.
    if header.get("round") is not None:
        envelope["payload"]["round"] = header["round"]
    if header.get("fresh") is not None:
        envelope["payload"]["fresh"] = header["fresh"]
    if header.get("campaign") is not None:
        envelope["campaign"] = header["campaign"]
    return envelope


# ----------------------------------------------------------------------
# Accumulator state + estimates
# ----------------------------------------------------------------------
def _encode_state_value(value):
    if isinstance(value, np.ndarray):
        return {"type": "array", "array": encode_array(value)}
    if isinstance(value, dict):
        return {
            "type": "dict",
            "items": {k: _encode_state_value(v) for k, v in value.items()},
        }
    if isinstance(value, (bool, int, float, str)) or value is None:
        return {"type": "scalar", "value": value}
    if isinstance(value, (np.integer, np.floating)):
        return {"type": "scalar", "value": value.item()}
    raise WireFormatError(
        f"cannot encode state value of type {type(value).__name__}"
    )


def _decode_state_value(obj):
    kind = obj.get("type")
    if kind == "array":
        return decode_array(obj["array"])
    if kind == "dict":
        return {k: _decode_state_value(v) for k, v in obj["items"].items()}
    if kind == "scalar":
        return obj["value"]
    raise WireFormatError(f"unknown state payload type {kind!r}")


def encode_accumulator_state(accumulator) -> Dict[str, Any]:
    """Encode ``accumulator.state_dict()`` for wire/disk transport."""
    return _encode_state_value(accumulator.state_dict())


def decode_accumulator_state(accumulator, obj: Dict[str, Any]):
    """Restore an encoded snapshot into a fresh same-protocol
    accumulator (bitwise); returns the accumulator."""
    return accumulator.load_state(_decode_state_value(obj))


def encode_estimate(estimate) -> Dict[str, Any]:
    """Type-tagged encoding of any accumulator's ``estimate()`` value."""
    from repro.frequency.histogram import HistogramEstimate
    from repro.multidim.aggregator import MixedEstimates

    if isinstance(estimate, HistogramEstimate):
        return {
            "type": "histogram",
            "histogram": encode_array(estimate.histogram),
            "raw": encode_array(estimate.raw),
            "edges": encode_array(estimate.edges),
        }
    if isinstance(estimate, MixedEstimates):
        return {
            "type": "mixed",
            "means": {k: float(v) for k, v in estimate.means.items()},
            "frequencies": {
                k: encode_array(np.asarray(v))
                for k, v in estimate.frequencies.items()
            },
        }
    if isinstance(estimate, np.ndarray):
        return {"type": "array", "array": encode_array(estimate)}
    return {"type": "scalar", "value": float(estimate)}


def decode_estimate(obj: Dict[str, Any]):
    """Inverse of :func:`encode_estimate`.

    Histogram estimates come back as full
    :class:`~repro.frequency.histogram.HistogramEstimate` objects (CDF
    and quantile queries work client-side), mixed estimates as
    :class:`~repro.multidim.aggregator.MixedEstimates`.
    """
    from repro.frequency.histogram import HistogramEstimate
    from repro.multidim.aggregator import MixedEstimates

    kind = obj.get("type")
    if kind == "scalar":
        return float(obj["value"])
    if kind == "array":
        return decode_array(obj["array"])
    if kind == "histogram":
        return HistogramEstimate(
            histogram=decode_array(obj["histogram"]),
            raw=decode_array(obj["raw"]),
            edges=decode_array(obj["edges"]),
        )
    if kind == "mixed":
        return MixedEstimates(
            means={k: float(v) for k, v in obj["means"].items()},
            frequencies={
                k: decode_array(v) for k, v in obj["frequencies"].items()
            },
        )
    raise WireFormatError(f"unknown estimate payload type {kind!r}")


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def spec_fingerprint(spec: Union[ProtocolSpec, Dict[str, Any]]) -> str:
    """SHA-256 over the canonical (sorted, compact) spec dict.

    Two endpoints agree on this hex digest iff they were built from the
    same ``ProtocolSpec`` — same kind, budget, primitives, dimensions.
    """
    payload = spec.to_dict() if isinstance(spec, ProtocolSpec) else spec
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def pack(
    payload: Dict[str, Any],
    fingerprint: str,
    campaign: Optional[str] = None,
) -> Dict[str, Any]:
    """Wrap a payload in the versioned, fingerprinted envelope.

    ``campaign`` addresses a specific campaign on a multi-tenant
    server; omitted, the receiver routes to its default campaign
    (which is how pre-campaign v1 envelopes keep working).  The
    fingerprint check then runs against the *addressed* campaign's
    spec, so naming campaign A while carrying campaign B's fingerprint
    is a :class:`SpecMismatchError`, never a silent mis-aggregation.
    """
    envelope = {
        "wire_version": WIRE_VERSION,
        "fingerprint": fingerprint,
        "payload": payload,
    }
    if campaign is not None:
        envelope["campaign"] = str(campaign)
    return envelope


def envelope_campaign(envelope: Dict[str, Any]) -> Optional[str]:
    """The campaign an envelope addresses, or ``None`` (default)."""
    campaign = envelope.get("campaign")
    if campaign is None:
        return None
    if not isinstance(campaign, str):
        raise WireFormatError(
            f"envelope 'campaign' must be a fingerprint string, got "
            f"{type(campaign).__name__}"
        )
    return campaign


def unpack(
    envelope: Dict[str, Any], expected_fingerprint: str
) -> Dict[str, Any]:
    """Validate an envelope and return its payload.

    Raises :class:`WireFormatError` on a missing/unknown wire version
    and :class:`SpecMismatchError` when the sender's protocol
    fingerprint differs from ``expected_fingerprint``.
    """
    version = envelope.get("wire_version")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"unsupported wire_version {version!r}; this endpoint "
            f"speaks versions {list(SUPPORTED_WIRE_VERSIONS)}"
        )
    fingerprint = envelope.get("fingerprint")
    if fingerprint != expected_fingerprint:
        raise SpecMismatchError(
            f"protocol fingerprint mismatch: sender "
            f"{str(fingerprint)[:12]!r}... vs receiver "
            f"{expected_fingerprint[:12]!r}... — endpoints were built "
            f"from different ProtocolSpecs"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise WireFormatError("envelope carries no payload object")
    return payload
