"""Versioned wire codec for reports, estimates and accumulator state.

Everything that crosses the service's network or disk boundary goes
through this module.  Three layers:

* **Arrays** — :func:`encode_array` / :func:`decode_array` carry any
  numpy array as ``{dtype, shape, base64(raw bytes)}``; the round-trip
  is bitwise because the raw buffer is transported untouched.
* **Payloads** — :func:`encode_reports` / :func:`decode_reports`
  type-tag every report container a protocol can emit (perturbed-value
  arrays, unary bit matrices, :class:`~repro.frequency.olh.OLHReports`,
  :class:`~repro.protocol.reports.SampledNumericReports`,
  :class:`~repro.multidim.collector.MixedReports`);
  :func:`encode_accumulator_state` / :func:`decode_accumulator_state`
  do the same for ``ServerAccumulator.state_dict`` snapshots, and
  :func:`encode_estimate` / :func:`decode_estimate` for every estimate
  shape the accumulators produce.
* **Envelopes** — :func:`pack` wraps a payload with the wire version
  and the protocol *fingerprint* (a SHA-256 over the canonical spec
  dict); :func:`unpack` rejects unknown wire versions
  (:class:`WireFormatError`) and mismatched fingerprints
  (:class:`SpecMismatchError`) so a stale or misconfigured client is
  turned away instead of silently mis-aggregated.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.frequency.olh import OLHReports
from repro.multidim.collector import MixedReports
from repro.protocol.reports import SampledNumericReports
from repro.protocol.spec import ProtocolSpec

#: Version of the envelope + payload encoding itself (independent of
#: the ProtocolSpec schema version).
WIRE_VERSION = 1


class WireFormatError(ValueError):
    """Malformed or wrong-version wire data."""


class SpecMismatchError(WireFormatError):
    """The sender's protocol fingerprint differs from the receiver's."""


# ----------------------------------------------------------------------
# Arrays
# ----------------------------------------------------------------------
def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """Bitwise-exact JSON-friendly encoding of any numpy array."""
    arr = np.asarray(arr)
    # Shape first: ascontiguousarray promotes 0-d arrays to shape (1,).
    shape = list(arr.shape)
    contiguous = np.ascontiguousarray(arr)
    return {
        "dtype": contiguous.dtype.str,
        "shape": shape,
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(obj: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(obj["shape"])
        raw = base64.b64decode(obj["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed array payload: {exc}") from exc
    arr = np.frombuffer(raw, dtype=dtype)
    if arr.size != int(np.prod(shape, dtype=np.int64)):
        raise WireFormatError(
            f"array payload carries {arr.size} elements, shape {shape} "
            f"needs {int(np.prod(shape, dtype=np.int64))}"
        )
    # frombuffer views are read-only; copy so callers can absorb freely.
    return arr.reshape(shape).copy()


# ----------------------------------------------------------------------
# Report containers
# ----------------------------------------------------------------------
def report_count(reports) -> int:
    """Number of reporting users in any report container."""
    if isinstance(reports, MixedReports):
        return int(reports.n)
    return int(len(reports))


def encode_reports(reports) -> Dict[str, Any]:
    """Type-tagged encoding of any report container.

    Covers every container the protocol encoders emit: plain numpy
    arrays (numeric perturbed values, GRR integers, unary bit
    matrices), ``OLHReports``, ``SampledNumericReports`` and
    ``MixedReports`` (whose per-attribute categorical reports recurse
    through this function).
    """
    if isinstance(reports, SampledNumericReports):
        return {
            "type": "sampled-numeric",
            "d": int(reports.d),
            "k": int(reports.k),
            "cols": encode_array(reports.cols),
            "values": encode_array(reports.values),
        }
    if isinstance(reports, OLHReports):
        return {
            "type": "olh",
            "seeds": encode_array(reports.seeds),
            "buckets": encode_array(reports.buckets),
        }
    if isinstance(reports, MixedReports):
        return {
            "type": "mixed",
            "n": int(reports.n),
            "numeric": encode_array(np.asarray(reports.numeric)),
            "categorical": {
                name: encode_reports(sub)
                for name, sub in reports.categorical.items()
            },
        }
    arr = np.asarray(reports)
    if arr.dtype == object:
        raise WireFormatError(
            f"cannot encode report container of type "
            f"{type(reports).__name__}"
        )
    return {"type": "array", "array": encode_array(arr)}


def decode_reports(obj: Dict[str, Any]):
    """Inverse of :func:`encode_reports`."""
    kind = obj.get("type")
    if kind == "array":
        return decode_array(obj["array"])
    if kind == "sampled-numeric":
        return SampledNumericReports(
            d=int(obj["d"]),
            k=int(obj["k"]),
            cols=decode_array(obj["cols"]),
            values=decode_array(obj["values"]),
        )
    if kind == "olh":
        return OLHReports(
            seeds=decode_array(obj["seeds"]),
            buckets=decode_array(obj["buckets"]),
        )
    if kind == "mixed":
        return MixedReports(
            n=int(obj["n"]),
            numeric=decode_array(obj["numeric"]),
            categorical={
                name: decode_reports(sub)
                for name, sub in obj["categorical"].items()
            },
        )
    raise WireFormatError(f"unknown report payload type {kind!r}")


# ----------------------------------------------------------------------
# Accumulator state + estimates
# ----------------------------------------------------------------------
def _encode_state_value(value):
    if isinstance(value, np.ndarray):
        return {"type": "array", "array": encode_array(value)}
    if isinstance(value, dict):
        return {
            "type": "dict",
            "items": {k: _encode_state_value(v) for k, v in value.items()},
        }
    if isinstance(value, (bool, int, float, str)) or value is None:
        return {"type": "scalar", "value": value}
    if isinstance(value, (np.integer, np.floating)):
        return {"type": "scalar", "value": value.item()}
    raise WireFormatError(
        f"cannot encode state value of type {type(value).__name__}"
    )


def _decode_state_value(obj):
    kind = obj.get("type")
    if kind == "array":
        return decode_array(obj["array"])
    if kind == "dict":
        return {k: _decode_state_value(v) for k, v in obj["items"].items()}
    if kind == "scalar":
        return obj["value"]
    raise WireFormatError(f"unknown state payload type {kind!r}")


def encode_accumulator_state(accumulator) -> Dict[str, Any]:
    """Encode ``accumulator.state_dict()`` for wire/disk transport."""
    return _encode_state_value(accumulator.state_dict())


def decode_accumulator_state(accumulator, obj: Dict[str, Any]):
    """Restore an encoded snapshot into a fresh same-protocol
    accumulator (bitwise); returns the accumulator."""
    return accumulator.load_state(_decode_state_value(obj))


def encode_estimate(estimate) -> Dict[str, Any]:
    """Type-tagged encoding of any accumulator's ``estimate()`` value."""
    from repro.frequency.histogram import HistogramEstimate
    from repro.multidim.aggregator import MixedEstimates

    if isinstance(estimate, HistogramEstimate):
        return {
            "type": "histogram",
            "histogram": encode_array(estimate.histogram),
            "raw": encode_array(estimate.raw),
            "edges": encode_array(estimate.edges),
        }
    if isinstance(estimate, MixedEstimates):
        return {
            "type": "mixed",
            "means": {k: float(v) for k, v in estimate.means.items()},
            "frequencies": {
                k: encode_array(np.asarray(v))
                for k, v in estimate.frequencies.items()
            },
        }
    if isinstance(estimate, np.ndarray):
        return {"type": "array", "array": encode_array(estimate)}
    return {"type": "scalar", "value": float(estimate)}


def decode_estimate(obj: Dict[str, Any]):
    """Inverse of :func:`encode_estimate`.

    Histogram estimates come back as full
    :class:`~repro.frequency.histogram.HistogramEstimate` objects (CDF
    and quantile queries work client-side), mixed estimates as
    :class:`~repro.multidim.aggregator.MixedEstimates`.
    """
    from repro.frequency.histogram import HistogramEstimate
    from repro.multidim.aggregator import MixedEstimates

    kind = obj.get("type")
    if kind == "scalar":
        return float(obj["value"])
    if kind == "array":
        return decode_array(obj["array"])
    if kind == "histogram":
        return HistogramEstimate(
            histogram=decode_array(obj["histogram"]),
            raw=decode_array(obj["raw"]),
            edges=decode_array(obj["edges"]),
        )
    if kind == "mixed":
        return MixedEstimates(
            means={k: float(v) for k, v in obj["means"].items()},
            frequencies={
                k: decode_array(v) for k, v in obj["frequencies"].items()
            },
        )
    raise WireFormatError(f"unknown estimate payload type {kind!r}")


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def spec_fingerprint(spec: Union[ProtocolSpec, Dict[str, Any]]) -> str:
    """SHA-256 over the canonical (sorted, compact) spec dict.

    Two endpoints agree on this hex digest iff they were built from the
    same ``ProtocolSpec`` — same kind, budget, primitives, dimensions.
    """
    payload = spec.to_dict() if isinstance(spec, ProtocolSpec) else spec
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def pack(
    payload: Dict[str, Any],
    fingerprint: str,
    campaign: Optional[str] = None,
) -> Dict[str, Any]:
    """Wrap a payload in the versioned, fingerprinted envelope.

    ``campaign`` addresses a specific campaign on a multi-tenant
    server; omitted, the receiver routes to its default campaign
    (which is how pre-campaign v1 envelopes keep working).  The
    fingerprint check then runs against the *addressed* campaign's
    spec, so naming campaign A while carrying campaign B's fingerprint
    is a :class:`SpecMismatchError`, never a silent mis-aggregation.
    """
    envelope = {
        "wire_version": WIRE_VERSION,
        "fingerprint": fingerprint,
        "payload": payload,
    }
    if campaign is not None:
        envelope["campaign"] = str(campaign)
    return envelope


def envelope_campaign(envelope: Dict[str, Any]) -> Optional[str]:
    """The campaign an envelope addresses, or ``None`` (default)."""
    campaign = envelope.get("campaign")
    if campaign is None:
        return None
    if not isinstance(campaign, str):
        raise WireFormatError(
            f"envelope 'campaign' must be a fingerprint string, got "
            f"{type(campaign).__name__}"
        )
    return campaign


def unpack(
    envelope: Dict[str, Any], expected_fingerprint: str
) -> Dict[str, Any]:
    """Validate an envelope and return its payload.

    Raises :class:`WireFormatError` on a missing/unknown wire version
    and :class:`SpecMismatchError` when the sender's protocol
    fingerprint differs from ``expected_fingerprint``.
    """
    version = envelope.get("wire_version")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire_version {version!r}; this endpoint "
            f"speaks version {WIRE_VERSION}"
        )
    fingerprint = envelope.get("fingerprint")
    if fingerprint != expected_fingerprint:
        raise SpecMismatchError(
            f"protocol fingerprint mismatch: sender "
            f"{str(fingerprint)[:12]!r}... vs receiver "
            f"{expected_fingerprint[:12]!r}... — endpoints were built "
            f"from different ProtocolSpecs"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise WireFormatError("envelope carries no payload object")
    return payload
