"""Longitudinal memoized perturbation (client-side).

:class:`MemoizedEncoder` wraps any
:class:`~repro.protocol.encoders.ClientEncoder` and caches, per
``(user, value)``, the perturbed report produced the *first* time that
user reported that value.  Re-reporting an unchanged value across
rounds resends the byte-identical cached report, so the adversary's
view of that user across rounds collapses to a single perturbation —
one epsilon charge, not one per round.  The client marks each batch
entry with a ``fresh`` flag; the server's ledger charges only the
fresh ones (see DESIGN.md for the trust argument: the SDK runs on the
user's own device and is the agent protecting the user's own budget,
exactly like the perturbation itself).

The cache is per-encoder, and clients hold one encoder per campaign —
so the memoization key is effectively ``(campaign, user, value)``, the
granularity the privacy argument needs.  A user switching to a *new*
value is perturbed fresh (and charged); switching back to a previously
reported value reuses that value's original report without further
charge (classic permanent memoization à la RAPPOR).

Supported report containers: numeric arrays (mean protocol), GRR index
arrays, unary-encoding bit matrices,
:class:`~repro.frequency.olh.OLHReports`, and
:class:`~repro.protocol.reports.SampledNumericReports`.  Mixed-tuple
reports are rejected — their per-attribute sampling makes a cached row
unrepresentative, so memoizing them would silently change the
protocol.

This module is client-side by design: it imports encoders and is NOT
part of the QA201 server tier.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.frequency.olh import OLHReports
from repro.protocol.accumulators import ServerAccumulator
from repro.protocol.encoders import ClientEncoder, MixedEncoder
from repro.protocol.reports import SampledNumericReports
from repro.utils.rng import RngLike

#: Cached row forms: ``("array", row)``, ``("olh", seed, bucket)``,
#: ``("sampled", d, k, cols_row, values_row)``.
_Row = Tuple[Any, ...]


def _value_key(row: np.ndarray) -> bytes:
    """Canonical bytes for one true value (scalar or vector)."""
    arr = np.ascontiguousarray(row)
    return (
        str(arr.dtype.str).encode()
        + b"|"
        + repr(arr.shape).encode()
        + b"|"
        + arr.tobytes()
    )


def _split_rows(reports: Any) -> List[_Row]:
    """Decompose a report container into one cacheable row per user."""
    if isinstance(reports, OLHReports):
        return [
            ("olh", reports.seeds[i], reports.buckets[i])
            for i in range(len(reports))
        ]
    if isinstance(reports, SampledNumericReports):
        return [
            ("sampled", reports.d, reports.k,
             reports.cols[i], reports.values[i])
            for i in range(reports.n)
        ]
    arr = np.asarray(reports)
    if arr.ndim in (1, 2):
        return [("array", arr[i]) for i in range(arr.shape[0])]
    raise TypeError(
        f"memoization does not support report container "
        f"{type(reports).__name__}"
    )


def _join_rows(rows: Sequence[_Row]) -> Any:
    """Reassemble rows (cached + fresh, batch order) into a container."""
    kind = rows[0][0]
    if any(row[0] != kind for row in rows):
        raise TypeError("cannot mix report container kinds in one batch")
    if kind == "olh":
        return OLHReports(
            seeds=np.stack([np.asarray(row[1]) for row in rows]),
            buckets=np.stack([np.asarray(row[2]) for row in rows]),
        )
    if kind == "sampled":
        d, k = rows[0][1], rows[0][2]
        return SampledNumericReports(
            d=d,
            k=k,
            cols=np.stack([np.asarray(row[3]) for row in rows]),
            values=np.stack([np.asarray(row[4]) for row in rows]),
        )
    return np.stack([np.asarray(row[1]) for row in rows])


class MemoizedEncoder(ClientEncoder):
    """Permanent per-``(user, value)`` report memoization wrapper.

    Wraps ``inner`` without changing its single-round distribution:
    fresh values are encoded by ``inner`` exactly as before (the fresh
    subset is perturbed as one vectorized batch, so an all-cached round
    never touches the rng at all — round-2 encode cost ~0).
    """

    def __init__(self, inner: ClientEncoder) -> None:
        if isinstance(inner, MemoizedEncoder):
            raise ValueError("refusing to memoize a MemoizedEncoder")
        if isinstance(inner, MixedEncoder):
            raise TypeError(
                "mixed-tuple protocols cannot be memoized: each round "
                "re-samples which attributes a user reports, so a cached "
                "row is unrepresentative"
            )
        self.inner = inner
        self._cache: Dict[Tuple[Hashable, bytes], _Row] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # ClientEncoder interface (delegation)
    # ------------------------------------------------------------------
    def encode_batch(self, values: Any, rng: RngLike = None) -> Any:
        """Plain (user-less) encode: no identity, nothing to memoize."""
        return self.inner.encode_batch(values, rng)

    def new_accumulator(self) -> ServerAccumulator:
        return self.inner.new_accumulator()

    # ------------------------------------------------------------------
    # Memoized path
    # ------------------------------------------------------------------
    def encode_users(
        self,
        values: Any,
        users: Sequence[Hashable],
        rng: RngLike = None,
    ) -> Tuple[Any, List[bool]]:
        """Encode one round for named users; flag which reports are new.

        Returns ``(reports, fresh)`` where ``reports`` is the full
        report container in batch order (cached rows byte-identical to
        their first transmission) and ``fresh[i]`` says whether user
        ``i``'s report was perturbed this round — the server charges
        epsilon only for fresh entries.
        """
        matrix = np.asarray(values)
        if matrix.ndim == 0:
            matrix = matrix.reshape(1)
        n = matrix.shape[0]
        if len(users) != n:
            raise ValueError(
                f"got {n} values for {len(users)} users; they must pair up"
            )
        if n == 0:
            return self.inner.encode_batch(values, rng), []

        keys = [(users[i], _value_key(matrix[i])) for i in range(n)]
        fresh = [key not in self._cache for key in keys]
        fresh_idx = [i for i in range(n) if fresh[i]]
        self._hits += n - len(fresh_idx)
        self._misses += len(fresh_idx)

        if fresh_idx:
            fresh_reports = self.inner.encode_batch(
                matrix[np.asarray(fresh_idx, dtype=np.intp)], rng
            )
            for row, i in zip(_split_rows(fresh_reports), fresh_idx):
                self._cache[keys[i]] = row
        rows = [self._cache[key] for key in keys]
        return _join_rows(rows), fresh

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        """Distinct ``(user, value)`` pairs memoized so far."""
        return len(self._cache)

    @property
    def hits(self) -> int:
        """Reports served from cache (no perturbation, no charge)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Reports perturbed fresh (charged by the ledger)."""
        return self._misses

    def forget(self, user: Optional[Hashable] = None) -> int:
        """Drop cached reports (one user's, or everyone's); returns
        the number of entries removed.  A forgotten value will be
        re-perturbed — and re-charged — on next report."""
        if user is None:
            removed = len(self._cache)
            self._cache.clear()
            return removed
        doomed = [key for key in self._cache if key[0] == user]
        for key in doomed:
            del self._cache[key]
        return len(doomed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoizedEncoder({self.inner!r}, cached={self.cache_size}, "
            f"hits={self._hits}, misses={self._misses})"
        )
