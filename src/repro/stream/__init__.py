"""repro.stream — streaming analytics over mergeable accumulators.

Three pillars, layered on the protocol/service stack built by earlier
PRs:

* :mod:`repro.stream.windows` — :class:`WindowConfig`,
  :class:`WindowedAccumulator` and its exponentially-decayed variant:
  time-bucketed ring-buffer panes over any
  :class:`~repro.protocol.accumulators.ServerAccumulator`, merged with
  the bitwise-tested ``merge()`` as a pane merge tree.
* :mod:`repro.stream.memo` — :class:`MemoizedEncoder`: longitudinal
  client-side memoization so a user re-reporting an unchanged value
  across rounds resends the *same* perturbed report and is charged
  privacy budget only once.
* :mod:`repro.stream.heavy` — :class:`HeavyHitterTracker`: top-k over
  the frequency oracles with churn detection between consecutive
  windows.

``windows`` and ``heavy`` run on the aggregator and are held to the
QA201 privacy boundary (no client-side raw-value imports); ``memo`` is
client-side by design and wraps the protocol encoders.
"""

from repro.stream.heavy import HeavyHitters, HeavyHitterTracker
from repro.stream.memo import MemoizedEncoder
from repro.stream.windows import (
    DecayedWindowedAccumulator,
    WindowConfig,
    WindowedAccumulator,
    parse_duration,
)

__all__ = [
    "DecayedWindowedAccumulator",
    "HeavyHitters",
    "HeavyHitterTracker",
    "MemoizedEncoder",
    "WindowConfig",
    "WindowedAccumulator",
    "parse_duration",
]
