"""Sliding-window accumulation: ring-buffer panes over ``merge()``.

A :class:`WindowedAccumulator` time-buckets absorbs into *panes* — one
ordinary :class:`~repro.protocol.accumulators.ServerAccumulator` per
round — and keeps the most recent ``panes`` of them in a ring.  A
window query merges the in-window panes (ascending round order) into a
fresh accumulator with the bitwise-tested ``merge()``, so the windowed
estimate is exactly what recomputing from only those panes' reports
would produce.  Panes evicted off the ring are folded into one
``expired`` tail accumulator, so the all-time ``estimate()`` keeps the
classic semantics and v1 (window-unaware) clients see no change.

Rounds are explicit small integers carried on the wire envelope (the
deterministic, testable clock); :attr:`WindowConfig.pane_seconds` only
maps human duration strings (``"90s"``, ``"5m"``) onto a pane count at
query time.  Reports with no round land in the current (latest) round.

Determinism: pane membership is exact (integral round arithmetic), the
ring evicts and merges in ascending round order, and the pane merge
tree folds in fixed order — so snapshots (``state_dict`` holds every
pane plus the expired tail) resume bitwise, sharded or not.

The exponentially-decayed variant
(:class:`DecayedWindowedAccumulator`, or
:meth:`WindowedAccumulator.decayed_estimate`) reweights pane estimates
by ``decay ** age`` — supported for the protocol kinds whose estimate
is linear in the sufficient statistics (mean, multidim means,
frequency).

This module runs on the aggregator and is held to the QA201 privacy
boundary: it imports accumulators only, never encoders or mechanisms.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.protocol.accumulators import ServerAccumulator
from repro.protocol.reports import ColumnBlock

#: Duration suffixes accepted by :func:`parse_duration`, in seconds.
_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([smhd]?)\s*$")


def parse_duration(text: str) -> float:
    """Seconds from a human duration string (``"90s"``, ``"5m"``,
    ``"2h"``, ``"1d"``; a bare number means seconds)."""
    match = _DURATION_RE.match(str(text))
    if match is None:
        raise ValueError(
            f"cannot parse duration {text!r}; use e.g. '90s', '5m', '2h'"
        )
    value = float(match.group(1))
    unit = match.group(2) or "s"
    return value * _DURATION_UNITS[unit]


@dataclass(frozen=True)
class WindowConfig:
    """Per-campaign window configuration.

    Parameters
    ----------
    panes:
        Ring size — how many most-recent rounds stay individually
        queryable.  Older panes fold into the expired tail (still
        counted by the all-time estimate).
    pane_seconds:
        Wall-clock width of one pane, used only to translate duration
        strings in ``GET /estimate?window=90s`` into a pane count.
        ``None`` restricts window queries to explicit pane counts.
    decay:
        When set, campaign accumulators are built as
        :class:`DecayedWindowedAccumulator` with this per-pane decay
        factor (their default ``estimate()`` is the decayed one).
    """

    panes: int
    pane_seconds: Optional[float] = None
    decay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.panes < 1:
            raise ValueError(f"panes must be >= 1, got {self.panes}")
        if self.pane_seconds is not None and self.pane_seconds <= 0:
            raise ValueError(
                f"pane_seconds must be > 0, got {self.pane_seconds}"
            )
        if self.decay is not None and not 0.0 < self.decay <= 1.0:
            raise ValueError(
                f"decay must lie in (0, 1], got {self.decay}"
            )

    # ------------------------------------------------------------------
    def build(
        self, factory: Callable[[], ServerAccumulator]
    ) -> "WindowedAccumulator":
        """A fresh windowed accumulator over ``factory``-built panes."""
        if self.decay is not None:
            return DecayedWindowedAccumulator(
                factory,
                panes=self.panes,
                pane_seconds=self.pane_seconds,
                decay=self.decay,
            )
        return WindowedAccumulator(
            factory, panes=self.panes, pane_seconds=self.pane_seconds
        )

    def resolve_panes(self, window: Optional[str]) -> int:
        """Pane count for one ``?window=`` query value.

        ``None`` (or empty) means the full ring; a bare integer is a
        pane count; anything with a duration suffix needs
        :attr:`pane_seconds` to convert.  The result is clamped to
        ``[1, panes]`` — the ring cannot answer further back.
        """
        if window is None or str(window).strip() == "":
            return self.panes
        text = str(window).strip()
        try:
            count = int(text)
        except ValueError:
            seconds = parse_duration(text)
            if self.pane_seconds is None:
                raise ValueError(
                    f"window {text!r} is a duration but this campaign "
                    f"has no pane_seconds configured; pass a pane count"
                ) from None
            count = max(1, math.ceil(seconds / self.pane_seconds))
        if count < 1:
            raise ValueError(f"window must cover >= 1 pane, got {count}")
        return min(count, self.panes)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "panes": self.panes,
            "pane_seconds": self.pane_seconds,
            "decay": self.decay,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WindowConfig":
        return cls(
            panes=int(payload["panes"]),
            pane_seconds=(
                float(payload["pane_seconds"])
                if payload.get("pane_seconds") is not None
                else None
            ),
            decay=(
                float(payload["decay"])
                if payload.get("decay") is not None
                else None
            ),
        )


class WindowedAccumulator(ServerAccumulator):
    """Ring-buffer of per-round pane accumulators plus an expired tail.

    Wraps any accumulator ``factory`` (typically
    ``protocol.server``) — panes, the expired tail, the merge scratch
    for window queries and the validation template are all built from
    it, so the windowed accumulator inherits the wrapped protocol's
    validation, merge compatibility checks and estimate shape.

    Mutable state is exactly ``_ring`` (round -> pane accumulator),
    ``_latest`` (highest round seen) and ``_expired`` (tail
    accumulator, ``None`` until the first eviction); all three
    round-trip through :meth:`state_dict`/:meth:`load_state` bitwise.
    """

    def __init__(
        self,
        factory: Callable[[], ServerAccumulator],
        panes: int,
        pane_seconds: Optional[float] = None,
    ) -> None:
        if panes < 1:
            raise ValueError(f"panes must be >= 1, got {panes}")
        self.factory = factory
        self.panes = int(panes)
        self.pane_seconds = (
            float(pane_seconds) if pane_seconds is not None else None
        )
        # Immutable helper (never absorbs): validation delegate so the
        # request path can pre-check batches without touching a pane.
        self.template = factory()
        self._ring: Dict[int, ServerAccumulator] = {}
        self._latest: Optional[int] = None
        self._expired: Optional[ServerAccumulator] = None

    # ------------------------------------------------------------------
    # Round bookkeeping
    # ------------------------------------------------------------------
    @property
    def latest_round(self) -> Optional[int]:
        """Highest round absorbed so far (``None`` before any data)."""
        return self._latest

    @property
    def current_round(self) -> int:
        """Where a round-less absorb lands (latest seen, else 0)."""
        return self._latest if self._latest is not None else 0

    def live_rounds(self) -> List[int]:
        """Rounds currently held in the ring, ascending."""
        return sorted(self._ring)

    def pane_counts(self) -> Dict[int, int]:
        """Reports per live pane, by round (ascending insertion)."""
        return {r: int(self._ring[r].count) for r in sorted(self._ring)}

    def _expired_tail(self) -> ServerAccumulator:
        if self._expired is None:
            self._expired = self.factory()
        return self._expired

    def _advance(self, round_: int) -> None:
        """Move ``latest`` up to ``round_``; evict panes that fall off
        the ring into the expired tail, in ascending round order."""
        if self._latest is None or round_ > self._latest:
            self._latest = round_
        floor = self._latest - self.panes
        for r in sorted(self._ring):
            if r <= floor:
                self._expired_tail().merge(self._ring.pop(r))

    def _pane(self, round_: int) -> ServerAccumulator:
        pane = self._ring.get(round_)
        if pane is None:
            pane = self.factory()
            self._ring[round_] = pane
        return pane

    @staticmethod
    def _check_round(round_: Any) -> int:
        r = int(round_)
        if r < 0:
            raise ValueError(f"round must be >= 0, got {round_}")
        return r

    def _is_expired(self, round_: int) -> bool:
        return (
            self._latest is not None and round_ <= self._latest - self.panes
        )

    # ------------------------------------------------------------------
    # Absorption
    # ------------------------------------------------------------------
    def absorb_round(
        self, round_: Any, reports: Any
    ) -> "WindowedAccumulator":
        """Fold one batch into the pane for ``round_``.

        A round older than the ring floor is a *late arrival*: it folds
        into the expired tail (so the all-time estimate stays exact)
        and never appears in a window — the same answer recomputing the
        window from only in-window reports would give.
        """
        r = self._check_round(round_)
        if self._is_expired(r):
            self._expired_tail().absorb(reports)
            return self
        self._pane(r).absorb(reports)
        self._advance(r)
        return self

    def absorb_columns_round(
        self, round_: Any, block: ColumnBlock
    ) -> "WindowedAccumulator":
        """Columnar twin of :meth:`absorb_round`."""
        r = self._check_round(round_)
        if self._is_expired(r):
            self._expired_tail().absorb_columns(block)
            return self
        self._pane(r).absorb_columns(block)
        self._advance(r)
        return self

    def absorb(self, reports: Any) -> "WindowedAccumulator":
        """Round-less absorb (v1 clients): lands in the current round."""
        return self.absorb_round(self.current_round, reports)

    def absorb_columns(self, block: ColumnBlock) -> "WindowedAccumulator":
        return self.absorb_columns_round(self.current_round, block)

    def validate_reports(self, reports: Any) -> None:
        self.template.validate_reports(reports)

    def validate_columns(self, block: ColumnBlock) -> None:
        self.template.validate_columns(block)

    # ------------------------------------------------------------------
    # Merge (shard fan-in) and estimates
    # ------------------------------------------------------------------
    def merge(self, other: "ServerAccumulator") -> "WindowedAccumulator":
        """Fold another windowed accumulator in, aligning rounds.

        Expired tails merge first, then the other ring's panes in
        ascending round order — fixed order, so the sharded fan-in is
        deterministic (and exact for integral counts).
        """
        if not isinstance(other, WindowedAccumulator):
            raise ValueError(
                f"cannot merge {type(other).__name__} into "
                f"WindowedAccumulator"
            )
        if other.panes != self.panes:
            raise ValueError(
                f"cannot merge windows of different ring sizes "
                f"({other.panes} vs {self.panes})"
            )
        if other._expired is not None:
            self._expired_tail().merge(other._expired)
        for r in sorted(other._ring):
            pane = other._ring[r]
            if self._is_expired(r):
                self._expired_tail().merge(pane)
                continue
            self._pane(r).merge(pane)
            self._advance(r)
        return self

    @property
    def count(self) -> int:
        total = sum(int(p.count) for p in self._ring.values())
        if self._expired is not None:
            total += int(self._expired.count)
        return total

    def _window_rounds(self, n_panes: int) -> List[int]:
        if n_panes < 1:
            raise ValueError(f"window must cover >= 1 pane, got {n_panes}")
        if self._latest is None:
            return []
        floor = self._latest - min(int(n_panes), self.panes)
        return [r for r in sorted(self._ring) if r > floor]

    def window_count(self, n_panes: Optional[int] = None) -> int:
        """Reports inside the last ``n_panes`` rounds (default: ring)."""
        n = self.panes if n_panes is None else int(n_panes)
        return sum(int(self._ring[r].count) for r in self._window_rounds(n))

    def window_accumulator(
        self, n_panes: Optional[int] = None
    ) -> ServerAccumulator:
        """Fresh accumulator holding exactly the in-window panes.

        The pane merge tree: in-window panes fold into a
        ``factory()``-fresh accumulator in ascending round order —
        bitwise-equal to absorbing only those panes' reports into a
        fresh accumulator in the same per-pane order.
        """
        n = self.panes if n_panes is None else int(n_panes)
        merged = self.factory()
        for r in self._window_rounds(n):
            merged.merge(self._ring[r])
        return merged

    def window_estimate(self, n_panes: Optional[int] = None) -> Any:
        """Estimate over the last ``n_panes`` rounds only."""
        merged = self.window_accumulator(n_panes)
        if merged.count == 0:
            raise ValueError("no reports in window")
        return merged.estimate()

    def estimate(self) -> Any:
        """All-time estimate: expired tail plus every live pane."""
        merged = self.factory()
        if self._expired is not None:
            merged.merge(self._expired)
        for r in sorted(self._ring):
            merged.merge(self._ring[r])
        if merged.count == 0:
            raise ValueError("no reports received yet")
        return merged.estimate()

    def decayed_estimate(
        self, decay: float, n_panes: Optional[int] = None
    ) -> Any:
        """Exponentially-decayed estimate over the live panes.

        Pane ``r`` (age ``latest - r``) contributes with weight
        ``decay ** age * count_r`` — the convex combination of pane
        estimates that equals reweighting each pane's *sufficient
        statistics* by ``decay ** age``, for every protocol kind whose
        estimate is linear in them (mean, multidim means, frequency).
        Non-linear estimates (histogram projection, mixed tuples) are
        rejected with ``TypeError``.
        """
        if not 0.0 < float(decay) <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        rounds = [
            r for r in self._window_rounds(
                self.panes if n_panes is None else n_panes
            )
            if self._ring[r].count > 0
        ]
        if not rounds:
            raise ValueError("no reports in window")
        assert self._latest is not None
        total = 0.0
        combined: Any = None
        for r in rounds:
            pane = self._ring[r]
            value = pane.estimate()
            if not isinstance(value, (int, float, np.floating, np.ndarray)):
                raise TypeError(
                    f"decayed estimates need a numeric estimate, got "
                    f"{type(value).__name__} — supported kinds: mean, "
                    f"multidim-numeric, frequency"
                )
            weight = float(decay) ** (self._latest - r) * float(pane.count)
            term = weight * np.asarray(value, dtype=float)
            combined = term if combined is None else combined + term
            total += weight
        result = combined / total
        return float(result) if np.ndim(result) == 0 else result

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "ring": {
                str(r): self._ring[r].state_dict()
                for r in sorted(self._ring)
            },
            "latest": self._latest,
            "expired": (
                self._expired.state_dict()
                if self._expired is not None
                else None
            ),
        }

    def load_state(self, state: Dict) -> "WindowedAccumulator":
        ring: Dict[int, ServerAccumulator] = {}
        for key, pane_state in state["ring"].items():
            pane = self.factory()
            pane.load_state(pane_state)
            ring[int(key)] = pane
        latest = state["latest"]
        expired_state = state.get("expired")
        expired: Optional[ServerAccumulator] = None
        if expired_state is not None:
            expired = self.factory()
            expired.load_state(expired_state)
        self._ring = ring
        self._latest = int(latest) if latest is not None else None
        self._expired = expired
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(panes={self.panes}, "
            f"live={len(self._ring)}, latest={self._latest}, "
            f"count={self.count})"
        )


class DecayedWindowedAccumulator(WindowedAccumulator):
    """Windowed accumulator whose default estimate is the decayed one.

    Identical ring/pane state (snapshots interchange with the plain
    windowed class); only ``estimate()`` changes — it reweights live
    panes by ``decay ** age`` instead of the all-time merge.  Window
    and all-time queries remain available via
    :meth:`~WindowedAccumulator.window_estimate` and
    :meth:`all_time_estimate`.
    """

    def __init__(
        self,
        factory: Callable[[], ServerAccumulator],
        panes: int,
        pane_seconds: Optional[float] = None,
        decay: float = 0.9,
    ) -> None:
        super().__init__(factory, panes=panes, pane_seconds=pane_seconds)
        if not 0.0 < float(decay) <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        self.decay = float(decay)

    def all_time_estimate(self) -> Any:
        """The undecayed all-time estimate (expired tail + panes)."""
        return super().estimate()

    def estimate(self) -> Any:
        return self.decayed_estimate(self.decay)
