"""Live heavy-hitter tracking over the frequency oracles.

:class:`HeavyHitterTracker` turns a stream of per-round frequency
estimates (the debiased vectors the frequency/histogram accumulators
already produce) into a top-k view with *churn detection*: which
categories entered and which dropped out of the top-k between
consecutive observed rounds.  It holds no raw reports — only category
indices and their estimated frequencies — so it lives on the
aggregator inside the QA201 server tier, importing accumulator output
shapes only.

Determinism: ties break by category index (stable argsort on the
negated frequencies), so two servers observing the same estimate
vector produce the same top-k, and the tracker's ``to_dict`` /
``from_dict`` round-trip restores churn state bitwise across
kill-and-resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class HeavyHitters:
    """One round's top-k view plus churn against the previous round.

    Attributes
    ----------
    round:
        The round this view describes (``None`` when the source
        accumulator carries no round, e.g. an all-time estimate).
    k:
        Requested list length; ``indices`` may be shorter when fewer
        than ``k`` categories have positive estimated frequency.
    indices / frequencies:
        Top categories, most frequent first, with their estimates.
    entered / exited:
        Categories that joined, respectively left, the top-k since the
        previously observed round (ascending index order).  Both empty
        on the first observation.
    """

    round: Optional[int]
    k: int
    indices: List[int] = field(default_factory=list)
    frequencies: List[float] = field(default_factory=list)
    entered: List[int] = field(default_factory=list)
    exited: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "k": self.k,
            "indices": list(self.indices),
            "frequencies": [float(f) for f in self.frequencies],
            "entered": list(self.entered),
            "exited": list(self.exited),
        }


def top_k(frequencies: Any, k: int) -> List[int]:
    """Indices of the ``k`` largest positive frequencies, descending.

    Stable argsort on the negated vector: equal frequencies rank by
    ascending category index, deterministically.  Non-positive
    estimates are never heavy hitters (debiasing can push absent
    categories below zero), so the result may be shorter than ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    freqs = np.asarray(frequencies, dtype=float).ravel()
    order = np.argsort(-freqs, kind="stable")[: int(k)]
    return [int(i) for i in order if freqs[i] > 0.0]


class HeavyHitterTracker:
    """Top-k with churn detection between consecutive observations.

    Feed it one frequency-estimate vector per round via
    :meth:`update`; it remembers the previous round's top-k so each
    call reports which categories entered and exited.  Re-observing
    the *same* round (e.g. a second poll before new data arrives)
    refreshes the current view without shifting the churn baseline.
    """

    def __init__(self, k: int = 10) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self._round: Optional[int] = None
        self._current: List[int] = []
        self._previous: List[int] = []
        self._observed = False

    @property
    def observed_round(self) -> Optional[int]:
        """Round of the most recent observation (``None`` initially)."""
        return self._round

    def update(
        self,
        frequencies: Any,
        round_: Optional[int] = None,
        k: Optional[int] = None,
    ) -> HeavyHitters:
        """Observe one round's frequency estimate; return the view.

        Rounds must be observed in non-decreasing order; an older round
        raises (the baseline has already moved past it).  ``k``
        overrides the tracker default for this call only — churn is
        still computed against the stored baseline list.
        """
        want = self.k if k is None else int(k)
        top = top_k(frequencies, want)
        if round_ is not None and self._round is not None:
            if round_ < self._round:
                raise ValueError(
                    f"round {round_} is older than the last observed "
                    f"round {self._round}"
                )
        advanced = (
            round_ is None
            or self._round is None
            or round_ > self._round
        )
        first = not self._observed
        if advanced and not first:
            self._previous = self._current
        baseline = set(self._previous)
        entered = [] if first else sorted(set(top) - baseline)
        exited = [] if first else sorted(baseline - set(top))
        self._current = top
        self._observed = True
        if round_ is not None:
            self._round = int(round_)
        return HeavyHitters(
            round=self._round,
            k=want,
            indices=top,
            frequencies=[
                float(np.asarray(frequencies, dtype=float).ravel()[i])
                for i in top
            ],
            entered=entered,
            exited=exited,
        )

    # ------------------------------------------------------------------
    # Snapshots (persisted in the campaign manifest)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "round": self._round,
            "current": list(self._current),
            "previous": list(self._previous),
            "observed": self._observed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HeavyHitterTracker":
        tracker = cls(k=int(payload.get("k", 10)))
        round_ = payload.get("round")
        tracker._round = int(round_) if round_ is not None else None
        tracker._current = [int(i) for i in payload.get("current", [])]
        tracker._previous = [int(i) for i in payload.get("previous", [])]
        tracker._observed = bool(payload.get("observed", tracker._round is not None or bool(tracker._current)))
        return tracker

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeavyHitterTracker(k={self.k}, round={self._round}, "
            f"current={self._current})"
        )
