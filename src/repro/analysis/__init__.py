"""Aggregator-side analysis: intervals, planning and budget accounting."""

from repro.analysis.auditor import (
    AuditResult,
    audit_frequency_oracle,
    audit_numeric_mechanism,
)
from repro.analysis.accountant import (
    BudgetExceededError,
    Charge,
    PrivacyAccountant,
)
from repro.analysis.intervals import (
    ConfidenceInterval,
    collector_mean_intervals,
    frequency_intervals,
    mean_interval,
    z_quantile,
)
from repro.analysis.planner import (
    Plan,
    compare_mechanisms,
    required_epsilon,
    required_users,
    worst_case_variance,
)

__all__ = [
    "ConfidenceInterval",
    "mean_interval",
    "frequency_intervals",
    "collector_mean_intervals",
    "z_quantile",
    "Plan",
    "required_users",
    "required_epsilon",
    "compare_mechanisms",
    "worst_case_variance",
    "PrivacyAccountant",
    "BudgetExceededError",
    "Charge",
    "AuditResult",
    "audit_numeric_mechanism",
    "audit_frequency_oracle",
]
