"""Confidence intervals for LDP estimates.

Two flavours are provided for every estimate this package produces:

* **Concentration intervals** from the paper's Lemma 2 / Lemma 5
  (sub-Gaussian tail of bounded reports) — conservative, hold for any n.
* **CLT intervals** using the mechanism's closed-form variance —
  asymptotically exact and much tighter at realistic n.

Both express what the *aggregator* can honestly publish next to a
point estimate without access to the raw data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.mechanism import NumericMechanism
from repro.frequency.oracle import FrequencyOracle
from repro.utils.stats import confidence_radius

#: Standard normal quantiles for common coverage levels.
_Z_TABLE = {0.20: 1.2816, 0.10: 1.6449, 0.05: 1.9600, 0.01: 2.5758}


def z_quantile(beta: float) -> float:
    """Two-sided standard-normal quantile z_{1 - beta/2}.

    Uses a small exact table for common levels and the Acklam-style
    rational approximation elsewhere (no scipy dependency).
    """
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    if beta in _Z_TABLE:
        return _Z_TABLE[beta]
    # Beasley-Springer-Moro approximation of the inverse normal CDF.
    p = 1.0 - beta / 2.0
    a = (
        -3.969683028665376e01, 2.209460984245205e02,
        -2.759285104469687e02, 1.383577518672690e02,
        -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02,
        -1.556989798598866e02, 6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e00, -2.549732539343734e00,
        4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e00, 3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        # Lower tail (never reached for beta in (0, 1), kept for safety).
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    # Upper tail: x = -norminv(1 - p) > 0.
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric interval estimate with its coverage level."""

    estimate: float
    radius: float
    beta: float
    method: str

    @property
    def low(self) -> float:
        return self.estimate - self.radius

    @property
    def high(self) -> float:
        return self.estimate + self.radius

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:+.5f} +- {self.radius:.5f} "
            f"({100 * (1 - self.beta):.0f}% {self.method})"
        )


def mean_interval(
    mechanism: NumericMechanism,
    estimate: float,
    n: int,
    beta: float = 0.05,
    method: str = "clt",
) -> ConfidenceInterval:
    """Interval for a 1-D mean estimate from n reports of a mechanism.

    method="clt" uses z * sqrt(MaxVar/n); method="concentration" uses
    the Lemma 2 sub-Gaussian radius (wider, non-asymptotic).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    variance = mechanism.worst_case_variance()
    if method == "clt":
        radius = z_quantile(beta) * math.sqrt(variance / n)
    elif method == "concentration":
        radius = confidence_radius(variance, n, beta)
    else:
        raise ValueError(
            f"method must be 'clt' or 'concentration', got {method!r}"
        )
    return ConfidenceInterval(
        estimate=float(estimate), radius=radius, beta=beta, method=method
    )


def frequency_intervals(
    oracle: FrequencyOracle,
    estimates,
    n: int,
    beta: float = 0.05,
) -> Tuple[ConfidenceInterval, ...]:
    """CLT intervals for every value of a frequency oracle's estimate.

    A Bonferroni correction (beta/k) keeps simultaneous coverage."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    k = oracle.k
    corrected = beta / k
    out = []
    for value_estimate in estimates:
        variance = oracle.estimator_variance(
            n, f=float(min(max(value_estimate, 0.0), 1.0))
        )
        radius = z_quantile(corrected) * math.sqrt(max(variance, 0.0))
        out.append(
            ConfidenceInterval(
                estimate=float(value_estimate),
                radius=radius,
                beta=beta,
                method="clt+bonferroni",
            )
        )
    return tuple(out)


def collector_mean_intervals(
    collector,
    estimates: Dict[str, float],
    n: int,
    beta: float = 0.05,
) -> Dict[str, ConfidenceInterval]:
    """Simultaneous CLT intervals for a multidim collector's mean dict.

    Uses the collector's per-coordinate worst-case variance and a
    Bonferroni correction over the numeric attributes."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not estimates:
        raise ValueError("no mean estimates supplied")
    variance = collector.worst_case_variance()
    corrected = beta / len(estimates)
    radius = z_quantile(corrected) * math.sqrt(variance / n)
    return {
        name: ConfidenceInterval(
            estimate=float(value),
            radius=radius,
            beta=beta,
            method="clt+bonferroni",
        )
        for name, value in estimates.items()
    }
