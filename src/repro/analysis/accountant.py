"""Per-user privacy budget accounting (sequential composition).

LDP deployments repeatedly query the same population: today a mean,
tomorrow a frequency table, next week gradients.  Under sequential
composition the per-user losses add up; the accountant is the ledger
that enforces a lifetime cap — the reason the paper's SGD has each user
participate in exactly one iteration (Section V's m = 1 argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.core.validation import check_epsilon


class BudgetExceededError(RuntimeError):
    """Raised when a charge would push a user past the lifetime cap."""


@dataclass(frozen=True)
class Charge:
    """One recorded expenditure."""

    user: str
    epsilon: float
    label: str


@dataclass
class PrivacyAccountant:
    """Tracks cumulative eps spent per user under sequential composition.

    Parameters
    ----------
    lifetime_epsilon:
        Hard cap on any single user's total budget.
    """

    lifetime_epsilon: float
    _spent: Dict[str, float] = field(default_factory=dict)
    _ledger: List[Charge] = field(default_factory=list)

    def __post_init__(self):
        self.lifetime_epsilon = check_epsilon(self.lifetime_epsilon)

    # ------------------------------------------------------------------
    def spent(self, user: str) -> float:
        """Total eps already consumed by ``user``."""
        return self._spent.get(user, 0.0)

    def spent_many(self, users: Iterable[str]) -> List[float]:
        """Bulk :meth:`spent` — one bound ``dict.get`` per user, no
        per-user method dispatch (metrics hot path reads whole batches)."""
        get = self._spent.get
        return [get(user, 0.0) for user in users]

    def remaining(self, user: str) -> float:
        """Budget left before ``user`` hits the lifetime cap."""
        return self.lifetime_epsilon - self.spent(user)

    def can_charge(self, user: str, epsilon: float) -> bool:
        """Whether a charge of ``epsilon`` fits within the cap."""
        return check_epsilon(epsilon) <= self.remaining(user) + 1e-12

    def charge(self, user: str, epsilon: float, label: str = "") -> float:
        """Record a charge; raises BudgetExceededError if it overdraws."""
        epsilon = check_epsilon(epsilon)
        if not self.can_charge(user, epsilon):
            raise BudgetExceededError(
                f"user {user!r}: charge {epsilon:g} exceeds remaining "
                f"budget {self.remaining(user):g} "
                f"(lifetime {self.lifetime_epsilon:g})"
            )
        self._spent[user] = self.spent(user) + epsilon
        self._ledger.append(Charge(user=user, epsilon=epsilon, label=label))
        return self.remaining(user)

    def charge_group(
        self, users, epsilon: float, label: str = "", atomic: bool = False
    ) -> Tuple[str, ...]:
        """Charge every user that still has room; returns those charged.

        This is the SGD recruitment pattern: only users with budget left
        may join an iteration's group.

        With ``atomic=True`` the group is all-or-nothing: if any user
        (at multiplicity — the same name twice must afford 2x) cannot
        cover the charge, every charge already applied for this group
        is rolled back and :class:`BudgetExceededError` is raised, so a
        partial failure can never leave the ledger half-charged.
        """
        epsilon = check_epsilon(epsilon)
        charged = []
        try:
            for user in users:
                if not self.can_charge(user, epsilon):
                    if atomic:
                        raise BudgetExceededError(
                            f"user {user!r}: group charge {epsilon:g} "
                            f"exceeds remaining budget "
                            f"{self.remaining(user):g} (lifetime "
                            f"{self.lifetime_epsilon:g})"
                        )
                    continue
                self.charge(user, epsilon, label)
                charged.append(user)
        except BudgetExceededError:
            if not atomic:  # pragma: no cover - charge() was pre-checked
                raise
            self._rollback(len(charged))
            raise
        return tuple(charged)

    def _rollback(self, n: int) -> None:
        """Undo the last ``n`` recorded charges (atomic-group failure)."""
        for _ in range(n):
            undone = self._ledger.pop()
            remaining = self.spent(undone.user) - undone.epsilon
            if remaining <= 0.0:
                del self._spent[undone.user]
            else:
                self._spent[undone.user] = remaining

    # ------------------------------------------------------------------
    @property
    def ledger(self) -> Tuple[Charge, ...]:
        """Immutable view of every recorded charge."""
        return tuple(self._ledger)

    def total_spent(self) -> float:
        """Sum of eps across all users (a deployment-level cost figure)."""
        return float(sum(self._spent.values()))

    def spent_by_label(self, user: str) -> Dict[str, float]:
        """Breakdown of ``user``'s spend by charge label.

        Labels are whatever callers recorded — query names for ad-hoc
        analysis, campaign fingerprints for the service's
        cross-campaign ledger.  Keys appear in first-charge order.
        """
        breakdown: Dict[str, float] = {}
        for charge in self._ledger:
            if charge.user == user:
                breakdown[charge.label] = (
                    breakdown.get(charge.label, 0.0) + charge.epsilon
                )
        return breakdown

    def users(self) -> Tuple[str, ...]:
        """Every user with at least one recorded charge."""
        return tuple(self._spent)

    def exhausted_users(self) -> Tuple[str, ...]:
        """Users with (numerically) no budget left."""
        return tuple(
            sorted(u for u in self._spent if self.remaining(u) < 1e-12)
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of the full accounting state.

        Carries both the per-user spent map and the charge ledger so a
        service can persist budgets across restarts;
        :meth:`from_dict` round-trips exactly (floats survive JSON
        bitwise — ``json`` serializes them via ``repr`` round-trip).
        """
        return {
            "lifetime_epsilon": self.lifetime_epsilon,
            "spent": dict(self._spent),
            "ledger": [
                {"user": c.user, "epsilon": c.epsilon, "label": c.label}
                for c in self._ledger
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PrivacyAccountant":
        """Rebuild an accountant from :meth:`to_dict` output."""
        accountant = cls(lifetime_epsilon=float(payload["lifetime_epsilon"]))
        accountant._spent = {
            str(user): float(eps)
            for user, eps in payload.get("spent", {}).items()
        }
        accountant._ledger = [
            Charge(
                user=str(entry["user"]),
                epsilon=float(entry["epsilon"]),
                label=str(entry.get("label", "")),
            )
            for entry in payload.get("ledger", [])
        ]
        return accountant
