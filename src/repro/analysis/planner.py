"""Utility planning: how many users / how much budget does a target need?

Inverts the paper's accuracy guarantees.  Given a target error and
confidence, the planner answers the deployment questions:

* ``required_users`` — the n that makes the (Lemma 2/5-style) error
  radius fall below the target at a given eps;
* ``required_epsilon`` — the smallest eps (by bisection) achieving the
  target at a given n;
* ``compare_mechanisms`` — the per-mechanism n needed, exposing the
  paper's variance orderings as concrete cost differences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.analysis.intervals import z_quantile
from repro.core.validation import check_dimension, check_epsilon
from repro.theory.variance import (
    duchi_1d_worst_variance,
    duchi_md_worst_variance,
    hm_md_worst_variance,
    hm_worst_variance,
    laplace_variance,
    pm_md_worst_variance,
    pm_worst_variance,
)

#: Worst-case variance functions by (mechanism, dimensionality) regime.
_ONE_D: Dict[str, Callable[[float], float]] = {
    "laplace": laplace_variance,
    "duchi": duchi_1d_worst_variance,
    "pm": pm_worst_variance,
    "hm": hm_worst_variance,
}

_MULTI_D: Dict[str, Callable[[float, int], float]] = {
    "duchi": duchi_md_worst_variance,
    "pm": pm_md_worst_variance,
    "hm": hm_md_worst_variance,
}


def worst_case_variance(epsilon: float, mechanism: str, d: int = 1) -> float:
    """Dispatch to the right closed-form worst-case variance."""
    epsilon = check_epsilon(epsilon)
    d = check_dimension(d)
    if d == 1:
        try:
            return _ONE_D[mechanism](epsilon)
        except KeyError:
            raise ValueError(
                f"unknown 1-D mechanism {mechanism!r}; "
                f"choose from {tuple(_ONE_D)}"
            ) from None
    try:
        return _MULTI_D[mechanism](epsilon, d)
    except KeyError:
        raise ValueError(
            f"unknown multi-d mechanism {mechanism!r}; "
            f"choose from {tuple(_MULTI_D)}"
        ) from None


@dataclass(frozen=True)
class Plan:
    """A resolved deployment plan."""

    mechanism: str
    epsilon: float
    d: int
    target_error: float
    beta: float
    required_n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mechanism} @ eps={self.epsilon:g}, d={self.d}: "
            f"n >= {self.required_n} for |error| <= {self.target_error:g} "
            f"w.p. {1 - self.beta:.0%}"
        )


def required_users(
    epsilon: float,
    target_error: float,
    mechanism: str = "hm",
    d: int = 1,
    beta: float = 0.05,
) -> Plan:
    """Smallest n such that the CLT radius is within ``target_error``.

    For d > 1 a Bonferroni correction over attributes keeps the
    guarantee simultaneous (the Lemma 5 max-over-attributes flavour).
    """
    if target_error <= 0:
        raise ValueError(f"target_error must be positive, got {target_error}")
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    variance = worst_case_variance(epsilon, mechanism, d)
    z = z_quantile(beta / d if d > 1 else beta)
    n = int(math.ceil(z * z * variance / (target_error * target_error)))
    return Plan(
        mechanism=mechanism,
        epsilon=float(epsilon),
        d=d,
        target_error=target_error,
        beta=beta,
        required_n=max(n, 1),
    )


def required_epsilon(
    n: int,
    target_error: float,
    mechanism: str = "hm",
    d: int = 1,
    beta: float = 0.05,
    eps_range=(1e-3, 32.0),
) -> float:
    """Smallest eps meeting the target at a fixed n, by bisection.

    Raises if even the largest eps in ``eps_range`` cannot meet the
    target (i.e. the sampling error floor is too high).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")

    def radius(eps: float) -> float:
        variance = worst_case_variance(eps, mechanism, d)
        z = z_quantile(beta / d if d > 1 else beta)
        return z * math.sqrt(variance / n)

    lo, hi = eps_range
    if radius(hi) > target_error:
        raise ValueError(
            f"target error {target_error:g} unreachable with n={n} even at "
            f"eps={hi:g}; need more users"
        )
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if radius(mid) > target_error:
            lo = mid
        else:
            hi = mid
    return hi


def compare_mechanisms(
    epsilon: float,
    target_error: float,
    d: int = 1,
    beta: float = 0.05,
) -> Dict[str, Plan]:
    """Required n per mechanism — the variance ordering as user-count cost."""
    mechanisms = _ONE_D if d == 1 else _MULTI_D
    return {
        name: required_users(epsilon, target_error, name, d, beta)
        for name in mechanisms
    }
