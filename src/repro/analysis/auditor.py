"""Empirical LDP auditing: lower-bound a mechanism's privacy loss from samples.

A black-box check that a perturbation function actually delivers the
eps it claims: run the mechanism many times on a pair of inputs (t, t'),
compare the two output distributions over a common binning, and report a
*statistically sound lower bound* on the privacy loss:

    observed = max over bins of ( |log(p_a/p_b)| - z * SE )

where SE ~ sqrt(1/count_a + 1/count_b) is the delta-method standard
error of the log-ratio and z is a conservative quantile.  Bins are
equal-mass quantile bins of the pooled samples (so every bin has enough
counts for the SE to be meaningful); discrete outputs (e.g. Duchi's
two-point support) are binned by exact value.

This is a *lower-bound* auditor — it can prove a mechanism broken
(observed clearly above eps) but can never prove it correct.  The test
suite uses it both ways: correct mechanisms pass, and a deliberately
mis-parameterized mechanism is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.validation import check_epsilon
from repro.utils.rng import RngLike, ensure_rng

#: Conservative normal quantile for the per-bin slack.
SLACK_Z = 4.0

#: Additive smoothing per bin (keeps empty bins finite).
SMOOTHING = 0.5


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one empirical privacy audit."""

    claimed_epsilon: float
    observed_epsilon: float
    raw_max_log_ratio: float
    samples_per_input: int
    bins: int
    worst_pair: tuple

    @property
    def passed(self) -> bool:
        """True when the high-confidence lower bound stays within the
        claim."""
        return self.observed_epsilon <= self.claimed_epsilon

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"[{verdict}] claimed eps={self.claimed_epsilon:g}; observed "
            f"loss lower bound {self.observed_epsilon:.4f} "
            f"(raw max {self.raw_max_log_ratio:.4f}, "
            f"n={self.samples_per_input}, bins={self.bins}, "
            f"worst pair {self.worst_pair})"
        )


def _counts_over_common_bins(
    samples_a: np.ndarray, samples_b: np.ndarray, bins: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram both sample sets over shared equal-mass bins.

    Discrete outputs (few unique values) are binned by exact value;
    continuous outputs by pooled quantiles, so no bin is starved.
    """
    pooled = np.concatenate([samples_a, samples_b])
    unique = np.unique(pooled)
    if unique.size <= bins:
        edges = np.concatenate(
            [unique - 1e-12, [unique[-1] + 1e-12]]
        )
    else:
        quantiles = np.linspace(0.0, 1.0, bins + 1)
        edges = np.unique(np.quantile(pooled, quantiles))
        edges[0] -= 1e-12
        edges[-1] += 1e-12
    count_a, _ = np.histogram(samples_a, bins=edges)
    count_b, _ = np.histogram(samples_b, bins=edges)
    return count_a.astype(float), count_b.astype(float)


def _loss_lower_bound(
    count_a: np.ndarray, count_b: np.ndarray
) -> Tuple[float, float]:
    """(lower bound, raw max) of the |log ratio| over the shared bins."""
    prob_a = (count_a + SMOOTHING) / (count_a.sum() + SMOOTHING * count_a.size)
    prob_b = (count_b + SMOOTHING) / (count_b.sum() + SMOOTHING * count_b.size)
    log_ratio = np.abs(np.log(prob_a) - np.log(prob_b))
    se = np.sqrt(
        1.0 / (count_a + SMOOTHING) + 1.0 / (count_b + SMOOTHING)
    )
    lower = np.clip(log_ratio - SLACK_Z * se, 0.0, None)
    return float(lower.max()), float(log_ratio.max())


def audit_numeric_mechanism(
    mechanism,
    claimed_epsilon: float = None,
    inputs: Sequence[float] = (-1.0, 0.0, 1.0),
    samples_per_input: int = 200_000,
    bins: int = 30,
    rng: RngLike = None,
) -> AuditResult:
    """Audit a 1-D numeric mechanism's eps claim from samples.

    More bins sharpen the bound towards the true sup-ratio but raise the
    per-bin noise; the defaults resolve eps <= ~4 reliably at the default
    sample size.
    """
    if claimed_epsilon is None:
        claimed_epsilon = mechanism.epsilon
    claimed_epsilon = check_epsilon(claimed_epsilon)
    if samples_per_input < 1_000:
        raise ValueError("need at least 1000 samples per input")
    gen = ensure_rng(rng)

    samples = {
        t: np.asarray(
            mechanism.privatize(np.full(samples_per_input, float(t)), gen)
        )
        for t in inputs
    }
    observed, raw, worst_pair = 0.0, 0.0, (inputs[0], inputs[0])
    for i, t in enumerate(inputs):
        for t_prime in inputs[i + 1 :]:
            count_a, count_b = _counts_over_common_bins(
                samples[t], samples[t_prime], bins
            )
            lower, raw_pair = _loss_lower_bound(count_a, count_b)
            raw = max(raw, raw_pair)
            if lower > observed:
                observed, worst_pair = lower, (t, t_prime)
    return AuditResult(
        claimed_epsilon=claimed_epsilon,
        observed_epsilon=observed,
        raw_max_log_ratio=raw,
        samples_per_input=samples_per_input,
        bins=bins,
        worst_pair=worst_pair,
    )


def audit_frequency_oracle(
    oracle,
    claimed_epsilon: float = None,
    samples_per_input: int = 100_000,
    rng: RngLike = None,
) -> AuditResult:
    """Audit a categorical oracle by comparing report distributions.

    For direct encodings the reports themselves are compared; for unary
    encodings the joint distribution of the two bits that differ between
    the one-hot inputs is compared (those two bits carry the whole loss).
    """
    if claimed_epsilon is None:
        claimed_epsilon = oracle.epsilon
    claimed_epsilon = check_epsilon(claimed_epsilon)
    gen = ensure_rng(rng)
    value_a = np.zeros(samples_per_input, dtype=np.int64)
    value_b = np.ones(samples_per_input, dtype=np.int64)
    reports_a = oracle.privatize(value_a, gen)
    reports_b = oracle.privatize(value_b, gen)

    if hasattr(reports_a, "seeds"):  # OLH: project onto support indicators
        # Whether each report supports value 0 / value 1 is a
        # deterministic post-processing of (seed, bucket), so the loss
        # observed on the 2-bit indicator lower-bounds the true loss.
        def codes(reports):
            zeros = np.zeros(len(reports), dtype=np.int64)
            ones = np.ones(len(reports), dtype=np.int64)
            support0 = oracle._hash(reports.seeds, zeros) == reports.buckets
            support1 = oracle._hash(reports.seeds, ones) == reports.buckets
            return support0.astype(np.int64) * 2 + support1.astype(np.int64)

        count_a = np.bincount(codes(reports_a), minlength=4).astype(float)
        count_b = np.bincount(codes(reports_b), minlength=4).astype(float)
    elif np.asarray(reports_a).ndim == 2:  # unary encodings: joint 2-bit pmf
        bits_a = np.asarray(reports_a)[:, :2]
        bits_b = np.asarray(reports_b)[:, :2]
        code_a = bits_a[:, 0] * 2 + bits_a[:, 1]
        code_b = bits_b[:, 0] * 2 + bits_b[:, 1]
        count_a = np.bincount(code_a, minlength=4).astype(float)
        count_b = np.bincount(code_b, minlength=4).astype(float)
    else:  # direct-encoding reports
        count_a = np.bincount(
            np.asarray(reports_a), minlength=oracle.k
        ).astype(float)
        count_b = np.bincount(
            np.asarray(reports_b), minlength=oracle.k
        ).astype(float)
    observed, raw = _loss_lower_bound(count_a, count_b)
    return AuditResult(
        claimed_epsilon=claimed_epsilon,
        observed_epsilon=observed,
        raw_max_log_ratio=raw,
        samples_per_input=samples_per_input,
        bins=int(count_a.size),
        worst_pair=(0, 1),
    )
