"""Typed attribute schemas and the Dataset container.

A :class:`Schema` is an ordered list of numeric and categorical
attributes; a :class:`Dataset` binds a schema to column arrays.  The
multidimensional collectors (Section IV) and the ERM pipeline
(Section V/VI-B) consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.data.normalize import normalize_to_unit
from repro.frequency.encoders import dummy_encode, true_frequencies


@dataclass(frozen=True)
class NumericAttribute:
    """A numeric attribute with a publicly known domain [low, high]."""

    name: str
    low: float = -1.0
    high: float = 1.0

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError(
                f"{self.name}: need low < high, got [{self.low}, {self.high}]"
            )

    @property
    def is_numeric(self) -> bool:
        return True


@dataclass(frozen=True)
class CategoricalAttribute:
    """A categorical attribute with domain {0, ..., cardinality - 1}."""

    name: str
    cardinality: int

    def __post_init__(self):
        if self.cardinality < 2:
            raise ValueError(
                f"{self.name}: cardinality must be >= 2, got {self.cardinality}"
            )

    @property
    def is_numeric(self) -> bool:
        return False


Attribute = Union[NumericAttribute, CategoricalAttribute]


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes."""

    attributes: Tuple[Attribute, ...]

    def __init__(self, attributes: Sequence[Attribute]):
        object.__setattr__(self, "attributes", tuple(attributes))
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")

    @property
    def d(self) -> int:
        """Total number of attributes."""
        return len(self.attributes)

    @property
    def numeric(self) -> Tuple[NumericAttribute, ...]:
        return tuple(a for a in self.attributes if a.is_numeric)

    @property
    def categorical(self) -> Tuple[CategoricalAttribute, ...]:
        return tuple(a for a in self.attributes if not a.is_numeric)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise KeyError(f"no attribute named {name!r}")

    def index(self, name: str) -> int:
        """Position of an attribute within the schema order."""
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise KeyError(f"no attribute named {name!r}")

    def select(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only the named attributes, in order."""
        return Schema([self[name] for name in names])


@dataclass
class Dataset:
    """A schema plus one column array per attribute.

    Numeric columns are stored in their *native* domain; call
    :meth:`numeric_matrix` for the [-1, 1]-normalized view the LDP
    mechanisms require.  Categorical columns are integer-coded.
    """

    schema: Schema
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        missing = set(self.schema.names) - set(self.columns)
        if missing:
            raise ValueError(f"missing columns for attributes: {sorted(missing)}")
        lengths = {name: len(self.columns[name]) for name in self.schema.names}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        for attr in self.schema.attributes:
            col = np.asarray(self.columns[attr.name])
            if attr.is_numeric:
                self.columns[attr.name] = col.astype(float)
            else:
                if col.size and (col.min() < 0 or col.max() >= attr.cardinality):
                    raise ValueError(
                        f"{attr.name}: values outside [0, {attr.cardinality - 1}]"
                    )
                self.columns[attr.name] = col.astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of users (rows)."""
        return len(self.columns[self.schema.names[0]])

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    def numeric_matrix(self) -> np.ndarray:
        """(n, d_numeric) matrix normalized to [-1, 1], schema order."""
        cols = [
            normalize_to_unit(self.columns[a.name], a.low, a.high)
            for a in self.schema.numeric
        ]
        if not cols:
            return np.empty((self.n, 0))
        return np.column_stack(cols)

    def categorical_matrix(self) -> np.ndarray:
        """(n, d_categorical) integer matrix, schema order."""
        cols = [self.columns[a.name] for a in self.schema.categorical]
        if not cols:
            return np.empty((self.n, 0), dtype=np.int64)
        return np.column_stack(cols)

    # ------------------------------------------------------------------
    def true_numeric_means(self) -> Dict[str, float]:
        """Exact normalized means — the ground truth for Figs. 4-8."""
        matrix = self.numeric_matrix()
        return {
            a.name: float(matrix[:, i].mean())
            for i, a in enumerate(self.schema.numeric)
        }

    def true_categorical_frequencies(self) -> Dict[str, np.ndarray]:
        """Exact per-value frequencies for every categorical attribute."""
        return {
            a.name: true_frequencies(self.columns[a.name], a.cardinality)
            for a in self.schema.categorical
        }

    # ------------------------------------------------------------------
    def subset(self, indices) -> "Dataset":
        """Row subset (e.g. a cross-validation fold)."""
        indices = np.asarray(indices)
        return Dataset(
            schema=self.schema,
            columns={k: v[indices] for k, v in self.columns.items()},
        )

    def select_attributes(self, names: Sequence[str]) -> "Dataset":
        """Column subset, preserving the given order."""
        sub = self.schema.select(names)
        return Dataset(
            schema=sub, columns={name: self.columns[name] for name in names}
        )

    # ------------------------------------------------------------------
    def to_erm_features(self, dependent: str) -> Tuple[np.ndarray, np.ndarray]:
        """The Section VI-B design matrix.

        Numeric attributes (except the dependent one) are normalized to
        [-1, 1]; each categorical attribute with k values becomes k-1
        binary columns.  Returns (X, y) with y the normalized dependent
        numeric attribute.
        """
        dep_attr = self.schema[dependent]
        if not dep_attr.is_numeric:
            raise ValueError(f"dependent attribute {dependent!r} must be numeric")
        features: List[np.ndarray] = []
        for attr in self.schema.attributes:
            if attr.name == dependent:
                continue
            if attr.is_numeric:
                features.append(
                    normalize_to_unit(
                        self.columns[attr.name], attr.low, attr.high
                    ).reshape(-1, 1)
                )
            else:
                features.append(
                    dummy_encode(self.columns[attr.name], attr.cardinality)
                )
        x = np.hstack(features) if features else np.empty((self.n, 0))
        y = normalize_to_unit(
            self.columns[dependent], dep_attr.low, dep_attr.high
        )
        return x, y
