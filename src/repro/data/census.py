"""Synthetic census-like datasets standing in for the IPUMS BR/MX extracts.

The paper evaluates on two IPUMS census extracts (Brazil and Mexico, 4M
records each) that are not redistributable; this module generates
datasets with the same *shape*:

* ``make_br_like`` — 16 attributes: 6 numeric + 10 categorical (BR);
* ``make_mx_like`` — 19 attributes: 5 numeric + 14 categorical (MX);

and the properties the experiments actually exercise:

* a skewed, bounded ``total_income`` attribute (the ERM dependent
  variable in Section VI-B),
* numeric attributes with different scales and shapes (income is
  log-normal-ish, age roughly uniform, hours bimodal),
* categorical attributes with cardinalities from 2 to 16 and skewed
  marginals, and
* genuine statistical dependence between income and the other attributes
  so that linear/logistic regression and SVM have signal to learn.

Category marginals are derived deterministically from the attribute name
(via CRC32) so the population "looks the same" under any seed; only the
individuals drawn vary with the rng.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.utils.rng import RngLike, ensure_rng

#: Name of the dependent attribute used by the Section VI-B experiments.
INCOME = "total_income"

#: Public income domain (currency units); incomes are clipped here.
INCOME_RANGE = (0.0, 200_000.0)


def _marginal(name: str, k: int) -> np.ndarray:
    """A fixed, skewed probability vector for a categorical attribute.

    Deterministic in the attribute name, so the synthetic population's
    marginals are stable across seeds and runs.
    """
    seed = zlib.crc32(name.encode("utf-8"))
    gen = np.random.default_rng(seed)
    raw = gen.dirichlet(np.ones(k))
    return np.sort(raw)[::-1]


def _sample_categorical(
    name: str, k: int, n: int, gen: np.random.Generator
) -> np.ndarray:
    return gen.choice(k, size=n, p=_marginal(name, k))


#: Real censuses have dependent attributes; these children are sampled
#: conditionally on their parent so that 2-way marginals carry signal
#: (exercised by repro.multidim.marginals).
_DEPENDENT_ATTRIBUTES = {
    "employment_status": "occupation",
    "home_ownership": "marital_status",
}


def _conditional_matrix(child: str, parent: str, k_child: int,
                        k_parent: int) -> np.ndarray:
    """A fixed (k_parent, k_child) conditional distribution P[child|parent],
    deterministic in the attribute names."""
    rows = [
        _marginal(f"{child}|{parent}={v}", k_child) for v in range(k_parent)
    ]
    matrix = np.stack(rows)
    # Permute each row's order (the raw marginals are all sorted
    # descending, which would make rows nearly identical).
    for v in range(k_parent):
        seed = zlib.crc32(f"{child}|{parent}|perm{v}".encode("utf-8"))
        matrix[v] = matrix[v][np.random.default_rng(seed).permutation(k_child)]
    return matrix


def _sample_conditional(
    child_matrix: np.ndarray, parents: np.ndarray, gen: np.random.Generator
) -> np.ndarray:
    """Vectorized draw of child values given each user's parent value."""
    cumulative = child_matrix.cumsum(axis=1)
    u = gen.random(parents.shape[0])
    return (u[:, None] > cumulative[parents]).sum(axis=1)


def _effect_codes(name: str, k: int, scale: float = 1.0) -> np.ndarray:
    """Fixed per-category contributions to the latent income score."""
    seed = zlib.crc32((name + "/effect").encode("utf-8"))
    gen = np.random.default_rng(seed)
    effects = gen.normal(0.0, scale, size=k)
    return effects - effects.mean()


def _generate_population(
    n: int,
    categorical_spec: List[Tuple[str, int]],
    extra_numeric: List[str],
    gen: np.random.Generator,
) -> Dict[str, np.ndarray]:
    """Columns shared by the BR-like and MX-like generators."""
    columns: Dict[str, np.ndarray] = {}

    # Latent socioeconomic factor driving the correlations.
    skill = gen.normal(0.0, 1.0, size=n)

    columns["age"] = np.clip(
        gen.gamma(shape=6.0, scale=7.0, size=n) + 16.0, 16.0, 95.0
    )
    columns["education_years"] = np.clip(
        np.round(8.0 + 3.0 * skill + gen.normal(0.0, 2.0, size=n)), 0.0, 18.0
    )
    # Bimodal working hours: non-workers at ~0, workers around 40.
    works = gen.random(n) < 0.72
    columns["hours_worked"] = np.clip(
        np.where(works, gen.normal(41.0, 9.0, size=n), gen.exponential(2.0, n)),
        0.0,
        99.0,
    )

    for name in extra_numeric:
        if name == "n_children":
            columns[name] = np.clip(
                gen.poisson(1.6, size=n).astype(float), 0.0, 12.0
            )
        elif name == "rooms":
            columns[name] = np.clip(
                np.round(3.5 + 1.2 * skill + gen.normal(0.0, 1.5, size=n)),
                1.0,
                15.0,
            )
        else:
            raise ValueError(f"unknown extra numeric attribute {name!r}")

    cardinality = dict(categorical_spec)
    for name, k in categorical_spec:
        parent = _DEPENDENT_ATTRIBUTES.get(name)
        if parent is not None and parent in columns:
            matrix = _conditional_matrix(name, parent, k, cardinality[parent])
            columns[name] = _sample_conditional(matrix, columns[parent], gen)
        else:
            columns[name] = _sample_categorical(name, k, n, gen)

    # Latent income score: education, hours, age and a few categorical
    # attributes all contribute, plus idiosyncratic noise.
    score = (
        0.45 * (columns["education_years"] / 18.0)
        + 0.30 * (columns["hours_worked"] / 99.0)
        + 0.10 * ((columns["age"] - 16.0) / 79.0)
        + 0.25 * skill
    )
    for name, k in categorical_spec[:4]:  # first few attributes matter
        score = score + 0.12 * _effect_codes(name, k)[columns[name]]
    score = score + gen.normal(0.0, 0.18, size=n)

    # Log-normal-shaped incomes, clipped to the public domain.  The
    # resulting normalized values concentrate near the lower end of
    # [-1, 1] — the skew the paper's Fig. 4 datasets exhibit.
    income = 9_000.0 * np.exp(1.9 * score)
    columns[INCOME] = np.clip(income, *INCOME_RANGE)
    return columns


#: (name, cardinality) of BR-like categorical attributes (10 of them).
BR_CATEGORICAL: List[Tuple[str, int]] = [
    ("occupation", 10),
    ("marital_status", 5),
    ("religion", 6),
    ("race", 5),
    ("employment_status", 4),
    ("gender", 2),
    ("urban", 2),
    ("home_ownership", 3),
    ("literacy", 2),
    ("region", 5),
]

#: (name, cardinality) of MX-like categorical attributes (14 of them).
MX_CATEGORICAL: List[Tuple[str, int]] = [
    ("occupation", 12),
    ("state", 16),
    ("marital_status", 5),
    ("employment_status", 4),
    ("gender", 2),
    ("urban", 2),
    ("home_ownership", 3),
    ("religion", 4),
    ("indigenous", 2),
    ("literacy", 2),
    ("health_insurance", 3),
    ("internet_access", 2),
    ("vehicle", 2),
    ("floor_material", 3),
]


def _build(
    n: int,
    categorical_spec: List[Tuple[str, int]],
    extra_numeric: List[str],
    rng: RngLike,
) -> Dataset:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    gen = ensure_rng(rng)
    columns = _generate_population(n, categorical_spec, extra_numeric, gen)

    numeric_attrs = [
        NumericAttribute("age", 16.0, 95.0),
        NumericAttribute(INCOME, *INCOME_RANGE),
        NumericAttribute("hours_worked", 0.0, 99.0),
        NumericAttribute("education_years", 0.0, 18.0),
    ]
    for name in extra_numeric:
        high = 12.0 if name == "n_children" else 15.0
        low = 0.0 if name == "n_children" else 1.0
        numeric_attrs.append(NumericAttribute(name, low, high))

    attrs = list(numeric_attrs) + [
        CategoricalAttribute(name, k) for name, k in categorical_spec
    ]
    return Dataset(schema=Schema(attrs), columns=columns)


def make_br_like(n: int = 100_000, rng: RngLike = None) -> Dataset:
    """BR-like dataset: 16 attributes (6 numeric + 10 categorical)."""
    return _build(n, BR_CATEGORICAL, ["n_children", "rooms"], rng)


def make_mx_like(n: int = 100_000, rng: RngLike = None) -> Dataset:
    """MX-like dataset: 19 attributes (5 numeric + 14 categorical)."""
    return _build(n, MX_CATEGORICAL, ["rooms"], rng)
