"""Synthetic numeric workloads for the paper's Figs. 5 and 6.

* :func:`truncated_gaussian_matrix` — d attributes, each N(mu, sigma^2)
  with out-of-range draws discarded (the paper's Fig. 5 setup:
  sigma = 1/4, mu in {0, 1/3, 2/3, 1}).
* :func:`uniform_matrix` — Uniform[-1, 1] attributes (Fig. 6a).
* :func:`power_law_matrix` — density proportional to (x + 2)^{-10} on
  [-1, 1] (Fig. 6b), sampled by inverse-CDF.

Each has a ``*_dataset`` twin wrapping the matrix in a
:class:`~repro.data.schema.Dataset` with attributes already in [-1, 1].
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Dataset, NumericAttribute, Schema
from repro.utils.rng import RngLike, ensure_rng

#: The paper's Fig. 6(b) power-law exponent: pdf(x) ~ (x + 2)^{-10}.
POWER_LAW_EXPONENT = 10.0


def truncated_gaussian_matrix(
    n: int,
    d: int,
    mu: float,
    sigma: float = 0.25,
    rng: RngLike = None,
) -> np.ndarray:
    """(n, d) iid N(mu, sigma^2) samples truncated (by rejection) to [-1, 1]."""
    if n <= 0 or d <= 0:
        raise ValueError(f"n and d must be positive, got n={n}, d={d}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    gen = ensure_rng(rng)
    out = gen.normal(mu, sigma, size=(n, d))
    bad = (out < -1.0) | (out > 1.0)
    while np.any(bad):
        out[bad] = gen.normal(mu, sigma, size=int(bad.sum()))
        bad = (out < -1.0) | (out > 1.0)
    return out


def uniform_matrix(n: int, d: int, rng: RngLike = None) -> np.ndarray:
    """(n, d) iid Uniform[-1, 1] samples."""
    if n <= 0 or d <= 0:
        raise ValueError(f"n and d must be positive, got n={n}, d={d}")
    return ensure_rng(rng).uniform(-1.0, 1.0, size=(n, d))


def power_law_matrix(
    n: int,
    d: int,
    exponent: float = POWER_LAW_EXPONENT,
    rng: RngLike = None,
) -> np.ndarray:
    """(n, d) iid samples with pdf proportional to (x + 2)^{-exponent}.

    Inverse-CDF sampling: on [-1, 1] with shift 2, (x + 2) ranges over
    [1, 3].  For exponent a != 1, F(x) = (1 - (x+2)^{1-a}) / (1 - 3^{1-a}),
    so F^{-1}(u) = (1 - u (1 - 3^{1-a}))^{1/(1-a)} - 2.
    """
    if n <= 0 or d <= 0:
        raise ValueError(f"n and d must be positive, got n={n}, d={d}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    gen = ensure_rng(rng)
    u = gen.random((n, d))
    one_minus_a = 1.0 - exponent
    tail = 1.0 - 3.0**one_minus_a
    x = (1.0 - u * tail) ** (1.0 / one_minus_a) - 2.0
    return np.clip(x, -1.0, 1.0)


# ----------------------------------------------------------------------
# Dataset wrappers
# ----------------------------------------------------------------------


def _matrix_dataset(matrix: np.ndarray, prefix: str) -> Dataset:
    schema = Schema(
        [NumericAttribute(f"{prefix}{j}") for j in range(matrix.shape[1])]
    )
    columns = {f"{prefix}{j}": matrix[:, j] for j in range(matrix.shape[1])}
    return Dataset(schema=schema, columns=columns)


def truncated_gaussian_dataset(
    n: int, d: int, mu: float, sigma: float = 0.25, rng: RngLike = None
) -> Dataset:
    """Fig. 5 workload as a Dataset (attributes named g0..g{d-1})."""
    return _matrix_dataset(
        truncated_gaussian_matrix(n, d, mu, sigma, rng), "g"
    )


def uniform_dataset(n: int, d: int, rng: RngLike = None) -> Dataset:
    """Fig. 6(a) workload as a Dataset (attributes named u0..u{d-1})."""
    return _matrix_dataset(uniform_matrix(n, d, rng), "u")


def power_law_dataset(
    n: int, d: int, exponent: float = POWER_LAW_EXPONENT, rng: RngLike = None
) -> Dataset:
    """Fig. 6(b) workload as a Dataset (attributes named p0..p{d-1})."""
    return _matrix_dataset(power_law_matrix(n, d, exponent, rng), "p")
