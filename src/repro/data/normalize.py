"""Affine normalization between an attribute's native domain and [-1, 1].

Every numeric mechanism in the paper assumes inputs in [-1, 1]; real
attributes (age, income, ...) live elsewhere.  The user is assumed to
know the public domain bounds [low, high] (a standard assumption, cf.
Section III-B's discussion of the [-r, r] case).
"""

from __future__ import annotations

import numpy as np


def _check_bounds(low: float, high: float) -> tuple:
    low, high = float(low), float(high)
    if not low < high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    return low, high


def normalize_to_unit(values, low: float, high: float) -> np.ndarray:
    """Map [low, high] affinely onto [-1, 1], clipping boundary rounding."""
    low, high = _check_bounds(low, high)
    arr = np.asarray(values, dtype=float)
    if arr.size and (arr.min() < low or arr.max() > high):
        raise ValueError(
            f"values outside declared domain [{low}, {high}]: "
            f"observed [{arr.min()}, {arr.max()}]"
        )
    out = 2.0 * (arr - low) / (high - low) - 1.0
    return np.clip(out, -1.0, 1.0)


def denormalize_from_unit(values, low: float, high: float) -> np.ndarray:
    """Inverse of :func:`normalize_to_unit` (no clipping: estimates such
    as perturbed means may legitimately fall outside the domain)."""
    low, high = _check_bounds(low, high)
    arr = np.asarray(values, dtype=float)
    return (arr + 1.0) / 2.0 * (high - low) + low
