"""Data substrate: schemas, normalization and dataset generators."""

from repro.data.census import (
    BR_CATEGORICAL,
    INCOME,
    INCOME_RANGE,
    MX_CATEGORICAL,
    make_br_like,
    make_mx_like,
)
from repro.data.normalize import denormalize_from_unit, normalize_to_unit
from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.data.synthetic import (
    power_law_dataset,
    power_law_matrix,
    truncated_gaussian_dataset,
    truncated_gaussian_matrix,
    uniform_dataset,
    uniform_matrix,
)

__all__ = [
    "NumericAttribute",
    "CategoricalAttribute",
    "Schema",
    "Dataset",
    "normalize_to_unit",
    "denormalize_from_unit",
    "make_br_like",
    "make_mx_like",
    "INCOME",
    "INCOME_RANGE",
    "BR_CATEGORICAL",
    "MX_CATEGORICAL",
    "truncated_gaussian_matrix",
    "truncated_gaussian_dataset",
    "uniform_matrix",
    "uniform_dataset",
    "power_law_matrix",
    "power_law_dataset",
]
