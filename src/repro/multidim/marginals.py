"""Pairwise marginal (2-way contingency table) estimation under LDP.

The Section IV-C collector estimates 1-way marginals.  A natural and
heavily-used extension (cf. the paper's related work on marginal
release) is the *joint* distribution of attribute pairs: encode the pair
(A_i = u, A_j = v) as a single categorical value over the product domain
k_i x k_j and run any single-attribute frequency oracle on it.  With a
list of target pairs, each user samples one pair uniformly and spends
her whole budget on it — the same sampling-beats-splitting trade as
Algorithm 4.

The estimated tables support the downstream quantities analysts actually
want: conditional distributions, correlation surrogate (Cramer's V) and
mutual information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.validation import check_epsilon
from repro.data.schema import Dataset, Schema
from repro.frequency.oracle import get_oracle
from repro.frequency.postprocess import postprocess
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class MarginalTable:
    """An estimated 2-way marginal P[A_row = u, A_col = v]."""

    row_attribute: str
    col_attribute: str
    table: np.ndarray  # (k_row, k_col), a valid joint distribution

    def row_marginal(self) -> np.ndarray:
        """P[A_row = u], marginalizing the column attribute out."""
        return self.table.sum(axis=1)

    def col_marginal(self) -> np.ndarray:
        """P[A_col = v]."""
        return self.table.sum(axis=0)

    def conditional(self, given_row: int) -> np.ndarray:
        """P[A_col | A_row = given_row]; uniform if the row has no mass."""
        row = self.table[given_row]
        total = row.sum()
        if total <= 0.0:
            return np.full_like(row, 1.0 / row.shape[0])
        return row / total

    def mutual_information(self) -> float:
        """I(A_row; A_col) in nats, from the estimated joint."""
        joint = self.table
        rows = self.row_marginal()[:, None]
        cols = self.col_marginal()[None, :]
        mask = joint > 0.0
        ratio = np.where(mask, joint / np.clip(rows * cols, 1e-300, None), 1.0)
        return float(np.sum(np.where(mask, joint * np.log(ratio), 0.0)))

    def cramers_v(self) -> float:
        """Cramer's V association measure in [0, 1]."""
        joint = self.table
        expected = self.row_marginal()[:, None] * self.col_marginal()[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            chi2 = np.nansum(
                np.where(expected > 0, (joint - expected) ** 2 / expected, 0.0)
            )
        k = min(joint.shape) - 1
        if k <= 0:
            return 0.0
        return float(np.sqrt(max(chi2, 0.0) / k))


class PairwiseMarginalCollector:
    """Estimate 2-way marginals of categorical attribute pairs under LDP.

    Parameters
    ----------
    schema:
        Attribute schema; every requested pair must name categorical
        attributes.
    epsilon:
        Per-user budget (spent on the user's single sampled pair).
    pairs:
        Attribute-name pairs to estimate.  Defaults to all categorical
        pairs in schema order.
    oracle:
        Frequency oracle run over each product domain.
    postprocess_method:
        Simplex projection applied to each estimated table.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        pairs: Sequence[Tuple[str, str]] = None,
        oracle: str = "oue",
        postprocess_method: str = "norm-sub",
    ):
        self.schema = schema
        self.epsilon = check_epsilon(epsilon)
        if pairs is None:
            names = [a.name for a in schema.categorical]
            pairs = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        if not pairs:
            raise ValueError("need at least one attribute pair")
        self.pairs: List[Tuple[str, str]] = []
        self.oracles = {}
        for left, right in pairs:
            attr_left = schema[left]
            attr_right = schema[right]
            if attr_left.is_numeric or attr_right.is_numeric:
                raise ValueError(
                    f"pair ({left}, {right}) must be categorical; "
                    "bucketize numeric attributes first (LDPHistogram)"
                )
            product = attr_left.cardinality * attr_right.cardinality
            self.pairs.append((left, right))
            self.oracles[(left, right)] = get_oracle(
                oracle, self.epsilon, product
            )
        self.oracle_name = oracle
        self.postprocess_method = postprocess_method

    # ------------------------------------------------------------------
    def _encode(self, pair: Tuple[str, str], dataset: Dataset,
                users: np.ndarray) -> np.ndarray:
        left, right = pair
        k_right = self.schema[right].cardinality
        return (
            dataset.columns[left][users] * k_right
            + dataset.columns[right][users]
        )

    def collect(
        self, dataset: Dataset, rng: RngLike = None
    ) -> Dict[Tuple[str, str], MarginalTable]:
        """One pass: sample a pair per user, perturb, estimate all tables."""
        if dataset.schema.names != self.schema.names:
            raise ValueError("dataset schema does not match collector schema")
        gen = ensure_rng(rng)
        n = dataset.n
        assignment = gen.integers(0, len(self.pairs), size=n)
        scale = float(len(self.pairs))

        tables: Dict[Tuple[str, str], MarginalTable] = {}
        for index, pair in enumerate(self.pairs):
            users = np.nonzero(assignment == index)[0]
            left, right = pair
            k_left = self.schema[left].cardinality
            k_right = self.schema[right].cardinality
            oracle = self.oracles[pair]
            if users.size == 0:
                raw = np.zeros(k_left * k_right)
            else:
                reports = oracle.privatize(
                    self._encode(pair, dataset, users), gen
                )
                # Scale the per-pair estimate back to the population:
                # users reporting this pair are a 1/|pairs| sample.
                raw = (
                    scale
                    * oracle.debiased_counts(reports)
                    / n
                )
            projected = postprocess(raw, self.postprocess_method)
            tables[pair] = MarginalTable(
                row_attribute=left,
                col_attribute=right,
                table=projected.reshape(k_left, k_right),
            )
        return tables


def true_marginal_table(
    dataset: Dataset, left: str, right: str
) -> MarginalTable:
    """Exact 2-way marginal of a dataset (ground truth for tests)."""
    attr_left = dataset.schema[left]
    attr_right = dataset.schema[right]
    if attr_left.is_numeric or attr_right.is_numeric:
        raise ValueError("both attributes must be categorical")
    joint = np.zeros((attr_left.cardinality, attr_right.cardinality))
    np.add.at(
        joint,
        (dataset.columns[left], dataset.columns[right]),
        1.0,
    )
    return MarginalTable(
        row_attribute=left,
        col_attribute=right,
        table=joint / dataset.n,
    )
