"""Estimate containers and accuracy metrics for multidimensional collection.

The paper's Section VI-A reports two MSE numbers per configuration: the
MSE of estimated means over the numeric attributes, and the MSE of
estimated value frequencies over all (categorical attribute, value)
pairs.  :class:`MixedEstimates` carries both estimate families and
computes those metrics against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class MixedEstimates:
    """Mean estimates for numeric attributes + frequency tables for
    categorical attributes."""

    means: Dict[str, float] = field(default_factory=dict)
    frequencies: Dict[str, np.ndarray] = field(default_factory=dict)

    def mean_mse(self, truth: Dict[str, float]) -> float:
        """MSE over numeric attribute means vs ground truth."""
        if not self.means:
            raise ValueError("no numeric mean estimates present")
        missing = set(self.means) - set(truth)
        if missing:
            raise KeyError(f"truth missing attributes: {sorted(missing)}")
        errors = [
            (self.means[name] - truth[name]) ** 2 for name in self.means
        ]
        return float(np.mean(errors))

    def frequency_mse(self, truth: Dict[str, np.ndarray]) -> float:
        """MSE over all (categorical attribute, value) frequency cells."""
        if not self.frequencies:
            raise ValueError("no frequency estimates present")
        cells = []
        for name, est in self.frequencies.items():
            if name not in truth:
                raise KeyError(f"truth missing attribute {name!r}")
            true_vec = np.asarray(truth[name], dtype=float)
            est = np.asarray(est, dtype=float)
            if est.shape != true_vec.shape:
                raise ValueError(
                    f"{name}: estimate shape {est.shape} vs truth "
                    f"{true_vec.shape}"
                )
            cells.append((est - true_vec) ** 2)
        return float(np.mean(np.concatenate(cells)))

    def max_mean_error(self, truth: Dict[str, float]) -> float:
        """max_j |Z[A_j] - X[A_j]| — the Lemma 5 quantity."""
        if not self.means:
            raise ValueError("no numeric mean estimates present")
        return float(
            max(abs(self.means[name] - truth[name]) for name in self.means)
        )
