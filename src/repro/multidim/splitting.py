"""The Section VI-A "best-effort" composition baseline.

No pre-existing solution handles mixed numeric + categorical tuples, so
the paper compares against the natural composition-based combination:
with d = d_n + d_c attributes, allocate eps * d_n / d of the budget to
the numeric block and eps * d_c / d to the categorical block, then

* numeric block: either Duchi et al.'s multidimensional Algorithm 3 on
  the whole block (budget eps d_n / d), or an independent 1-D mechanism
  (Laplace / SCDF / Staircase / Duchi 1-D) per attribute at eps/d each;
* categorical block: an independent frequency oracle (OUE) per attribute
  at eps/d each.

By the composition theorem the total satisfies eps-LDP.  Every user
reports *every* attribute — there is no sampling, which is exactly why
this baseline's error grows super-linearly with d.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.duchi import DuchiMultidimMechanism
from repro.core.mechanism import get_mechanism
from repro.core.validation import check_epsilon
from repro.data.schema import Dataset, Schema
from repro.frequency.oracle import get_oracle
from repro.multidim.aggregator import MixedEstimates
from repro.utils.rng import RngLike, ensure_rng


class SplitCompositionBaseline:
    """Budget-splitting baseline over a mixed schema.

    Parameters
    ----------
    schema:
        Attribute schema.
    epsilon:
        Total budget per user.
    numeric_method:
        "duchi" applies Algorithm 3 jointly to the numeric block; any
        registered 1-D mechanism name ("laplace", "scdf", "staircase",
        "pm", "hm") is applied per-attribute at eps/d.
    oracle:
        Frequency oracle name, applied per categorical attribute at eps/d.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        numeric_method: str = "laplace",
        oracle: str = "oue",
    ):
        self.schema = schema
        self.epsilon = check_epsilon(epsilon)
        self.numeric_method = numeric_method
        self.oracle_name = oracle
        d = schema.d
        d_num = len(schema.numeric)
        self.per_attribute_budget = self.epsilon / d
        self.numeric_budget = self.epsilon * d_num / d if d_num else 0.0

        if d_num and numeric_method == "duchi":
            self._duchi_md: Optional[DuchiMultidimMechanism] = (
                DuchiMultidimMechanism(self.numeric_budget, d_num)
            )
            self._mechanism = None
        elif d_num:
            self._duchi_md = None
            self._mechanism = get_mechanism(
                numeric_method, self.per_attribute_budget
            )
        else:
            self._duchi_md = None
            self._mechanism = None

        self.oracles = {
            a.name: get_oracle(oracle, self.per_attribute_budget, a.cardinality)
            for a in schema.categorical
        }

    # ------------------------------------------------------------------
    def collect(self, dataset: Dataset, rng: RngLike = None) -> MixedEstimates:
        """Perturb every attribute of every user and aggregate."""
        if dataset.schema.names != self.schema.names:
            raise ValueError("dataset schema does not match baseline schema")
        gen = ensure_rng(rng)

        means: Dict[str, float] = {}
        numeric_attrs = self.schema.numeric
        if numeric_attrs:
            matrix = dataset.numeric_matrix()
            if self._duchi_md is not None:
                reports = self._duchi_md.privatize(matrix, gen)
            else:
                reports = np.column_stack(
                    [
                        self._mechanism.privatize(matrix[:, i], gen)
                        for i in range(matrix.shape[1])
                    ]
                )
            col_means = reports.mean(axis=0)
            means = {
                a.name: float(col_means[i])
                for i, a in enumerate(numeric_attrs)
            }

        frequencies: Dict[str, np.ndarray] = {}
        cat_matrix = dataset.categorical_matrix()
        for i, attr in enumerate(self.schema.categorical):
            oracle = self.oracles[attr.name]
            reports = oracle.privatize(cat_matrix[:, i], gen)
            frequencies[attr.name] = oracle.estimate_frequencies(reports)

        return MixedEstimates(means=means, frequencies=frequencies)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SplitCompositionBaseline(d={self.schema.d}, "
            f"epsilon={self.epsilon!r}, numeric={self.numeric_method!r}, "
            f"oracle={self.oracle_name!r})"
        )
