"""Streaming (incremental) aggregation of LDP reports.

Real collectors never see all n users at once: reports arrive in batches
over hours or days.  These aggregators consume report batches
incrementally with O(d) state — no report is retained — and can produce
the current unbiased estimate at any point.

They compose with the same collectors as the batch path:

    collector = MixedMultidimCollector(schema, epsilon)
    stream = StreamingMixedAggregator(collector)
    for batch in arriving_user_batches:
        stream.update(collector.privatize(batch, rng))
    estimates = stream.estimates()
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.multidim.aggregator import MixedEstimates
from repro.multidim.collector import MixedMultidimCollector, MixedReports


class StreamingMeanAggregator:
    """Running unbiased mean of numeric reports (Algorithm 4 outputs).

    State: per-attribute running sums and the user count.
    """

    def __init__(self, d: int):
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self._sums = np.zeros(self.d)
        self._count = 0

    def update(self, reports) -> "StreamingMeanAggregator":
        """Fold in an (m, d) batch of perturbed submissions."""
        arr = np.asarray(reports, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.d:
            raise ValueError(
                f"batch must be (m, {self.d}), got shape {arr.shape}"
            )
        self._sums += arr.sum(axis=0)
        self._count += arr.shape[0]
        return self

    @property
    def count(self) -> int:
        """Users folded in so far."""
        return self._count

    def estimates(self) -> np.ndarray:
        """Current per-attribute mean estimates."""
        if self._count == 0:
            raise ValueError("no reports received yet")
        return self._sums / self._count

    def merge(self, other: "StreamingMeanAggregator") -> "StreamingMeanAggregator":
        """Combine two partial aggregations (e.g. from parallel shards)."""
        if other.d != self.d:
            raise ValueError("cannot merge aggregators of different d")
        self._sums += other._sums
        self._count += other._count
        return self


class StreamingFrequencyAggregator:
    """Running debiased support counts for one categorical attribute.

    Works with any registered oracle; stores only the oracle's support
    counts (length k) plus the report count.
    """

    def __init__(self, oracle):
        self.oracle = oracle
        self._support = np.zeros(oracle.k)
        self._count = 0

    def update(self, reports) -> "StreamingFrequencyAggregator":
        """Fold in a batch of oracle reports."""
        self._support += self.oracle.support_counts(reports)
        self._count += self.oracle._n_reports(reports)
        return self

    @property
    def count(self) -> int:
        return self._count

    def debiased_counts(self) -> np.ndarray:
        """Sum of unbiased per-report indicators, per value."""
        p, q = self.oracle.support_probabilities
        return (self._support - self._count * q) / (p - q)

    def estimates(self) -> np.ndarray:
        """Current frequency estimates over the reporting users."""
        if self._count == 0:
            raise ValueError("no reports received yet")
        return self.debiased_counts() / self._count

    def merge(
        self, other: "StreamingFrequencyAggregator"
    ) -> "StreamingFrequencyAggregator":
        if other.oracle.k != self.oracle.k:
            raise ValueError("cannot merge aggregators of different domains")
        self._support += other._support
        self._count += other._count
        return self


class StreamingMixedAggregator:
    """Incremental version of MixedMultidimCollector.aggregate().

    Consumes MixedReports batches; produces the same MixedEstimates as
    the one-shot path (same debiasing, same d/k scaling).
    """

    def __init__(self, collector: MixedMultidimCollector):
        self.collector = collector
        self._numeric = StreamingMeanAggregator(
            max(len(collector.schema.numeric), 1)
        )
        self._has_numeric = bool(collector.schema.numeric)
        self._frequency: Dict[str, StreamingFrequencyAggregator] = {
            a.name: StreamingFrequencyAggregator(collector.oracles[a.name])
            for a in collector.schema.categorical
        }
        self._users = 0

    def update(self, reports: MixedReports) -> "StreamingMixedAggregator":
        """Fold in one privatized batch."""
        if self._has_numeric:
            self._numeric.update(reports.numeric)
        for name, oracle_reports in reports.categorical.items():
            self._frequency[name].update(oracle_reports)
        self._users += reports.n
        return self

    @property
    def users(self) -> int:
        return self._users

    def estimates(self) -> MixedEstimates:
        """Current unbiased estimates over all users seen so far."""
        if self._users == 0:
            raise ValueError("no reports received yet")
        means = {}
        if self._has_numeric:
            values = self._numeric._sums / self._users
            means = {
                a.name: float(values[i])
                for i, a in enumerate(self.collector.schema.numeric)
            }
        scale = self.collector.d / self.collector.k
        frequencies = {
            name: scale * agg.debiased_counts() / self._users
            for name, agg in self._frequency.items()
        }
        return MixedEstimates(means=means, frequencies=frequencies)
