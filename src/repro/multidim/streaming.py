"""Streaming (incremental) aggregation of LDP reports.

Real collectors never see all n users at once: reports arrive in batches
over hours or days.  These aggregators consume report batches
incrementally with O(d) state — no report is retained — and can produce
the current unbiased estimate at any point.

Since v1.1 they are thin aliases over the canonical mergeable server
state in :mod:`repro.protocol.accumulators` (``absorb`` / ``merge`` /
``estimate``), kept for backward compatibility under their original
``update`` / ``estimates`` names.  New code should obtain accumulators
from :meth:`repro.protocol.Protocol.server` instead.

They compose with the same collectors as the batch path:

    collector = MixedMultidimCollector(schema, epsilon)
    stream = StreamingMixedAggregator(collector)
    for batch in arriving_user_batches:
        stream.update(collector.privatize(batch, rng))
    estimates = stream.estimates()
"""

from __future__ import annotations

import numpy as np

from repro.multidim.aggregator import MixedEstimates
from repro.multidim.collector import MixedMultidimCollector, MixedReports
from repro.protocol.accumulators import (
    FrequencyAccumulator,
    MixedAccumulator,
    MultidimMeanAccumulator,
)


class StreamingMeanAggregator(MultidimMeanAccumulator):
    """Running unbiased mean of numeric reports (Algorithm 4 outputs).

    Legacy alias of
    :class:`repro.protocol.accumulators.MultidimMeanAccumulator`;
    ``update``/``estimates`` are the original method names.
    """

    def update(self, reports) -> "StreamingMeanAggregator":
        """Fold in an (m, d) batch of perturbed submissions."""
        self.absorb(reports)
        return self

    def estimates(self) -> np.ndarray:
        """Current per-attribute mean estimates."""
        return self.estimate()


class StreamingFrequencyAggregator(FrequencyAccumulator):
    """Running debiased support counts for one categorical attribute.

    Legacy alias of
    :class:`repro.protocol.accumulators.FrequencyAccumulator`;
    ``update``/``estimates`` are the original method names.
    """

    def update(self, reports) -> "StreamingFrequencyAggregator":
        """Fold in a batch of oracle reports."""
        self.absorb(reports)
        return self

    def estimates(self) -> np.ndarray:
        """Current frequency estimates over the reporting users."""
        return self.estimate()


class StreamingMixedAggregator(MixedAccumulator):
    """Incremental version of MixedMultidimCollector.aggregate().

    Legacy alias of
    :class:`repro.protocol.accumulators.MixedAccumulator`, constructed
    from a collector; consumes :class:`MixedReports` batches and
    produces the same :class:`MixedEstimates` as the one-shot path.
    """

    def __init__(self, collector: MixedMultidimCollector):
        super().__init__(
            schema=collector.schema,
            oracles=collector.oracles,
            d=collector.d,
            k=collector.k,
        )
        self.collector = collector

    def update(self, reports: MixedReports) -> "StreamingMixedAggregator":
        """Fold in one privatized batch."""
        self.absorb(reports)
        return self

    @property
    def users(self) -> int:
        """Users folded in so far."""
        return self.count

    def estimates(self) -> MixedEstimates:
        """Current unbiased estimates over all users seen so far."""
        return self.estimate()
