"""The paper's multidimensional collectors (Algorithm 4 and Section IV-C).

Two collectors are provided:

* :class:`MultidimNumericCollector` — Algorithm 4 verbatim: each user
  samples k = max(1, min(d, floor(eps/2.5))) of her d numeric attributes,
  perturbs each with PM or HM at budget eps/k, scales by d/k and submits;
  unsampled entries are zero.  The aggregator's column average is an
  unbiased mean estimate per attribute.

* :class:`MixedMultidimCollector` — the Section IV-C extension to tuples
  mixing numeric and categorical attributes: sampled numeric attributes
  go through PM/HM at eps/k, sampled categorical attributes through any
  single-attribute frequency oracle (OUE by default) at eps/k; frequency
  estimates are scaled by d/k.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.mechanism import NumericMechanism, get_mechanism
from repro.core.validation import check_dimension, check_epsilon, check_matrix
from repro.data.schema import Dataset, Schema
from repro.frequency.oracle import FrequencyOracle, get_oracle
from repro.multidim.aggregator import MixedEstimates
from repro.theory.constants import optimal_k
from repro.theory.variance import hm_md_variance, pm_md_variance
from repro.utils.rng import RngLike, ensure_rng


def sample_attribute_matrix(
    n: int, d: int, k: int, rng: RngLike = None
) -> np.ndarray:
    """(n, k) matrix: each row is k distinct attribute indices from [0, d).

    Uniform sampling without replacement per user (Algorithm 4, line 3),
    vectorized via per-row random ranking.  ``n = 0`` is allowed and
    yields an empty (0, k) matrix without consuming the rng, so an
    empty batch flows through the protocol layer as a uniform no-op.
    """
    if not 1 <= k <= d:
        raise ValueError(f"need 1 <= k <= d, got k={k}, d={d}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return np.empty((0, k), dtype=np.int64)
    gen = ensure_rng(rng)
    return np.argsort(gen.random((n, d)), axis=1)[:, :k]


def sample_and_perturb(
    mechanism: NumericMechanism,
    tuples,
    d: int,
    k: int,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 4's vectorized client-side hot path.

    Samples k of d attributes per user and perturbs the sampled entries
    with ``mechanism`` in one vectorized call.  Returns ``(sampled,
    noisy)``: the (n, k) index matrix and the matching (n, k) perturbed
    (unscaled) values.  Shared by the legacy dense ``privatize`` and the
    protocol layer's compact encoder so both consume the rng stream
    identically.
    """
    gen = ensure_rng(rng)
    t = check_matrix(tuples, d)
    n = t.shape[0]
    sampled = sample_attribute_matrix(n, d, k, gen)
    rows = np.repeat(np.arange(n), k)
    noisy = mechanism.privatize(t[rows, sampled.ravel()], gen)
    return sampled, noisy.reshape(n, k)


class MultidimNumericCollector:
    """Algorithm 4: k-sampled multidimensional numeric collection.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the whole d-dimensional tuple.
    d:
        Number of numeric attributes.
    mechanism:
        Registered 1-D mechanism name used per sampled attribute
        ("pm" or "hm" per the paper; any registered name is accepted
        for ablations).
    k:
        Override of the number of sampled attributes (defaults to
        Eq. 12's optimum).
    """

    def __init__(
        self,
        epsilon: float,
        d: int,
        mechanism: str = "hm",
        k: Optional[int] = None,
    ):
        self.epsilon = check_epsilon(epsilon)
        self.d = check_dimension(d)
        if k is None:
            k = optimal_k(self.epsilon, self.d)
        if not 1 <= k <= self.d:
            raise ValueError(f"need 1 <= k <= d, got k={k}, d={self.d}")
        self.k = int(k)
        self.mechanism_name = mechanism
        self.mechanism: NumericMechanism = get_mechanism(
            mechanism, self.epsilon / self.k
        )

    # ------------------------------------------------------------------
    def privatize(self, tuples, rng: RngLike = None) -> np.ndarray:
        """Perturb an (n, d) matrix of tuples in [-1, 1]^d.

        Returns the (n, d) matrix of submissions: entry (i, j) is
        (d/k) * x_ij for sampled attributes and 0 otherwise.
        """
        sampled, noisy = sample_and_perturb(
            self.mechanism, tuples, self.d, self.k, rng
        )
        n = sampled.shape[0]
        out = np.zeros((n, self.d))
        out[np.repeat(np.arange(n), self.k), sampled.ravel()] = (
            (self.d / self.k) * noisy
        ).ravel()
        return out

    def estimate_means(self, reports) -> np.ndarray:
        """Unbiased per-attribute means: plain column averages."""
        arr = np.asarray(reports, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != self.d or arr.shape[0] == 0:
            raise ValueError(
                f"reports must be a non-empty (n, {self.d}) matrix"
            )
        return arr.mean(axis=0)

    def collect(self, tuples, rng: RngLike = None) -> np.ndarray:
        """privatize + estimate_means in one call.

        .. deprecated:: 1.1
            Monolithic client+server shortcut.  Use the protocol API
            instead: ``repro.protocol.Protocol.multidim(epsilon, d=d,
            mechanism=...)`` with ``client().encode_batch`` and
            ``server().absorb(...).estimate()``.
        """
        warnings.warn(
            "MultidimNumericCollector.collect() is deprecated; use "
            "repro.protocol.Protocol.multidim(...) (client/server API) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.protocol.accumulators import MultidimMeanAccumulator

        return (
            MultidimMeanAccumulator(self.d)
            .absorb(self.privatize(tuples, rng))
            .estimate()
        )

    # ------------------------------------------------------------------
    def per_coordinate_variance(self, t) -> np.ndarray:
        """Closed-form Var[t*[j] | t[j]] (Eq. 14 for PM, Eq. 15 for HM)."""
        if self.mechanism_name == "pm":
            return pm_md_variance(t, self.epsilon, self.d, self.k)
        if self.mechanism_name == "hm":
            return hm_md_variance(t, self.epsilon, self.d, self.k)
        # Generic first-principles fallback for ablation mechanisms:
        # Var = (d/k) (Var_mech(t; eps/k) + t^2) - t^2.
        t = np.asarray(t, dtype=float)
        ratio = self.d / self.k
        return ratio * (self.mechanism.variance(t) + t**2) - t**2

    def worst_case_variance(self) -> float:
        """Max of :meth:`per_coordinate_variance` over t in [-1, 1].

        Evaluated on a dense grid: the generic fallback branch inherits
        the wrapped mechanism's variance shape, which need not be
        monotone in |t| for ablation mechanisms.
        """
        from repro.core.mechanism import variance_grid

        return float(np.max(self.per_coordinate_variance(variance_grid())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultidimNumericCollector(epsilon={self.epsilon!r}, d={self.d}, "
            f"mechanism={self.mechanism_name!r}, k={self.k})"
        )


# ----------------------------------------------------------------------
# Mixed numeric + categorical collection (Section IV-C)
# ----------------------------------------------------------------------


@dataclass
class MixedReports:
    """Perturbed submissions from n users over a mixed schema.

    ``numeric`` is the Algorithm 4 style (n, d_numeric) matrix (zeros at
    unsampled entries, scaled by d/k).  ``categorical`` maps attribute
    name to the oracle reports of the users who sampled that attribute.
    """

    n: int
    numeric: np.ndarray
    categorical: Dict[str, object]

    # ------------------------------------------------------------------
    # Columnar form (v2 wire format; see repro.protocol.reports)
    # ------------------------------------------------------------------
    def to_columns(self) -> Dict[str, np.ndarray]:
        """Canonical flat columnar form.

        The numeric block is one column; every categorical attribute's
        sub-reports flatten under ``cat.<name>.<column>`` (OLH reports
        contribute their seeds/buckets columns, array-shaped oracle
        reports a single ``array`` column).  Attribute names may not
        contain ``.`` — the separator is load-bearing.
        """
        columns: Dict[str, np.ndarray] = {
            "numeric": np.asarray(self.numeric)
        }
        for name, sub in self.categorical.items():
            if "." in name:
                raise ValueError(
                    f"categorical attribute {name!r} contains '.', "
                    f"which the columnar flattening reserves"
                )
            if hasattr(sub, "to_columns"):
                for key, arr in sub.to_columns().items():
                    columns[f"cat.{name}.{key}"] = np.asarray(arr)
            else:
                columns[f"cat.{name}.array"] = np.asarray(sub)
        return columns

    @classmethod
    def from_columns(
        cls,
        columns: Dict[str, np.ndarray],
        *,
        n: int,
        categorical: Dict[str, str],
    ) -> "MixedReports":
        """Rebuild from :meth:`to_columns` output (bitwise).

        ``categorical`` maps attribute name to its sub-container kind
        (``"olh"`` or ``"array"``), the metadata the columnar header
        carries alongside the flat columns.
        """
        from repro.frequency.olh import OLHReports

        rebuilt: Dict[str, object] = {}
        for name, kind in categorical.items():
            head = f"cat.{name}."
            sub = {
                key[len(head):]: arr
                for key, arr in columns.items()
                if key.startswith(head)
            }
            if kind == "olh":
                rebuilt[name] = OLHReports.from_columns(sub)
            elif kind == "array":
                rebuilt[name] = np.asarray(sub["array"])
            else:
                raise ValueError(
                    f"unknown categorical sub-kind {kind!r} for "
                    f"attribute {name!r}"
                )
        return cls(
            n=int(n),
            numeric=np.asarray(columns["numeric"]),
            categorical=rebuilt,
        )


class MixedMultidimCollector:
    """Section IV-C: collect tuples with numeric + categorical attributes.

    Parameters
    ----------
    schema:
        Attribute schema (order defines the sampling universe of size d).
    epsilon:
        Total budget per user for the whole tuple.
    numeric_mechanism:
        1-D mechanism name for numeric attributes ("pm" or "hm").
    oracle:
        Frequency oracle name for categorical attributes ("oue" is the
        paper's choice; "grr"/"sue"/"olh" for ablations).
    k:
        Override of Eq. 12's sampling parameter.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        numeric_mechanism: str = "hm",
        oracle: str = "oue",
        k: Optional[int] = None,
    ):
        self.schema = schema
        self.epsilon = check_epsilon(epsilon)
        self.d = schema.d
        if k is None:
            k = optimal_k(self.epsilon, self.d)
        if not 1 <= k <= self.d:
            raise ValueError(f"need 1 <= k <= d, got k={k}, d={self.d}")
        self.k = int(k)
        self.numeric_mechanism_name = numeric_mechanism
        self.oracle_name = oracle
        budget = self.epsilon / self.k
        self.numeric_mechanism: NumericMechanism = get_mechanism(
            numeric_mechanism, budget
        )
        self.oracles: Dict[str, FrequencyOracle] = {
            a.name: get_oracle(oracle, budget, a.cardinality)
            for a in schema.categorical
        }
        # Map schema position -> (is_numeric, position within its block).
        self._numeric_pos = {}
        self._categorical_name = {}
        num_i = 0
        for j, attr in enumerate(schema.attributes):
            if attr.is_numeric:
                self._numeric_pos[j] = num_i
                num_i += 1
            else:
                self._categorical_name[j] = attr.name

    # ------------------------------------------------------------------
    def privatize(self, dataset: Dataset, rng: RngLike = None) -> MixedReports:
        """Perturb every user's tuple; returns the raw submissions."""
        if dataset.schema.names != self.schema.names:
            raise ValueError("dataset schema does not match collector schema")
        gen = ensure_rng(rng)
        n = dataset.n
        numeric_matrix = dataset.numeric_matrix()
        categorical_matrix = dataset.categorical_matrix()
        cat_col = {
            a.name: i for i, a in enumerate(self.schema.categorical)
        }

        sampled = sample_attribute_matrix(n, self.d, self.k, gen)
        hit = np.zeros((n, self.d), dtype=bool)
        hit[np.repeat(np.arange(n), self.k), sampled.ravel()] = True

        numeric_out = np.zeros((n, len(self.schema.numeric)))
        categorical_out: Dict[str, object] = {}
        scale = self.d / self.k

        for j in range(self.d):
            users = np.nonzero(hit[:, j])[0]
            if users.size == 0:
                continue
            if j in self._numeric_pos:
                col = self._numeric_pos[j]
                noisy = self.numeric_mechanism.privatize(
                    numeric_matrix[users, col], gen
                )
                numeric_out[users, col] = scale * noisy
            else:
                name = self._categorical_name[j]
                truth = categorical_matrix[users, cat_col[name]]
                categorical_out[name] = self.oracles[name].privatize(
                    truth, gen
                )
        return MixedReports(
            n=n, numeric=numeric_out, categorical=categorical_out
        )

    # ------------------------------------------------------------------
    def aggregate(self, reports: MixedReports) -> MixedEstimates:
        """Unbiased means and frequency tables from the submissions.

        Thin wrapper over the mergeable protocol-layer state; see
        :class:`repro.protocol.accumulators.MixedAccumulator` for the
        sharded / streaming version.
        """
        from repro.protocol.accumulators import MixedAccumulator

        return MixedAccumulator.for_collector(self).absorb(reports).estimate()

    def collect(self, dataset: Dataset, rng: RngLike = None) -> MixedEstimates:
        """privatize + aggregate in one call.

        .. deprecated:: 1.1
            Monolithic client+server shortcut.  Use
            ``repro.protocol.Protocol.multidim(epsilon, schema=schema)``
            with ``client().encode_batch`` and
            ``server().absorb(...).estimate()`` instead.
        """
        warnings.warn(
            "MixedMultidimCollector.collect() is deprecated; use "
            "repro.protocol.Protocol.multidim(..., schema=...) "
            "(client/server API) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.aggregate(self.privatize(dataset, rng))

    # ------------------------------------------------------------------
    def per_coordinate_variance(self, t) -> np.ndarray:
        """Closed-form Var[t*[j] | t[j]] for the *numeric* attributes
        (Eq. 14 for PM, Eq. 15 for HM, first principles otherwise)."""
        if self.numeric_mechanism_name == "pm":
            return pm_md_variance(t, self.epsilon, self.d, self.k)
        if self.numeric_mechanism_name == "hm":
            return hm_md_variance(t, self.epsilon, self.d, self.k)
        t = np.asarray(t, dtype=float)
        ratio = self.d / self.k
        return ratio * (self.numeric_mechanism.variance(t) + t**2) - t**2

    def worst_case_variance(self) -> float:
        """Worst-case per-coordinate variance of a numeric mean report.

        Dense-grid evaluation, for the same reason as
        :meth:`MultidimNumericCollector.worst_case_variance`.
        """
        from repro.core.mechanism import variance_grid

        return float(np.max(self.per_coordinate_variance(variance_grid())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MixedMultidimCollector(d={self.d}, epsilon={self.epsilon!r}, "
            f"numeric={self.numeric_mechanism_name!r}, "
            f"oracle={self.oracle_name!r}, k={self.k})"
        )
