"""Multidimensional LDP collection (the paper's Section IV)."""

from repro.multidim.aggregator import MixedEstimates
from repro.multidim.collector import (
    MixedMultidimCollector,
    MixedReports,
    MultidimNumericCollector,
    sample_attribute_matrix,
)
from repro.multidim.marginals import (
    MarginalTable,
    PairwiseMarginalCollector,
    true_marginal_table,
)
from repro.multidim.splitting import SplitCompositionBaseline
from repro.multidim.streaming import (
    StreamingFrequencyAggregator,
    StreamingMeanAggregator,
    StreamingMixedAggregator,
)

__all__ = [
    "MixedEstimates",
    "MixedMultidimCollector",
    "MixedReports",
    "MultidimNumericCollector",
    "sample_attribute_matrix",
    "SplitCompositionBaseline",
    "StreamingMeanAggregator",
    "StreamingFrequencyAggregator",
    "StreamingMixedAggregator",
    "PairwiseMarginalCollector",
    "MarginalTable",
    "true_marginal_table",
]
