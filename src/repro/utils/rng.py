"""Random number generator plumbing.

Every public API in this package accepts an ``rng`` argument that may be

* ``None`` — a fresh, OS-seeded :class:`numpy.random.Generator`,
* an ``int`` — a deterministic seed, or
* an existing :class:`numpy.random.Generator` — used as-is.

Centralizing the coercion here keeps each mechanism's signature small and
makes every experiment reproducible by threading one seed through it.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an integer seed, or an existing generator.

    Returns
    -------
    numpy.random.Generator
        A generator ready for sampling.  If a generator was passed in, the
        very same object is returned so that state advances are visible to
        the caller.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or numpy.random.Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Useful for running repeated trials of an experiment where each trial
    must be statistically independent yet the whole sweep reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
