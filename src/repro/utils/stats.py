"""Small statistical helpers shared by aggregators and experiments."""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np


def empirical_mse(estimates: np.ndarray, truth: np.ndarray) -> float:
    """Mean squared error between an estimate vector and the ground truth.

    This is the accuracy metric used throughout the paper's Section VI
    (Figs. 4-8 report MSE over attribute means / value frequencies).
    """
    estimates = np.asarray(estimates, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if estimates.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: estimates {estimates.shape} vs truth {truth.shape}"
        )
    if estimates.size == 0:
        raise ValueError("cannot compute MSE of empty arrays")
    return float(np.mean((estimates - truth) ** 2))


def mean_and_sem(samples: Iterable[float]) -> Tuple[float, float]:
    """Sample mean and standard error of the mean."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(arr.size))


def confidence_radius(
    worst_case_variance: float, n: int, beta: float = 0.05
) -> float:
    """Bernstein-style high-probability radius for a mean of n reports.

    Lemma 2 / Lemma 5 of the paper state |Z - X| = O(sqrt(log(1/beta)) /
    (eps * sqrt(n))).  This helper exposes the concrete (non-asymptotic)
    sub-Gaussian radius sqrt(2 * Var * ln(2/beta) / n) that the proof's
    Bernstein inequality yields for bounded, independent reports.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < beta < 1:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    if worst_case_variance < 0:
        raise ValueError("variance must be non-negative")
    return math.sqrt(2.0 * worst_case_variance * math.log(2.0 / beta) / n)


def running_mean(values: np.ndarray) -> np.ndarray:
    """Cumulative mean of a 1-D array; handy for convergence plots."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("running_mean expects a 1-D array")
    if values.size == 0:
        return values.copy()
    return np.cumsum(values) / np.arange(1, values.size + 1)
