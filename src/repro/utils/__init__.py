"""Shared utilities: RNG handling and small statistical helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import (
    confidence_radius,
    empirical_mse,
    mean_and_sem,
    running_mean,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "confidence_radius",
    "empirical_mse",
    "mean_and_sem",
    "running_mean",
]
