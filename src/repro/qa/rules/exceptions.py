"""QA601 — exception hygiene: no bare / silently swallowed excepts.

The service's contract is *never silent*: a mis-aggregation, a failed
checkpoint, a poisoned batch must surface as an HTTP error, a raised
exception, or a failed process — anything but nothing.  Two patterns
defeat that silently:

* a bare ``except:`` — it also catches ``KeyboardInterrupt`` and
  ``SystemExit``, so the SIGINT-triggered final-checkpoint path can be
  eaten by an unrelated cleanup block;
* a blanket ``except Exception`` / ``except BaseException`` whose
  body is only ``pass`` (or ``...``) — the canonical silent
  swallow.

Narrow handlers with a ``pass`` body (``except (ConnectionError,
BrokenPipeError): pass`` on a best-effort socket close) are fine, as
are blanket handlers that actually do something (log, wrap, re-raise,
build an error response).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.qa.core import Module, Project, Rule, Violation

#: Exception names considered blanket catches.
_BLANKET = frozenset({"Exception", "BaseException"})


def _names(type_node: ast.expr) -> Iterator[str]:
    """Exception class names in an except clause (handles tuples)."""
    if isinstance(type_node, ast.Tuple):
        for element in type_node.elts:
            yield from _names(element)
    elif isinstance(type_node, ast.Attribute):
        yield type_node.attr
    elif isinstance(type_node, ast.Name):
        yield type_node.id


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


class ExceptionHygieneRule(Rule):
    id = "QA601"
    name = "exception-hygiene"
    description = (
        "no bare except (it eats KeyboardInterrupt/SystemExit) and no "
        "blanket except Exception/BaseException whose body only "
        "passes — failures must surface, never vanish"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.violation(
                        module,
                        node,
                        "bare except: catches KeyboardInterrupt and "
                        "SystemExit too; name the exceptions (or use "
                        "'except Exception' and handle it)",
                    )
                    continue
                if _swallows(node) and any(
                    name in _BLANKET for name in _names(node.type)
                ):
                    yield self.violation(
                        module,
                        node,
                        "blanket except that silently swallows the "
                        "error; handle it, log it, or narrow the "
                        "exception types",
                    )
