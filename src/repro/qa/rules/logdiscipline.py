"""QA701 — logging discipline: library code logs, entrypoints print.

With the obs subsystem (PR 9) the service tier emits structured,
context-bound log records (``repro.obs.logging``); a stray ``print()``
in library code bypasses the formatter, the level gate and the
contextvars-propagated request/campaign ids, and lands unparseable
bytes in whatever stream the *process* owns.  Likewise
``logging.basicConfig`` (or any root-logger handler mutation) is a
process-wide decision: a library module calling it hijacks the
embedding application's logging configuration at import or call time.

Flagged, in any module that is not an entrypoint:

* calls to the builtin ``print`` (unless shadowed by a local
  definition or import — those never resolve to the builtin);
* calls resolving to ``logging.basicConfig``, and root-handler
  mutation via ``logging.getLogger()`` with no name.

*Entrypoint* modules are exempt wholesale — a CLI's stdout is its
user interface, and configuring the root logger is exactly an
entrypoint's job.  A module counts as an entrypoint when it is named
``__main__`` (``python -m`` target) or carries a top-level
``if __name__ == "__main__":`` guard (script-style executables:
experiment figures, the linter driver itself).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.qa.core import Module, Project, Rule, Violation


def _is_main_guard(node: ast.stmt) -> bool:
    """Whether ``node`` is a top-level ``if __name__ == "__main__":``."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
        and len(test.comparators) == 1
    ):
        return False
    sides = [test.left, test.comparators[0]]
    names = [
        s.id for s in sides if isinstance(s, ast.Name)
    ]
    consts = [
        s.value
        for s in sides
        if isinstance(s, ast.Constant) and isinstance(s.value, str)
    ]
    return names == ["__name__"] and consts == ["__main__"]


def _is_entrypoint(module: Module) -> bool:
    if module.name.rpartition(".")[2] == "__main__":
        return True
    return any(_is_main_guard(stmt) for stmt in module.tree.body)


def _shadows_print(module: Module) -> bool:
    """Whether the module rebinds ``print`` (def/import/assignment) —
    then calls no longer resolve to the builtin."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "print":
                return True
            if any(a.arg == "print" for a in node.args.args):
                return True
        elif isinstance(node, ast.ImportFrom):
            if any((a.asname or a.name) == "print" for a in node.names):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "print":
                    return True
    return False


class LoggingDisciplineRule(Rule):
    id = "QA701"
    name = "logging-discipline"
    description = (
        "library code must log through repro.obs.logging, never "
        "print(); root-logger configuration (logging.basicConfig) "
        "belongs to entrypoints (__main__ modules / guarded scripts) "
        "only"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules:
            if _is_entrypoint(module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Violation]:
        shadowed = _shadows_print(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not shadowed
                and isinstance(func, ast.Name)
                and func.id == "print"
            ):
                yield self.violation(
                    module,
                    node,
                    "print() in library code bypasses structured "
                    "logging (levels, formatters, request/campaign "
                    "context); use repro.obs.logging.get_logger() — or "
                    "move the statement into an entrypoint",
                )
                continue
            dotted = module.resolve_call_path(func)
            if dotted == "logging.basicConfig":
                yield self.violation(
                    module,
                    node,
                    "logging.basicConfig in library code hijacks the "
                    "process-wide root logger; only entrypoints may "
                    "configure handlers (repro.obs.logging."
                    "configure_logging)",
                )
