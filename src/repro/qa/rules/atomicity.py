"""QA301 — no ``await`` between a budget charge and its paired absorb.

The ingestion server's whole-batch 429 guarantee (PR 3/4) — either
every user in a batch is charged and the batch absorbed, or nothing
happens — relies on the check / absorb / charge sequence executing as
one uninterrupted critical section on the event loop.  Handlers are
deliberately synchronous today; the easiest way to break them is to
make one ``async`` and slip an ``await`` (a checkpoint write, a log
flush) between the accumulator ``absorb`` and the ledger charge.  At
that suspension point another batch for the same users can interleave
and pass its own budget pre-check against a ledger that has not yet
recorded this batch's spend — double-charging past
``lifetime_epsilon`` without any error surfacing.

This rule flags every ``await`` expression positioned between an
``absorb(...)`` call and a ledger charge call (``charge``,
``charge_batch``, ``charge_group``) inside the same function of a
service handler module.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.qa.core import Module, Project, Rule, Violation

#: Modules whose handlers own the charge/absorb critical section.
HANDLER_MODULES: Tuple[str, ...] = ("repro.service.server",)

#: Method names that fold reports into an accumulator.
ABSORB_METHODS = frozenset({"absorb"})

#: Method names that charge a PrivacyAccountant / CrossCampaignLedger.
CHARGE_METHODS = frozenset({"charge", "charge_batch", "charge_group"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class ChargeAbsorbAtomicityRule(Rule):
    id = "QA301"
    name = "charge-absorb-atomicity"
    description = (
        "no await between an accumulator absorb and its paired "
        "ledger charge in service handlers — a suspension point there "
        "lets a concurrent batch double-spend past the atomic 429 "
        "pre-check"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.matching(*HANDLER_MODULES):
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, func: ast.AST
    ) -> Iterator[Violation]:
        absorbs: List[int] = []
        charges: List[int] = []
        awaits: List[ast.Await] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ABSORB_METHODS:
                    absorbs.append(node.lineno)
                elif name in CHARGE_METHODS:
                    charges.append(node.lineno)
            elif isinstance(node, ast.Await):
                awaits.append(node)
        if not absorbs or not charges or not awaits:
            return
        lo = min(absorbs + charges)
        hi = max(absorbs + charges)
        for node in awaits:
            if lo <= node.lineno <= hi:
                yield self.violation(
                    module,
                    node,
                    "await between an accumulator absorb (line "
                    f"{min(absorbs)}) and a ledger charge (line "
                    f"{max(charges)}): the charge/absorb pair must be "
                    "one uninterrupted critical section so batch 429 "
                    "rollback can never interleave",
                )
