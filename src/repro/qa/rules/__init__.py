"""The rule registry: one module per invariant, stable ids.

Rule ids are append-only: an id is never renumbered or reused, so
``# qa: allow[...]`` comments and CI configuration stay meaningful
across releases.
"""

from __future__ import annotations

from typing import Dict, List

from repro.qa.core import Rule
from repro.qa.rules.rng import RngDisciplineRule
from repro.qa.rules.boundary import PrivacyBoundaryRule
from repro.qa.rules.atomicity import ChargeAbsorbAtomicityRule
from repro.qa.rules.snapshots import SnapshotCompletenessRule
from repro.qa.rules.wirecodec import WireCodecExhaustivenessRule
from repro.qa.rules.exceptions import ExceptionHygieneRule
from repro.qa.rules.logdiscipline import LoggingDisciplineRule

#: Every shipped rule, in id order.
ALL_RULES: List[Rule] = [
    RngDisciplineRule(),
    PrivacyBoundaryRule(),
    ChargeAbsorbAtomicityRule(),
    SnapshotCompletenessRule(),
    WireCodecExhaustivenessRule(),
    ExceptionHygieneRule(),
    LoggingDisciplineRule(),
]

_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by its stable id (``KeyError`` if unknown)."""
    return _BY_ID[rule_id]


__all__ = [
    "ALL_RULES",
    "ChargeAbsorbAtomicityRule",
    "ExceptionHygieneRule",
    "LoggingDisciplineRule",
    "PrivacyBoundaryRule",
    "RngDisciplineRule",
    "SnapshotCompletenessRule",
    "WireCodecExhaustivenessRule",
    "get_rule",
]
