"""QA101 — RNG discipline: no global-state randomness.

The runtime's determinism guarantee (PR 2: a planned run's result
depends only on the plan, never on the executor) holds because every
random draw flows through an explicit ``numpy.random.Generator``
threaded from a seed, via ``repro.utils.rng.ensure_rng``.  A single
``np.random.seed`` / ``np.random.uniform`` / ``random.random`` call
reads or mutates interpreter-global state: results then depend on
import order, thread scheduling and whoever else touched the global
stream — silently voiding seed-matched equivalence tests and bitwise
shard merges.

Flagged: any call resolving to the ``numpy.random`` or ``random``
*module* namespace, except constructors of explicit, self-contained
generator objects (``default_rng``, ``Generator``, ``SeedSequence``,
bit generators, ``random.Random``/``SystemRandom``).  Methods on
generator instances (``rng.random()``) never resolve to a module and
are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.qa.core import Module, Project, Rule, Violation

#: numpy.random attributes that construct explicit generator objects
#: (allowed) rather than touching the hidden global RandomState.
_NUMPY_EXPLICIT = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "default_rng",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}

#: stdlib ``random`` attributes that construct self-contained
#: generator instances (allowed).
_STDLIB_EXPLICIT = {"Random", "SystemRandom"}


class RngDisciplineRule(Rule):
    id = "QA101"
    name = "rng-discipline"
    description = (
        "randomness must flow through an explicit numpy Generator / "
        "random.Random (utils.rng.ensure_rng); module-global "
        "np.random.* and random.* calls break executor-independent "
        "determinism"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_call_path(node.func)
            if dotted is None:
                continue
            offense = self._offending(dotted)
            if offense is not None:
                yield self.violation(module, node, offense)

    @staticmethod
    def _offending(dotted: str):
        """Message for a banned call path, else ``None``."""
        parts = dotted.split(".")
        if (
            parts[:2] == ["numpy", "random"]
            and len(parts) >= 3
            and parts[2] not in _NUMPY_EXPLICIT
        ):
            return (
                f"call to numpy.random.{'.'.join(parts[2:])} uses the "
                f"global numpy RandomState; thread an explicit "
                f"np.random.Generator (utils.rng.ensure_rng) instead"
            )
        if (
            parts[0] == "random"
            and len(parts) >= 2
            and parts[1] not in _STDLIB_EXPLICIT
        ):
            return (
                f"call to random.{'.'.join(parts[1:])} uses the "
                f"module-global stdlib generator; instantiate a seedable "
                f"random.Random and call it instead"
            )
        return None
