"""QA401 — snapshot completeness for ``ServerAccumulator`` subclasses.

Bitwise kill-and-resume (PR 3) works because ``state_dict`` /
``load_state`` round-trip *all* of an accumulator's sufficient
statistics.  The failure mode this rule exists for is silent state
drift: someone adds a new running statistic to an accumulator's
``__init__`` and forgets to add it to ``state_dict`` — every runtime
test that doesn't kill-and-resume that exact accumulator still
passes, but a restored server silently continues from a partial
state.

Two checks, for every class that (transitively) subclasses
``ServerAccumulator``:

* the full snapshot surface — ``absorb`` / ``merge`` / ``state_dict``
  / ``load_state`` — is implemented by the class or an ancestor
  (the abstract root's ``NotImplementedError`` stubs do not count);
* every underscore-prefixed attribute assigned in ``__init__``
  anywhere along the chain (the repo's convention for mutable
  sufficient statistics — public attributes are immutable
  configuration rebuilt from the ``ProtocolSpec``) appears, minus its
  leading underscores, as a string key in the nearest ``state_dict``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from repro.qa.core import Module, Project, Rule, Violation

#: The abstract base whose subclasses must be snapshot-complete.
ROOT_CLASS = "ServerAccumulator"

#: The snapshot surface every concrete accumulator must implement.
REQUIRED_METHODS = ("absorb", "merge", "state_dict", "load_state")


@dataclass
class _ClassInfo:
    module: Module
    node: ast.ClassDef

    @property
    def name(self) -> str:
        return self.node.name

    def base_names(self) -> List[str]:
        names = []
        for base in self.node.bases:
            # accumulators.ServerAccumulator -> last segment; bare-name
            # linkage is what fixtures and the real tree share.
            if isinstance(base, ast.Attribute):
                names.append(base.attr)
            elif isinstance(base, ast.Name):
                names.append(base.id)
        return names

    def method(self, name: str) -> Optional[ast.AST]:
        for item in self.node.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == name
            ):
                return item
        return None


def _underscore_attrs(init: ast.AST) -> Dict[str, ast.AST]:
    """``self._x`` assignments in an ``__init__`` body, by name."""
    attrs: Dict[str, ast.AST] = {}
    for node in ast.walk(init):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
                and not target.attr.startswith("__")
            ):
                attrs.setdefault(target.attr, node)
    return attrs


def _string_constants(func: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(func)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


class SnapshotCompletenessRule(Rule):
    id = "QA401"
    name = "snapshot-completeness"
    description = (
        "every ServerAccumulator subclass implements absorb/merge/"
        "state_dict/load_state, and every sufficient statistic "
        "assigned in __init__ appears as a state_dict key — partial "
        "snapshots silently corrupt kill-and-resume"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        table: Dict[str, List[_ClassInfo]] = {}
        for module in project.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    table.setdefault(node.name, []).append(
                        _ClassInfo(module=module, node=node)
                    )
        if ROOT_CLASS not in table:
            return
        for infos in table.values():
            for info in infos:
                if info.name == ROOT_CLASS:
                    continue
                chain = self._ancestor_chain(info, table)
                if chain is None:
                    continue  # not a ServerAccumulator subclass
                yield from self._check_class(info, chain)

    # ------------------------------------------------------------------
    def _ancestor_chain(
        self,
        info: _ClassInfo,
        table: Dict[str, List[_ClassInfo]],
    ) -> Optional[List[_ClassInfo]]:
        """[info, parent, grandparent, ...] up to (excluding) the root;
        ``None`` when the chain never reaches ``ServerAccumulator``."""
        chain: List[_ClassInfo] = []
        seen: Set[int] = set()
        reaches_root = False

        def visit(current: _ClassInfo) -> None:
            nonlocal reaches_root
            if id(current.node) in seen:
                return
            seen.add(id(current.node))
            chain.append(current)
            for base in current.base_names():
                if base == ROOT_CLASS:
                    reaches_root = True
                    continue
                for candidate in table.get(base, []):
                    visit(candidate)

        visit(info)
        return chain if reaches_root else None

    def _check_class(
        self, info: _ClassInfo, chain: List[_ClassInfo]
    ) -> Iterator[Violation]:
        for method in REQUIRED_METHODS:
            if not any(c.method(method) for c in chain):
                yield self.violation(
                    info.module,
                    info.node,
                    f"accumulator {info.name} never implements "
                    f"{method}() — the abstract ServerAccumulator stub "
                    f"does not survive wire transfer or checkpoints",
                )
        state_dict = next(
            (c.method("state_dict") for c in chain if c.method("state_dict")),
            None,
        )
        if state_dict is None:
            return  # already reported above
        keys = _string_constants(state_dict)
        for owner in chain:
            init = owner.method("__init__")
            if init is None:
                continue
            for attr, node in _underscore_attrs(init).items():
                expected = attr.lstrip("_")
                if expected not in keys and attr not in keys:
                    yield self.violation(
                        info.module,
                        node,
                        f"sufficient statistic self.{attr} (assigned in "
                        f"{owner.name}.__init__) has no "
                        f"{expected!r} key in the governing state_dict "
                        f"— kill-and-resume would silently drop it for "
                        f"{info.name}",
                    )
