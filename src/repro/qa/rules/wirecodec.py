"""QA501 — wire-codec exhaustiveness for report containers.

The service's never-silent-mis-aggregation guarantee (PR 3) assumes
every report container a protocol can emit has a bitwise codec entry
in ``repro.service.wire`` — on the v1 JSON path (``encode_reports``
type-tags it, ``decode_reports`` rebuilds it) *and* on the v2 columnar
path (``reports_to_columns`` flattens it, ``columns_to_reports``
rebuilds it).  A new container class added to
``repro.protocol.reports`` without a codec entry only fails at
runtime, on the first live submission of that protocol kind, with a
generic ``cannot encode report container`` — long after review; worse,
a container wired into only one of the two formats splits the fleet:
v1 clients can submit it, v2 clients cannot.

This rule checks statically that every class defined at the top level
of ``repro.protocol.reports`` is referenced by name in *all four*
codec functions of ``repro.service.wire``.  ``ColumnBlock`` is
exempt — it is the columnar wire form itself (the carrier the v2
functions produce and consume), not a report container.  The check
runs only when both modules are in the linted set (the full ``src``
run CI gates on).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.qa.core import Module, Project, Rule, Violation

#: Module defining the report containers.
REPORTS_MODULE = "repro.protocol.reports"

#: Module that must provide a codec entry per container.
CODEC_MODULE = "repro.service.wire"

#: The codec functions every container must appear in: the v1 JSON
#: pair and the v2 columnar pair.
CODEC_FUNCTIONS = (
    "encode_reports",
    "decode_reports",
    "reports_to_columns",
    "columns_to_reports",
)

#: Wire-form carriers defined alongside the containers: they *are* the
#: encoding, so demanding a codec entry for them is circular.
CARRIER_CLASSES = frozenset({"ColumnBlock"})


def _top_level_classes(module: Module) -> Iterator[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            yield node


def _function(module: Module, name: str) -> Optional[ast.AST]:
    for node in module.tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


def _referenced_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


class WireCodecExhaustivenessRule(Rule):
    id = "QA501"
    name = "wire-codec-exhaustiveness"
    description = (
        "every report container class in protocol/reports.py needs a "
        "codec entry in service/wire.py on BOTH wire formats "
        "(encode_reports/decode_reports and reports_to_columns/"
        "columns_to_reports) — an unregistered container only fails "
        "on the first live submission, and a half-registered one "
        "splits the v1/v2 fleet"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        reports = project.find(REPORTS_MODULE)
        codec = project.find(CODEC_MODULE)
        if reports is None or codec is None:
            return  # partial runs (single files) cannot do this check
        functions = {}
        for name in CODEC_FUNCTIONS:
            func = _function(codec, name)
            if func is None:
                yield Violation(
                    rule=self.id,
                    path=str(codec.path),
                    line=1,
                    col=1,
                    message=(
                        f"codec module {codec.name} does not define "
                        f"{name}(); the wire codec surface is gone"
                    ),
                )
                return
            functions[name] = _referenced_names(func)
        for cls in _top_level_classes(reports):
            if cls.name in CARRIER_CLASSES:
                continue
            for name, referenced in functions.items():
                if cls.name not in referenced:
                    yield self.violation(
                        reports,
                        cls,
                        f"report container {cls.name} has no codec "
                        f"entry in {codec.name}.{name}(); a batch of "
                        f"these reports cannot cross the service "
                        f"boundary",
                    )
