"""QA201 — privacy boundary: the server tier never sees raw values.

The paper's trust model is enforced structurally: perturbation happens
on the client, the server (and the wire) only ever see privatized
reports, and accumulators hold sufficient statistics.  The code keeps
that boundary by construction — server-tier modules simply have no
path to the client-side raw-value machinery.  This rule pins the
construction down: the modules that run on the aggregator
(``repro.service.server``, the ``repro.campaigns`` package,
``repro.protocol.accumulators``) may not import — at any nesting
depth, including function-local imports — the modules that encode or
hold raw user values (client encoders, numeric mechanisms, raw
datasets).

An import here is almost always the first step of "just decode the
report server-side for a quick check" — exactly the edit that
dissolves the trust model while every runtime test stays green.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.qa.core import Project, Rule, Violation

#: Modules that run on the aggregator and must stay report-only.
#: The streaming window/heavy-hitter machinery aggregates privatized
#: panes server-side, so it is held to the same bar; the *memoization*
#: cache (repro.stream.memo) is deliberately absent — it wraps client
#: encoders and runs on the user's device.
SERVER_TIER: Tuple[str, ...] = (
    "repro.service.server",
    "repro.campaigns",
    "repro.protocol.accumulators",
    "repro.stream.windows",
    "repro.stream.heavy",
)

#: Client-side raw-value machinery: encoders that perturb true values,
#: the numeric mechanisms they wrap, and raw dataset handling.
FORBIDDEN: Tuple[str, ...] = (
    "repro.protocol.encoders",
    "repro.frequency.encoders",
    "repro.core",
    "repro.data",
    "repro.multidim.collector",
    "repro.multidim.splitting",
)


def _under(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


class PrivacyBoundaryRule(Rule):
    id = "QA201"
    name = "privacy-boundary"
    description = (
        "server-tier modules (service.server, campaigns, "
        "protocol.accumulators) must not import client-side raw-value "
        "encoding internals; accumulators hold sufficient statistics "
        "only"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.matching(*SERVER_TIER):
            reported = set()
            for imported, node in module.imported_modules():
                banned = next(
                    (p for p in FORBIDDEN if _under(imported, p)), None
                )
                if banned is None:
                    continue
                if node.lineno in reported:
                    continue
                reported.add(node.lineno)
                yield self.violation(
                    module,
                    node,
                    f"server-tier module {module.name} imports "
                    f"client-side encoding internals ({imported}); the "
                    f"aggregator must only ever touch privatized "
                    f"reports and sufficient statistics",
                )
