"""Static enforcement of the repo's runtime contracts.

Every guarantee the runtime layers sell — bitwise determinism across
executors, never-silent mis-aggregation, atomic whole-batch budget
rejection, bitwise kill-and-resume — can be silently voided by a
single careless edit long before any test notices.  This package is a
small AST/import-graph analysis suite whose rules encode those
contracts so violations fail at review time:

==========  ==========================================================
rule id     contract
==========  ==========================================================
``QA101``   RNG discipline: no global-state ``np.random.*`` /
            ``random.*`` calls; randomness flows through explicit
            generators (``utils.rng.ensure_rng``).
``QA201``   Privacy boundary: server-tier modules never import
            client-side raw-value encoding internals.
``QA301``   Atomicity: no ``await`` between a ledger charge and its
            paired ``absorb`` in service handlers.
``QA401``   Snapshot completeness: every ``ServerAccumulator``
            subclass is fully snapshot-capable and every sufficient
            statistic appears in ``state_dict``.
``QA501``   Wire-codec exhaustiveness: every report container has a
            codec entry in ``repro.service.wire``.
``QA601``   Exception hygiene: no bare / silently swallowed blanket
            ``except``.
==========  ==========================================================

Run it with ``python -m repro.qa.lint [paths]``; suppress a single
finding with a ``# qa: allow[QA101]`` comment on (or directly above)
the offending line.
"""

from repro.qa.core import Module, Project, Rule, Violation, load_project
from repro.qa.driver import lint_paths, lint_project
from repro.qa.rules import ALL_RULES, get_rule

__all__ = [
    "ALL_RULES",
    "Module",
    "Project",
    "Rule",
    "Violation",
    "get_rule",
    "lint_paths",
    "lint_project",
    "load_project",
]
