"""CLI entry point: ``python -m repro.qa.lint [paths]``.

The actual driver lives in :mod:`repro.qa.driver`; this module exists
so the documented command has a stable spelling (and so running it
with ``-m`` does not shadow the module the package itself imports).
"""

import sys

from repro.qa.driver import lint_paths, lint_project, main

__all__ = ["lint_paths", "lint_project", "main"]

if __name__ == "__main__":
    sys.exit(main())
