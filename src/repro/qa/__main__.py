"""``python -m repro.qa`` — alias for ``python -m repro.qa.lint``."""

import sys

from repro.qa.lint import main

if __name__ == "__main__":
    sys.exit(main())
