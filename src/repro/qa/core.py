"""Shared analysis core: parsed modules, import resolution, suppression.

One :class:`Project` is built per lint run; every rule receives the
same project, so files are read and parsed exactly once no matter how
many rules inspect them.  A :class:`Module` bundles what every rule
needs:

* the parsed :mod:`ast` tree and raw source lines,
* the module's dotted name (``repro.service.server``), derived from
  its path so path-scoped rules (privacy boundary, atomicity) can
  target the real tree and fixture mini-trees alike,
* an import alias map (``np`` -> ``numpy``, ``rand`` ->
  ``numpy.random.rand``) for resolving attribute chains to the module
  that actually provides them,
* the set of ``# qa: allow[RULE]`` suppressions per line.

Suppression: a ``# qa: allow[QA101]`` (comma-separate several ids,
``*`` allows everything) suppresses matching violations reported on
its own line; on a comment-only line it covers the line below, so
multi-line statements can be excused without trailing-comment clutter.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Matches one escape-hatch comment; group 1 is the rule-id list.
_ALLOW_RE = re.compile(r"#\s*qa:\s*allow\[([A-Za-z0-9*,\s]+)\]")

#: Path components under which source is never linted.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".svn"}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id``/``name``/``description`` and implement
    :meth:`check`, yielding raw findings; the driver filters
    suppressed ones.
    """

    id: str = "QA000"
    name: str = "unnamed"
    description: str = ""

    def check(self, project: "Project") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: "Module", node: ast.AST, message: str
    ) -> Violation:
        """A finding anchored at ``node`` inside ``module``."""
        return Violation(
            rule=self.id,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path.

    The name is rooted at the last ``src`` directory on the path when
    one exists, else at the first ``repro`` component, else it is the
    bare stem.  This keeps path-scoped rules working both on the real
    tree (``src/repro/service/server.py``) and on test fixtures laid
    out as mini-trees (``tests/qa_fixtures/QA301/bad/src/repro/...``).
    """
    parts = list(path.parts)
    parts[-1] = path.stem
    root = 0
    for i, part in enumerate(parts):
        if part == "src":
            root = i + 1
    if root == 0 and "repro" in parts:
        root = parts.index("repro")
    dotted = [p for p in parts[root:] if p]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else path.stem


def _parse_allows(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    allows: Dict[int, Set[str]] = {}
    for i, text in enumerate(lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        ids = {
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        }
        allows.setdefault(i, set()).update(ids)
        if text.lstrip().startswith("#"):
            # A comment-only line shields the statement below it.
            allows.setdefault(i + 1, set()).update(ids)
    return allows


@dataclass
class Module:
    """One parsed source file plus everything rules ask about it."""

    path: Path
    name: str
    tree: ast.Module
    lines: List[str]
    allows: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, violation: Violation) -> bool:
        ids = self.allows.get(violation.line, ())
        return violation.rule in ids or "*" in ids

    # ------------------------------------------------------------------
    # Import resolution
    # ------------------------------------------------------------------
    @property
    def package(self) -> str:
        """The package this module lives in (for relative imports)."""
        if self.path.stem == "__init__":
            return self.name
        return self.name.rpartition(".")[0]

    def imported_modules(self) -> Iterator[tuple]:
        """Yield ``(dotted_module_name, ast_node)`` for every import.

        ``from pkg import name`` yields both ``pkg`` and
        ``pkg.name`` — the latter is how submodules are pulled in, and
        a boundary rule must treat ``from repro.protocol import
        encoders`` exactly like ``import repro.protocol.encoders``.
        Relative imports are resolved against this module's package.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name, node
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base:
                    yield base, node
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    child = f"{base}.{alias.name}" if base else alias.name
                    yield child, node

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        anchor = self.package.split(".") if self.package else []
        hops = node.level - 1
        anchor = anchor[: len(anchor) - hops] if hops else anchor
        if node.module:
            anchor = anchor + node.module.split(".")
        return ".".join(anchor)

    def alias_map(self) -> Dict[str, str]:
        """Local name -> the dotted path it stands for.

        ``import numpy as np`` maps ``np`` to ``numpy``;
        ``from numpy.random import rand`` maps ``rand`` to
        ``numpy.random.rand``; ``import numpy.random`` maps ``numpy``
        to ``numpy`` (attribute chains walk the rest).
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        return aliases

    def resolve_call_path(self, func: ast.expr) -> Optional[str]:
        """Dotted path of a call target, expanded through imports.

        ``np.random.seed`` under ``import numpy as np`` resolves to
        ``numpy.random.seed``.  Returns ``None`` when the chain does
        not start at an imported name (e.g. a method on a local
        object), so callers never flag ``generator.random()``.
        """
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.alias_map().get(node.id)
        if root is None:
            return None
        return ".".join([root, *reversed(chain)])


@dataclass
class Project:
    """Every module of one lint run, addressable by dotted name."""

    modules: List[Module]
    errors: List[Violation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_name: Dict[str, Module] = {
            module.name: module for module in self.modules
        }

    def find(self, dotted: str) -> Optional[Module]:
        return self.by_name.get(dotted)

    def matching(self, *prefixes: str) -> Iterator[Module]:
        """Modules whose dotted name equals, or lives under, a prefix."""
        for module in self.modules:
            for prefix in prefixes:
                if module.name == prefix or module.name.startswith(
                    prefix + "."
                ):
                    yield module
                    break


def iter_source_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files they contain."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def load_project(paths: Iterable[Path]) -> Project:
    """Read and parse every source file once; collect syntax errors.

    Unparseable files become ``QA000`` findings instead of crashing
    the run — a file the linter cannot read is a file whose
    invariants nobody is checking.
    """
    modules: List[Module] = []
    errors: List[Violation] = []
    for path in iter_source_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(
                Violation(
                    rule="QA000",
                    path=str(path),
                    line=line,
                    col=1,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        lines = source.splitlines()
        modules.append(
            Module(
                path=path,
                name=module_name_for(path),
                tree=tree,
                lines=lines,
                allows=_parse_allows(lines),
            )
        )
    return Project(modules=modules, errors=errors)
