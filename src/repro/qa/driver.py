"""The lint driver and CLI: ``python -m repro.qa.lint [paths]``.

Parses every target file once, runs each registered rule over the
shared :class:`~repro.qa.core.Project`, filters ``# qa: allow[...]``
suppressions, and reports either human-readable ``path:line:col:
RULE message`` lines or a machine-readable JSON document
(``--format json``) for CI annotation tooling.  Exit status: 0 clean,
1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.qa.core import Project, Violation, load_project
from repro.qa.rules import ALL_RULES

#: JSON output document version (bump on breaking shape changes).
OUTPUT_VERSION = 1


def lint_project(
    project: Project, rule_ids: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run (selected) rules over an already-loaded project.

    Returns surviving violations — parse failures first, then rule
    findings with suppressed ones removed — sorted by location.
    """
    selected = [
        rule
        for rule in ALL_RULES
        if rule_ids is None or rule.id in rule_ids
    ]
    violations: List[Violation] = list(project.errors)
    for rule in selected:
        for violation in rule.check(project):
            module = next(
                (
                    m
                    for m in project.modules
                    if str(m.path) == violation.path
                ),
                None,
            )
            if module is not None and module.is_suppressed(violation):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def lint_paths(
    paths: Iterable[Path], rule_ids: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Load ``paths`` and lint them; the library entry point."""
    return lint_project(load_project(paths), rule_ids)


def _render_json(violations: List[Violation], checked: int) -> str:
    return json.dumps(
        {
            "version": OUTPUT_VERSION,
            "checked_files": checked,
            "rules": [
                {
                    "id": rule.id,
                    "name": rule.name,
                    "description": rule.description,
                }
                for rule in ALL_RULES
            ],
            "violations": [v.to_dict() for v in violations],
        },
        indent=2,
        sort_keys=False,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa.lint",
        description=(
            "Statically enforce the repo's privacy, determinism and "
            "crash-safety contracts (rules QA101..QA601). Suppress a "
            "single finding with a '# qa: allow[QA101]' comment on or "
            "directly above the offending line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="QAxxx",
        help="run only this rule id (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    known = {rule.id for rule in ALL_RULES}
    if args.rules:
        unknown = sorted(set(args.rules) - known)
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(unknown)}")

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        parser.error(
            f"no such file or directory: "
            f"{', '.join(str(p) for p in missing)}"
        )

    project = load_project(targets)
    violations = lint_project(project, args.rules)

    if args.format == "json":
        print(_render_json(violations, len(project.modules)))
    else:
        for violation in violations:
            print(violation.render())
        summary = (
            f"{len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} in "
            f"{len(project.modules)} files"
        )
        print(("FAIL: " if violations else "OK: ") + summary)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
