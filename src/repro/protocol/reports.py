"""Report containers exchanged between protocol clients and servers.

A *report* is exactly what one user transmits; the server never needs
anything else.  Most protocol kinds reuse library-native report types
(perturbed-value arrays for 1-D numeric, bit matrices / ``OLHReports``
for frequency oracles, :class:`repro.multidim.collector.MixedReports`
for mixed tuples).  This module adds the compact wire format for
Algorithm 4:

:class:`SampledNumericReports` stores, per user, only the k sampled
attribute indices and the k scaled perturbed values — O(n k) memory
instead of the legacy dense (n, d) matrix whose entries are mostly
zeros.  ``to_dense()`` recovers the legacy layout when needed.

Columnar form
-------------

Every report container also has a *canonical columnar form*: a flat
``dict[str, np.ndarray]`` of named columns (``to_columns()``) plus the
JSON-scalar metadata needed to rebuild the container
(``from_columns()``).  A :class:`ColumnBlock` bundles the two together
with the container kind and user count — it is what the v2 wire format
frames as one header plus packed array payloads, and what
``ServerAccumulator.absorb_columns`` consumes directly without
materializing report objects.  The columnar round-trip is bitwise: the
arrays are transported untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np


@dataclass
class ColumnBlock:
    """One report batch in canonical columnar form.

    Attributes
    ----------
    kind:
        Container kind tag — ``"array"``, ``"olh"``,
        ``"sampled-numeric"`` or ``"mixed"`` — the same vocabulary the
        v1 JSON codec uses.
    n:
        Number of reporting users in the batch.
    meta:
        JSON-scalar metadata needed to rebuild the container (e.g.
        ``d``/``k`` for sampled-numeric, the per-attribute sub-kinds
        for mixed).  Never carries arrays.
    columns:
        Flat name -> numpy array mapping.  Nested containers (mixed
        tuples) flatten with ``cat.<attribute>.<column>`` names.
    """

    kind: str
    n: int
    meta: Dict[str, Any] = field(default_factory=dict)
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.n = int(self.n)
        if self.n < 0:
            raise ValueError(f"n must be non-negative, got {self.n}")
        for name, arr in self.columns.items():
            self.columns[name] = np.asarray(arr)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ValueError(
                f"columnar {self.kind!r} block is missing column "
                f"{name!r} (has {sorted(self.columns)})"
            ) from None

    def sub_block(self, prefix: str, kind: str, n: int) -> "ColumnBlock":
        """The nested block under ``cat.<prefix>.`` (mixed flattening)."""
        head = f"cat.{prefix}."
        return ColumnBlock(
            kind=kind,
            n=n,
            meta={},
            columns={
                name[len(head):]: arr
                for name, arr in self.columns.items()
                if name.startswith(head)
            },
        )

    def nbytes(self) -> int:
        """Total packed payload size across all columns."""
        return int(sum(arr.nbytes for arr in self.columns.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnBlock(kind={self.kind!r}, n={self.n}, "
            f"columns={sorted(self.columns)})"
        )


@dataclass
class SampledNumericReports:
    """Algorithm 4 submissions in compact (indices, values) form.

    Attributes
    ----------
    d:
        Total number of attributes in the sampling universe.
    k:
        Attributes sampled (and reported) per user.
    cols:
        (n, k) integer matrix; row i holds user i's sampled attribute
        indices (distinct, in [0, d)).
    values:
        (n, k) float matrix; entry (i, j) is the user's perturbed value
        for attribute ``cols[i, j]``, already scaled by d/k so that the
        server-side estimator is a plain average.
    """

    d: int
    k: int
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        if self.cols.ndim != 2 or self.cols.shape != self.values.shape:
            raise ValueError(
                f"cols and values must be matching (n, k) matrices, got "
                f"{self.cols.shape} and {self.values.shape}"
            )
        if self.cols.shape[1] != self.k:
            raise ValueError(
                f"expected k={self.k} sampled attributes per row, got "
                f"{self.cols.shape[1]}"
            )
        if self.cols.size and (
            self.cols.min() < 0 or self.cols.max() >= self.d
        ):
            raise ValueError(
                f"sampled indices must lie in [0, {self.d - 1}]"
            )

    @property
    def n(self) -> int:
        """Number of reporting users."""
        return int(self.cols.shape[0])

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------
    def to_columns(self) -> Dict[str, np.ndarray]:
        """Canonical columnar form: the two (n, k) matrices by name.

        The container metadata (``d``, ``k``) travels separately (see
        :class:`ColumnBlock`); :meth:`from_columns` takes both halves.
        """
        return {"cols": self.cols, "values": self.values}

    @classmethod
    def from_columns(
        cls, columns: Dict[str, np.ndarray], *, d: int, k: int
    ) -> "SampledNumericReports":
        """Rebuild from :meth:`to_columns` output (bitwise)."""
        return cls(
            d=int(d), k=int(k), cols=columns["cols"],
            values=columns["values"],
        )

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The legacy (n, d) submission matrix (zeros at unsampled entries)."""
        out = np.zeros((self.n, self.d))
        rows = np.repeat(np.arange(self.n), self.k)
        out[rows, self.cols.ravel()] = self.values.ravel()
        return out

    def split(self, sections: int) -> List["SampledNumericReports"]:
        """Split the users into ``sections`` contiguous shards."""
        if sections < 1:
            raise ValueError(f"sections must be >= 1, got {sections}")
        parts = zip(
            np.array_split(self.cols, sections),
            np.array_split(self.values, sections),
        )
        return [
            SampledNumericReports(d=self.d, k=self.k, cols=c, values=v)
            for c, v in parts
        ]
