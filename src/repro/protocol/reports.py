"""Report containers exchanged between protocol clients and servers.

A *report* is exactly what one user transmits; the server never needs
anything else.  Most protocol kinds reuse library-native report types
(perturbed-value arrays for 1-D numeric, bit matrices / ``OLHReports``
for frequency oracles, :class:`repro.multidim.collector.MixedReports`
for mixed tuples).  This module adds the compact wire format for
Algorithm 4:

:class:`SampledNumericReports` stores, per user, only the k sampled
attribute indices and the k scaled perturbed values — O(n k) memory
instead of the legacy dense (n, d) matrix whose entries are mostly
zeros.  ``to_dense()`` recovers the legacy layout when needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class SampledNumericReports:
    """Algorithm 4 submissions in compact (indices, values) form.

    Attributes
    ----------
    d:
        Total number of attributes in the sampling universe.
    k:
        Attributes sampled (and reported) per user.
    cols:
        (n, k) integer matrix; row i holds user i's sampled attribute
        indices (distinct, in [0, d)).
    values:
        (n, k) float matrix; entry (i, j) is the user's perturbed value
        for attribute ``cols[i, j]``, already scaled by d/k so that the
        server-side estimator is a plain average.
    """

    d: int
    k: int
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        if self.cols.ndim != 2 or self.cols.shape != self.values.shape:
            raise ValueError(
                f"cols and values must be matching (n, k) matrices, got "
                f"{self.cols.shape} and {self.values.shape}"
            )
        if self.cols.shape[1] != self.k:
            raise ValueError(
                f"expected k={self.k} sampled attributes per row, got "
                f"{self.cols.shape[1]}"
            )
        if self.cols.size and (
            self.cols.min() < 0 or self.cols.max() >= self.d
        ):
            raise ValueError(
                f"sampled indices must lie in [0, {self.d - 1}]"
            )

    @property
    def n(self) -> int:
        """Number of reporting users."""
        return int(self.cols.shape[0])

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The legacy (n, d) submission matrix (zeros at unsampled entries)."""
        out = np.zeros((self.n, self.d))
        rows = np.repeat(np.arange(self.n), self.k)
        out[rows, self.cols.ravel()] = self.values.ravel()
        return out

    def split(self, sections: int) -> List["SampledNumericReports"]:
        """Split the users into ``sections`` contiguous shards."""
        if sections < 1:
            raise ValueError(f"sections must be >= 1, got {sections}")
        parts = zip(
            np.array_split(self.cols, sections),
            np.array_split(self.values, sections),
        )
        return [
            SampledNumericReports(d=self.d, k=self.k, cols=c, values=v)
            for c, v in parts
        ]
