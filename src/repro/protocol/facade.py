"""The `Protocol` façade — one entry point for every collection task.

A :class:`Protocol` binds a :class:`~repro.protocol.spec.ProtocolSpec`
to its client encoder and server accumulator factory:

    from repro.protocol import Protocol

    protocol = Protocol.multidim(epsilon=4.0, d=10, mechanism="hm")
    client = protocol.client()              # runs on user devices
    server = protocol.server()              # runs on (each) aggregator

    server.absorb(client.encode_batch(tuples, rng=0))
    means = server.estimate()

Sharding is merging:

    shard_a, shard_b = protocol.server(), protocol.server()
    shard_a.absorb(client.encode_batch(tuples_a, rng=1))
    shard_b.absorb(client.encode_batch(tuples_b, rng=2))
    means = shard_a.merge(shard_b).estimate()
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union, cast

from repro.core.mechanism import NumericMechanism
from repro.frequency.histogram import LDPHistogram
from repro.frequency.oracle import FrequencyOracle
from repro.multidim.collector import (
    MixedMultidimCollector,
    MultidimNumericCollector,
)
from repro.protocol.accumulators import ServerAccumulator
from repro.protocol.encoders import (
    ClientEncoder,
    FrequencyEncoder,
    HistogramEncoder,
    MixedEncoder,
    MultidimNumericEncoder,
    NumericMeanEncoder,
)
from repro.protocol.registry import get_primitive
from repro.protocol.spec import ProtocolSpec
from repro.utils.rng import RngLike


def _build_encoder(spec: ProtocolSpec) -> ClientEncoder:
    """Instantiate the client encoder a spec describes."""
    # The asserts restate what ProtocolSpec.__post_init__ already
    # enforced per kind (its requirements table), narrowing the
    # Optional fields for the constructors below.
    if spec.kind == "mean":
        assert spec.mechanism is not None
        return NumericMeanEncoder(
            cast(
                NumericMechanism,
                get_primitive(spec.mechanism, spec.epsilon, kind="numeric"),
            )
        )
    if spec.kind == "frequency":
        assert spec.oracle is not None
        return FrequencyEncoder(
            cast(
                FrequencyOracle,
                get_primitive(
                    spec.oracle,
                    spec.epsilon,
                    domain=spec.domain,
                    kind="categorical",
                ),
            )
        )
    if spec.kind == "histogram":
        assert spec.oracle is not None
        assert spec.bins is not None
        assert spec.postprocess is not None
        return HistogramEncoder(
            LDPHistogram(
                spec.epsilon,
                bins=spec.bins,
                oracle=spec.oracle,
                postprocess=spec.postprocess,
            )
        )
    if spec.kind == "multidim-numeric":
        assert spec.mechanism is not None
        assert spec.d is not None
        return MultidimNumericEncoder(
            MultidimNumericCollector(
                spec.epsilon, spec.d, mechanism=spec.mechanism, k=spec.k
            )
        )
    if spec.kind == "multidim-mixed":
        assert spec.mechanism is not None
        assert spec.oracle is not None
        assert spec.schema is not None
        return MixedEncoder(
            MixedMultidimCollector(
                spec.schema,
                spec.epsilon,
                numeric_mechanism=spec.mechanism,
                oracle=spec.oracle,
                k=spec.k,
            )
        )
    raise ValueError(f"unknown protocol kind {spec.kind!r}")


class Protocol:
    """A configured LDP protocol: spec + client encoder + server factory."""

    def __init__(self, spec: ProtocolSpec) -> None:
        self._spec = spec
        self._encoder = _build_encoder(spec)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def numeric_mean(cls, epsilon: float, mechanism: str = "hm") -> "Protocol":
        """Mean of one numeric attribute in [-1, 1] (Section III)."""
        return cls(
            ProtocolSpec(kind="mean", epsilon=epsilon, mechanism=mechanism)
        )

    @classmethod
    def frequency(
        cls, epsilon: float, domain: int, oracle: str = "oue"
    ) -> "Protocol":
        """Value frequencies of one categorical attribute."""
        return cls(
            ProtocolSpec(
                kind="frequency", epsilon=epsilon, oracle=oracle, domain=domain
            )
        )

    @classmethod
    def histogram(
        cls,
        epsilon: float,
        bins: int = 16,
        oracle: str = "oue",
        postprocess: str = "norm-sub",
    ) -> "Protocol":
        """Distribution of one numeric attribute over equal-width bins."""
        return cls(
            ProtocolSpec(
                kind="histogram",
                epsilon=epsilon,
                oracle=oracle,
                bins=bins,
                postprocess=postprocess,
            )
        )

    @classmethod
    def multidim(
        cls,
        epsilon: float,
        d: Optional[int] = None,
        schema: Any = None,
        mechanism: str = "hm",
        oracle: str = "oue",
        k: Optional[int] = None,
    ) -> "Protocol":
        """d-dimensional collection (Section IV).

        Pass ``d`` for all-numeric tuples (Algorithm 4) or ``schema``
        for mixed numeric + categorical tuples (Section IV-C).
        """
        if (d is None) == (schema is None):
            raise ValueError("pass exactly one of d= or schema=")
        if schema is None:
            return cls(
                ProtocolSpec(
                    kind="multidim-numeric",
                    epsilon=epsilon,
                    mechanism=mechanism,
                    d=d,
                    k=k,
                )
            )
        return cls(
            ProtocolSpec(
                kind="multidim-mixed",
                epsilon=epsilon,
                mechanism=mechanism,
                oracle=oracle,
                schema=schema,
                k=k,
            )
        )

    @classmethod
    def from_spec(
        cls, spec: Union[ProtocolSpec, Dict[str, Any]]
    ) -> "Protocol":
        """Build from a :class:`ProtocolSpec` or its ``to_dict`` payload."""
        if isinstance(spec, dict):
            spec = ProtocolSpec.from_dict(spec)
        return cls(spec)

    # ------------------------------------------------------------------
    # The two protocol halves
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ProtocolSpec:
        """The serializable configuration this protocol was built from."""
        return self._spec

    @property
    def k(self) -> Optional[int]:
        """The resolved per-user sampling parameter for multidim kinds.

        Useful when k was derived from Eq. 12 rather than overridden in
        the spec; ``None`` for non-multidim protocol kinds.
        """
        collector = getattr(self._encoder, "collector", None)
        return getattr(collector, "k", None)

    def client(self) -> ClientEncoder:
        """The (stateless) client-side encoder."""
        return self._encoder

    def server(self) -> ServerAccumulator:
        """A fresh, empty server accumulator for this protocol."""
        return self._encoder.new_accumulator()

    # ------------------------------------------------------------------
    def run(self, values: Any, rng: RngLike = None) -> Any:
        """Encode one batch and estimate — the one-machine convenience."""
        return (
            self.server().absorb(self._encoder.encode_batch(values, rng))
        ).estimate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Protocol({self._spec!r})"
