"""Server-side mergeable aggregation state.

A :class:`ServerAccumulator` holds only *sufficient statistics* (sums,
support counts, user counts — never a report), so its memory is O(state
dimension) regardless of how many reports it absorbs, and two partial
accumulations can be combined with :meth:`~ServerAccumulator.merge`.
This is what makes sharded and streaming aggregation trivial:

    acc = protocol.server()
    for batch in arriving_batches:
        acc.absorb(encoder.encode_batch(batch, rng))
    estimate = acc.estimate()

Determinism guarantee: counts (frequency protocols) are integral and
therefore exact, so any absorb/merge order yields bitwise-identical
estimates.  Float sums are folded batch-by-batch with plain addition,
so absorbing batches b1..bm into one accumulator equals absorbing them
into m accumulators and merging in the same order, *bitwise*; reordering
shards is exact for counts and agrees to ~1e-15 relative for sums.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from repro.frequency.olh import OLHReports
from repro.frequency.oracle import FrequencyOracle
from repro.protocol.reports import ColumnBlock, SampledNumericReports

# NOTE: repro.multidim is imported lazily (inside MixedAccumulator
# methods) because repro.multidim.streaming subclasses the accumulators
# defined here; a top-level import in either direction would cycle.

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.frequency.histogram import HistogramEstimate
    from repro.multidim.aggregator import MixedEstimates


class ServerAccumulator(abc.ABC):
    """Mergeable aggregation state for one protocol.

    The three-method contract:

    * :meth:`absorb` folds a batch of client reports into the state;
    * :meth:`merge` folds another accumulator of the same protocol in
      (e.g. from a parallel shard);
    * :meth:`estimate` produces the current unbiased estimate.

    Both ``absorb`` and ``merge`` return ``self`` for chaining.
    """

    @abc.abstractmethod
    def absorb(self, reports: Any) -> "ServerAccumulator":
        """Fold in one batch of reports; retains no report.

        Absorbing an *empty* batch (zero reports, e.g. from an empty
        shard or an encoder fed no values) is a uniform no-op across
        every accumulator: state and count are unchanged.
        :meth:`estimate` still raises ``ValueError`` while the total
        count is zero.
        """

    def absorb_columns(self, block: ColumnBlock) -> "ServerAccumulator":
        """Fold in one batch in canonical columnar form.

        The columnar twin of :meth:`absorb`: consumes the named numpy
        columns of a :class:`~repro.protocol.reports.ColumnBlock`
        directly — no report container is materialized on the hot path
        (OLH columns are wrapped in a zero-copy view for the oracle's
        support counting).  Bitwise-equal to absorbing the equivalent
        report object: the same reductions run over the same arrays in
        the same order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support columnar absorption"
        )

    # ------------------------------------------------------------------
    # Pre-absorption validation (used by the sharded ingestion tier).
    # ``validate_reports`` / ``validate_columns`` raise ``ValueError``
    # for any batch whose matching absorb would raise, and never
    # mutate state.  The sharded server validates on the request path
    # *before* charging budget and enqueueing, so an absorb running
    # later on a shard worker cannot fail on client data — preserving
    # the absorb-before-charge invariant across the queue boundary.
    # ------------------------------------------------------------------
    def validate_reports(self, reports: Any) -> None:
        """Raise ``ValueError`` iff :meth:`absorb` would; no mutation."""

    def validate_columns(self, block: ColumnBlock) -> None:
        """Raise ``ValueError`` iff :meth:`absorb_columns` would."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support columnar absorption"
        )

    @abc.abstractmethod
    def merge(self, other: "ServerAccumulator") -> "ServerAccumulator":
        """Fold another accumulator's state into this one."""

    @abc.abstractmethod
    def estimate(self) -> Any:
        """Current unbiased estimate; raises ``ValueError`` with no data."""

    @property
    @abc.abstractmethod
    def count(self) -> int:
        """Reports absorbed so far (via absorb and merge)."""

    # ------------------------------------------------------------------
    # Snapshot hooks (used by repro.service for wire transfer and
    # durable checkpoints).  ``state_dict`` returns plain python
    # scalars, dicts, and numpy arrays — raw sufficient statistics, no
    # configuration (that lives in the ProtocolSpec).  ``load_state``
    # restores them bitwise into a freshly built accumulator of the
    # same protocol.
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Snapshot of the sufficient statistics; see :meth:`load_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def load_state(self, state: Dict) -> "ServerAccumulator":
        """Restore :meth:`state_dict` output bitwise; returns ``self``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def _require_reports(self) -> None:
        if self.count == 0:
            raise ValueError("no reports received yet")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(count={self.count})"


class MeanAccumulator(ServerAccumulator):
    """Scalar running mean of 1-D numeric reports.

    Serves the ``mean`` protocol kind: every mechanism in
    :mod:`repro.core` is unbiased, so the estimator is the plain average
    of the perturbed reports (the legacy
    :meth:`repro.core.mechanism.NumericMechanism.estimate_mean`).
    """

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def absorb(self, reports: Any) -> "MeanAccumulator":
        arr = np.atleast_1d(np.asarray(reports, dtype=float))
        if arr.ndim != 1:
            raise ValueError(
                f"mean reports must be a flat array, got shape {arr.shape}"
            )
        self._sum += float(arr.sum())
        self._count += arr.shape[0]
        return self

    def validate_reports(self, reports: Any) -> None:
        arr = np.atleast_1d(np.asarray(reports, dtype=float))
        if arr.ndim != 1:
            raise ValueError(
                f"mean reports must be a flat array, got shape {arr.shape}"
            )

    def validate_columns(self, block: ColumnBlock) -> None:
        if block.kind != "array":
            raise ValueError(
                f"MeanAccumulator absorbs 'array' columns, got "
                f"{block.kind!r}"
            )
        self.validate_reports(block.column("array"))

    def absorb_columns(self, block: ColumnBlock) -> "MeanAccumulator":
        if block.kind != "array":
            raise ValueError(
                f"MeanAccumulator absorbs 'array' columns, got "
                f"{block.kind!r}"
            )
        return self.absorb(block.column("array"))

    def merge(self, other: "ServerAccumulator") -> "MeanAccumulator":
        if not isinstance(other, MeanAccumulator):
            raise ValueError(
                f"cannot merge {type(other).__name__} into MeanAccumulator"
            )
        self._sum += other._sum
        self._count += other._count
        return self

    @property
    def count(self) -> int:
        return self._count

    def state_dict(self) -> Dict:
        return {"sum": self._sum, "count": self._count}

    def load_state(self, state: Dict) -> "MeanAccumulator":
        self._sum = float(state["sum"])
        self._count = int(state["count"])
        return self

    def estimate(self) -> float:
        self._require_reports()
        return self._sum / self._count


class MultidimMeanAccumulator(ServerAccumulator):
    """Per-attribute running means over d-dimensional numeric reports.

    Absorbs either the compact :class:`SampledNumericReports` wire
    format or legacy dense (m, d) submission matrices; both paths keep
    only the d running sums and the user count.
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self._sums = np.zeros(self.d)
        self._count = 0

    def absorb(self, reports: Any) -> "MultidimMeanAccumulator":
        if isinstance(reports, SampledNumericReports):
            if reports.d != self.d:
                raise ValueError(
                    f"reports cover d={reports.d} attributes, "
                    f"accumulator expects d={self.d}"
                )
            self._sums += np.bincount(
                reports.cols.ravel(),
                weights=reports.values.ravel(),
                minlength=self.d,
            )
            self._count += reports.n
            return self
        arr = np.asarray(reports, dtype=float)
        # Uniform empty-batch no-op: a size-0 array is accepted in any
        # shape (an empty list cannot carry a column count).
        if arr.size == 0:
            return self
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.d:
            raise ValueError(
                f"batch must be (m, {self.d}), got shape {arr.shape}"
            )
        self._sums += arr.sum(axis=0)
        self._count += arr.shape[0]
        return self

    def validate_reports(self, reports: Any) -> None:
        if isinstance(reports, SampledNumericReports):
            if reports.d != self.d:
                raise ValueError(
                    f"reports cover d={reports.d} attributes, "
                    f"accumulator expects d={self.d}"
                )
            return
        arr = np.asarray(reports, dtype=float)
        if arr.size == 0:
            return
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.d:
            raise ValueError(
                f"batch must be (m, {self.d}), got shape {arr.shape}"
            )

    def _checked_sampled_columns(self, block: ColumnBlock):
        """Validated (cols, values) from a sampled-numeric block.

        Applies the same coercions and checks as
        ``SampledNumericReports.__post_init__`` plus the d-match
        ``absorb`` performs, without building the container.
        """
        d = int(block.meta.get("d", -1))
        if d != self.d:
            raise ValueError(
                f"columnar reports cover d={d} attributes, accumulator "
                f"expects d={self.d}"
            )
        cols = np.asarray(block.column("cols"), dtype=np.int64)
        values = np.asarray(block.column("values"), dtype=float)
        if cols.ndim != 2 or cols.shape != values.shape:
            raise ValueError(
                f"cols and values must be matching (n, k) matrices, "
                f"got {cols.shape} and {values.shape}"
            )
        if cols.size and (cols.min() < 0 or cols.max() >= self.d):
            raise ValueError(
                f"sampled indices must lie in [0, {self.d - 1}]"
            )
        return cols, values

    def validate_columns(self, block: ColumnBlock) -> None:
        if block.kind == "sampled-numeric":
            self._checked_sampled_columns(block)
            return
        if block.kind == "array":
            self.validate_reports(block.column("array"))
            return
        raise ValueError(
            f"MultidimMeanAccumulator absorbs 'sampled-numeric' or "
            f"'array' columns, got {block.kind!r}"
        )

    def absorb_columns(
        self, block: ColumnBlock
    ) -> "MultidimMeanAccumulator":
        if block.kind == "array":
            return self.absorb(block.column("array"))
        if block.kind != "sampled-numeric":
            raise ValueError(
                f"MultidimMeanAccumulator absorbs 'sampled-numeric' or "
                f"'array' columns, got {block.kind!r}"
            )
        cols, values = self._checked_sampled_columns(block)
        # Same reduction as the object path's absorb — bitwise equal.
        self._sums += np.bincount(
            cols.ravel(), weights=values.ravel(), minlength=self.d
        )
        self._count += cols.shape[0]
        return self

    def merge(self, other: "ServerAccumulator") -> "MultidimMeanAccumulator":
        if not isinstance(other, MultidimMeanAccumulator) or other.d != self.d:
            raise ValueError("cannot merge aggregators of different d")
        self._sums += other._sums
        self._count += other._count
        return self

    @property
    def count(self) -> int:
        return self._count

    def state_dict(self) -> Dict:
        # Copies: a snapshot must stay stable while absorbs continue.
        return {"sums": self._sums.copy(), "count": self._count}

    def load_state(self, state: Dict) -> "MultidimMeanAccumulator":
        sums = np.asarray(state["sums"], dtype=float)
        if sums.shape != (self.d,):
            raise ValueError(
                f"state covers {sums.shape} sums, accumulator expects "
                f"({self.d},)"
            )
        self._sums = sums.copy()
        self._count = int(state["count"])
        return self

    def estimate(self) -> np.ndarray:
        self._require_reports()
        return self._sums / self._count


class FrequencyAccumulator(ServerAccumulator):
    """Running debiased support counts for one categorical attribute.

    Works with any registered oracle; the state is the oracle's length-k
    support-count vector plus the report count.  Counts are integral, so
    absorb/merge order never changes the estimate.
    """

    def __init__(self, oracle: FrequencyOracle) -> None:
        self.oracle = oracle
        self._support = np.zeros(oracle.k)
        self._count = 0

    def absorb(self, reports: Any) -> "FrequencyAccumulator":
        # Compute both deltas before mutating: a report batch the
        # oracle rejects must leave the state untouched.
        support = self.oracle.support_counts(reports)
        n = self.oracle._n_reports(reports)
        self._support += support
        self._count += n
        return self

    def validate_reports(self, reports: Any) -> None:
        if isinstance(reports, OLHReports):
            return  # structurally validated by its __post_init__
        arr = np.asarray(reports)
        if arr.ndim == 2:
            if arr.shape[1] != self.oracle.k:
                raise ValueError(
                    f"report matrix is (n, {arr.shape[1]}), oracle "
                    f"domain is k={self.oracle.k}"
                )
            return
        if arr.ndim == 1:
            if arr.size == 0:
                return
            if not np.issubdtype(arr.dtype, np.integer) and not np.all(
                arr == np.floor(arr)
            ):
                raise ValueError(
                    "integer-valued reports required for this oracle"
                )
            if arr.min() < 0 or arr.max() >= self.oracle.k:
                raise ValueError(
                    f"report values must lie in [0, {self.oracle.k - 1}]"
                )
            return
        raise ValueError(
            f"frequency reports must be a vector or matrix, got shape "
            f"{arr.shape}"
        )

    def validate_columns(self, block: ColumnBlock) -> None:
        if block.kind == "olh":
            OLHReports.from_columns(block.columns)  # shape check only
            return
        if block.kind == "array":
            self.validate_reports(block.column("array"))
            return
        raise ValueError(
            f"FrequencyAccumulator absorbs 'array' or 'olh' columns, "
            f"got {block.kind!r}"
        )

    def absorb_columns(self, block: ColumnBlock) -> "FrequencyAccumulator":
        if block.kind == "olh":
            # Zero-copy view over the seed/bucket columns — the oracle
            # counts support directly on the transported arrays.
            return self.absorb(OLHReports.from_columns(block.columns))
        if block.kind != "array":
            raise ValueError(
                f"FrequencyAccumulator absorbs 'array' or 'olh' "
                f"columns, got {block.kind!r}"
            )
        return self.absorb(block.column("array"))

    def merge(self, other: "ServerAccumulator") -> "FrequencyAccumulator":
        if not isinstance(other, FrequencyAccumulator):
            raise ValueError(
                f"cannot merge {type(other).__name__} into "
                "FrequencyAccumulator"
            )
        if other.oracle.k != self.oracle.k:
            raise ValueError("cannot merge aggregators of different domains")
        if (
            other.oracle.support_probabilities
            != self.oracle.support_probabilities
        ):
            raise ValueError(
                "cannot merge aggregators with different oracle "
                "support probabilities"
            )
        self._support += other._support
        self._count += other._count
        return self

    @property
    def count(self) -> int:
        return self._count

    def state_dict(self) -> Dict:
        # Copies: a snapshot must stay stable while absorbs continue.
        return {"support": self._support.copy(), "count": self._count}

    def load_state(self, state: Dict) -> "FrequencyAccumulator":
        support = np.asarray(state["support"], dtype=float)
        if support.shape != (self.oracle.k,):
            raise ValueError(
                f"state covers {support.shape} support counts, "
                f"accumulator expects ({self.oracle.k},)"
            )
        self._support = support.copy()
        self._count = int(state["count"])
        return self

    def debiased_counts(self) -> np.ndarray:
        """Sum of unbiased per-report indicators, per domain value."""
        p, q = self.oracle.support_probabilities
        return (self._support - self._count * q) / (p - q)

    def estimate(self) -> np.ndarray:
        self._require_reports()
        return self.debiased_counts() / self._count


class HistogramAccumulator(FrequencyAccumulator):
    """Frequency accumulation over histogram buckets, with projection.

    Same sufficient statistics as :class:`FrequencyAccumulator`;
    :meth:`estimate` additionally post-processes the raw frequency
    vector into a valid histogram over the given bin edges, exactly as
    :meth:`repro.frequency.histogram.LDPHistogram.estimate` does.
    """

    def __init__(
        self, oracle: FrequencyOracle, edges: Any, postprocess: str
    ) -> None:
        super().__init__(oracle)
        self.edges = np.asarray(edges, dtype=float)
        if self.edges.shape != (oracle.k + 1,):
            raise ValueError(
                f"edges must have length k+1={oracle.k + 1}, got "
                f"{self.edges.shape}"
            )
        self.postprocess = postprocess

    def merge(self, other: "ServerAccumulator") -> "HistogramAccumulator":
        if not isinstance(other, HistogramAccumulator):
            raise ValueError(
                f"cannot merge {type(other).__name__} into "
                "HistogramAccumulator"
            )
        if (
            not np.array_equal(other.edges, self.edges)
            or other.postprocess != self.postprocess
        ):
            raise ValueError(
                "cannot merge histogram accumulators with different bin "
                "edges or post-processing"
            )
        super().merge(other)
        return self

    def estimate(self) -> "HistogramEstimate":
        from repro.frequency.histogram import HistogramEstimate, LDPHistogram
        from repro.frequency.postprocess import postprocess as run_postprocess

        self._require_reports()
        raw = self.debiased_counts() / self._count
        if self.postprocess == "none":
            projected = LDPHistogram._project(raw)
        else:
            projected = run_postprocess(raw, self.postprocess)
        return HistogramEstimate(
            histogram=projected, raw=raw, edges=self.edges
        )


class MixedAccumulator(ServerAccumulator):
    """Mergeable server state for the Section IV-C mixed protocol.

    State: one running-sum vector over the numeric attributes, one
    :class:`FrequencyAccumulator` per categorical attribute, and the
    user count.  Produces the same :class:`MixedEstimates` as the
    legacy one-shot ``MixedMultidimCollector.aggregate`` (same
    debiasing, same d/k scaling).
    """

    def __init__(
        self,
        schema: Any,
        oracles: Dict[str, FrequencyOracle],
        d: int,
        k: int,
    ) -> None:
        self.schema = schema
        self.d = int(d)
        self.k = int(k)
        self._numeric_sums = np.zeros(len(schema.numeric))
        self._frequency: Dict[str, FrequencyAccumulator] = {
            a.name: FrequencyAccumulator(oracles[a.name])
            for a in schema.categorical
        }
        self._users = 0

    @classmethod
    def for_collector(cls, collector: Any) -> "MixedAccumulator":
        """The accumulator matching a ``MixedMultidimCollector``."""
        return cls(
            schema=collector.schema,
            oracles=collector.oracles,
            d=collector.d,
            k=collector.k,
        )

    def absorb(self, reports: Any) -> "MixedAccumulator":
        # Validate the whole batch before mutating anything: a bad
        # categorical attribute must not leave the numeric sums
        # half-updated.
        self.validate_reports(reports)
        numeric = np.asarray(reports.numeric, dtype=float)
        self._numeric_sums += numeric.sum(axis=0)
        for name, oracle_reports in reports.categorical.items():
            self._frequency[name].absorb(oracle_reports)
        self._users += reports.n
        return self

    def validate_reports(self, reports: Any) -> None:
        numeric = np.asarray(reports.numeric, dtype=float)
        if numeric.ndim != 2 or numeric.shape[1] != self._numeric_sums.shape[0]:
            raise ValueError(
                f"numeric block must be (m, {self._numeric_sums.shape[0]}), "
                f"got shape {numeric.shape}"
            )
        for name, oracle_reports in reports.categorical.items():
            if name not in self._frequency:
                raise ValueError(
                    f"reports carry categorical attribute {name!r} not in "
                    f"this accumulator's schema "
                    f"{[a.name for a in self.schema.categorical]}"
                )
            self._frequency[name].validate_reports(oracle_reports)

    def _sub_blocks(self, block: ColumnBlock):
        """(name, sub-accumulator, sub-block) triples of a mixed block,
        in the header's categorical order (the encoding order — the
        same order the object path's absorb would use)."""
        categorical = block.meta.get("categorical")
        if not isinstance(categorical, dict):
            raise ValueError(
                "mixed columnar block carries no 'categorical' kind map"
            )
        out = []
        for name, kind in categorical.items():
            if name not in self._frequency:
                raise ValueError(
                    f"columns carry categorical attribute {name!r} not "
                    f"in this accumulator's schema "
                    f"{[a.name for a in self.schema.categorical]}"
                )
            sub = block.sub_block(name, str(kind), block.n)
            out.append((name, self._frequency[name], sub))
        return out

    def validate_columns(self, block: ColumnBlock) -> None:
        if block.kind != "mixed":
            raise ValueError(
                f"MixedAccumulator absorbs 'mixed' columns, got "
                f"{block.kind!r}"
            )
        numeric = np.asarray(block.column("numeric"), dtype=float)
        if numeric.ndim != 2 or numeric.shape[1] != self._numeric_sums.shape[0]:
            raise ValueError(
                f"numeric block must be (m, {self._numeric_sums.shape[0]}), "
                f"got shape {numeric.shape}"
            )
        for _, acc, sub in self._sub_blocks(block):
            acc.validate_columns(sub)

    def absorb_columns(self, block: ColumnBlock) -> "MixedAccumulator":
        self.validate_columns(block)
        numeric = np.asarray(block.column("numeric"), dtype=float)
        self._numeric_sums += numeric.sum(axis=0)
        for _, acc, sub in self._sub_blocks(block):
            acc.absorb_columns(sub)
        self._users += block.n
        return self

    def merge(self, other: "ServerAccumulator") -> "MixedAccumulator":
        if (
            not isinstance(other, MixedAccumulator)
            or other.schema.names != self.schema.names
            or other.d != self.d
            or other.k != self.k
        ):
            raise ValueError(
                "cannot merge accumulators over different protocols"
            )
        self._numeric_sums += other._numeric_sums
        for name, acc in self._frequency.items():
            acc.merge(other._frequency[name])
        self._users += other._users
        return self

    @property
    def count(self) -> int:
        return self._users

    def state_dict(self) -> Dict:
        # Copies: a snapshot must stay stable while absorbs continue.
        return {
            "numeric_sums": self._numeric_sums.copy(),
            "frequency": {
                name: acc.state_dict()
                for name, acc in self._frequency.items()
            },
            "users": self._users,
        }

    def load_state(self, state: Dict) -> "MixedAccumulator":
        sums = np.asarray(state["numeric_sums"], dtype=float)
        if sums.shape != self._numeric_sums.shape:
            raise ValueError(
                f"state covers {sums.shape} numeric sums, accumulator "
                f"expects {self._numeric_sums.shape}"
            )
        frequency = state["frequency"]
        if set(frequency) != set(self._frequency):
            raise ValueError(
                f"state covers categorical attributes "
                f"{sorted(frequency)}, accumulator expects "
                f"{sorted(self._frequency)}"
            )
        self._numeric_sums = sums.copy()
        for name, sub in frequency.items():
            self._frequency[name].load_state(sub)
        self._users = int(state["users"])
        return self

    def estimate(self) -> "MixedEstimates":
        from repro.multidim.aggregator import MixedEstimates

        self._require_reports()
        means = {
            a.name: float(self._numeric_sums[i] / self._users)
            for i, a in enumerate(self.schema.numeric)
        }
        scale = self.d / self.k
        frequencies = {
            name: scale * acc.debiased_counts() / self._users
            for name, acc in self._frequency.items()
        }
        return MixedEstimates(means=means, frequencies=frequencies)
