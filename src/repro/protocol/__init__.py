"""Client/server protocol API — the canonical public surface.

Wang et al. (ICDE 2019) is a client/server protocol: each user encodes
and perturbs locally, the aggregator debiases from sufficient statistics.
This package makes that split explicit:

* :class:`ClientEncoder` — stateless, vectorized ``encode_batch``;
  adapters cover every numeric mechanism, frequency oracle, and the
  Section IV multidimensional samplers.
* :class:`ServerAccumulator` — ``absorb`` / ``merge`` / ``estimate``
  over sufficient statistics only (O(1) memory per shard; mergeable
  across shards and streams).
* :class:`Protocol` — the façade tying the two halves to a serializable
  :class:`ProtocolSpec`.

Quickstart::

    from repro.protocol import Protocol

    protocol = Protocol.multidim(epsilon=4.0, d=10, mechanism="hm")
    reports = protocol.client().encode_batch(tuples, rng=0)
    means = protocol.server().absorb(reports).estimate()

The legacy monolithic entry points (``MultidimNumericCollector.collect``,
``LDPHistogram.collect``, ...) remain as deprecated shims over this
layer.
"""

from repro.protocol.accumulators import (
    FrequencyAccumulator,
    HistogramAccumulator,
    MeanAccumulator,
    MixedAccumulator,
    MultidimMeanAccumulator,
    ServerAccumulator,
)
from repro.protocol.encoders import (
    ClientEncoder,
    FrequencyEncoder,
    HistogramEncoder,
    MixedEncoder,
    MultidimNumericEncoder,
    NumericMeanEncoder,
)
from repro.protocol.facade import Protocol
from repro.protocol.registry import (
    PRIMITIVE_KINDS,
    available_primitives,
    get_primitive,
    primitive_kind,
)
from repro.protocol.reports import SampledNumericReports
from repro.protocol.spec import (
    PROTOCOL_KINDS,
    SPEC_VERSION,
    ProtocolSpec,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    # facade + spec
    "Protocol",
    "ProtocolSpec",
    "PROTOCOL_KINDS",
    "SPEC_VERSION",
    "schema_to_dict",
    "schema_from_dict",
    # registry
    "PRIMITIVE_KINDS",
    "available_primitives",
    "get_primitive",
    "primitive_kind",
    # client side
    "ClientEncoder",
    "NumericMeanEncoder",
    "FrequencyEncoder",
    "HistogramEncoder",
    "MultidimNumericEncoder",
    "MixedEncoder",
    # server side
    "ServerAccumulator",
    "MeanAccumulator",
    "MultidimMeanAccumulator",
    "FrequencyAccumulator",
    "HistogramAccumulator",
    "MixedAccumulator",
    # reports
    "SampledNumericReports",
]
