"""One registry across both primitive families.

The seed exposed two disjoint lookups — :func:`repro.core.get_mechanism`
for numeric mechanisms and :func:`repro.frequency.get_oracle` for
categorical oracles — forcing callers to know which family a name
belongs to.  The protocol layer resolves any registered primitive name
through a single entry point, and :class:`repro.protocol.spec.ProtocolSpec`
configs can therefore name primitives uniformly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

from repro.core.mechanism import (
    NumericMechanism,
    available_mechanisms,
    get_mechanism,
)
from repro.frequency.oracle import (
    FrequencyOracle,
    available_oracles,
    get_oracle,
)

#: The two primitive families the unified registry spans.
PRIMITIVE_KINDS = ("numeric", "categorical")

Primitive = Union[NumericMechanism, FrequencyOracle]


def available_primitives() -> Dict[str, Tuple[str, ...]]:
    """All registered primitive names, grouped by family."""
    return {
        "numeric": available_mechanisms(),
        "categorical": available_oracles(),
    }


def primitive_kind(name: str) -> str:
    """Which family a primitive name belongs to.

    Raises ``KeyError`` for unknown names and ``ValueError`` should a
    name ever be registered in both families (resolve those explicitly
    via :func:`get_primitive`'s ``kind`` argument).
    """
    in_numeric = name in available_mechanisms()
    in_categorical = name in available_oracles()
    if in_numeric and in_categorical:
        raise ValueError(
            f"primitive name {name!r} is registered as both a numeric "
            "mechanism and a frequency oracle; pass kind= explicitly"
        )
    if in_numeric:
        return "numeric"
    if in_categorical:
        return "categorical"
    raise KeyError(
        f"unknown primitive {name!r}; available: {available_primitives()}"
    )


def get_primitive(
    name: str,
    epsilon: float,
    domain: Optional[int] = None,
    kind: Optional[str] = None,
    **kwargs: Any,
) -> Primitive:
    """Instantiate any registered primitive by name.

    Parameters
    ----------
    name:
        A registered numeric-mechanism or frequency-oracle name.
    epsilon:
        Privacy budget handed to the primitive.
    domain:
        Domain cardinality; required for (and only for) categorical
        primitives.
    kind:
        Optional family override ("numeric" / "categorical"); only needed
        if a name were registered in both families.
    """
    if kind is None:
        kind = primitive_kind(name)
    if kind not in PRIMITIVE_KINDS:
        raise ValueError(
            f"kind must be one of {PRIMITIVE_KINDS}, got {kind!r}"
        )
    if kind == "numeric":
        if domain is not None:
            raise ValueError(
                f"numeric primitive {name!r} takes no domain cardinality"
            )
        return get_mechanism(name, epsilon, **kwargs)
    if domain is None:
        raise ValueError(
            f"categorical primitive {name!r} requires a domain cardinality"
        )
    return get_oracle(name, epsilon, domain, **kwargs)
