"""Typed protocol configuration with dict round-tripping.

A :class:`ProtocolSpec` pins down everything needed to rebuild a
protocol — kind, budget, primitive names, dimensions — so deployments
can store configs as JSON and rebuild byte-identical client/server
pairs with ``Protocol.from_spec(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.core.validation import check_epsilon
from repro.data.schema import (
    CategoricalAttribute,
    NumericAttribute,
    Schema,
)

#: Protocol kinds understood by the facade.
PROTOCOL_KINDS = (
    "mean",
    "frequency",
    "histogram",
    "multidim-numeric",
    "multidim-mixed",
)


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """JSON-friendly encoding of a :class:`Schema`."""
    attributes = []
    for a in schema.attributes:
        if a.is_numeric:
            attributes.append(
                {
                    "name": a.name,
                    "type": "numeric",
                    "low": a.low,
                    "high": a.high,
                }
            )
        else:
            attributes.append(
                {
                    "name": a.name,
                    "type": "categorical",
                    "cardinality": a.cardinality,
                }
            )
    return {"attributes": attributes}


def schema_from_dict(payload: Dict[str, Any]) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    attributes = []
    for spec in payload["attributes"]:
        kind = spec.get("type")
        if kind == "numeric":
            attributes.append(
                NumericAttribute(
                    name=spec["name"],
                    low=float(spec.get("low", -1.0)),
                    high=float(spec.get("high", 1.0)),
                )
            )
        elif kind == "categorical":
            attributes.append(
                CategoricalAttribute(
                    name=spec["name"], cardinality=int(spec["cardinality"])
                )
            )
        else:
            raise ValueError(
                f"attribute type must be 'numeric' or 'categorical', "
                f"got {kind!r}"
            )
    return Schema(attributes)


@dataclass(frozen=True)
class ProtocolSpec:
    """Complete, serializable description of one protocol.

    Which fields apply depends on ``kind``:

    =================  ==================================================
    kind               required / optional fields
    =================  ==================================================
    mean               mechanism
    frequency          oracle, domain
    histogram          oracle, bins, postprocess
    multidim-numeric   mechanism, d, k (optional override of Eq. 12)
    multidim-mixed     mechanism, oracle, schema, k (optional)
    =================  ==================================================
    """

    kind: str
    epsilon: float
    mechanism: Optional[str] = None
    oracle: Optional[str] = None
    d: Optional[int] = None
    k: Optional[int] = None
    domain: Optional[int] = None
    bins: Optional[int] = None
    postprocess: Optional[str] = None
    schema: Optional[Schema] = None

    def __post_init__(self):
        if self.kind not in PROTOCOL_KINDS:
            raise ValueError(
                f"kind must be one of {PROTOCOL_KINDS}, got {self.kind!r}"
            )
        check_epsilon(self.epsilon)
        requirements = {
            "mean": ("mechanism",),
            "frequency": ("oracle", "domain"),
            "histogram": ("oracle", "bins", "postprocess"),
            "multidim-numeric": ("mechanism", "d"),
            "multidim-mixed": ("mechanism", "oracle", "schema"),
        }
        for field_name in requirements[self.kind]:
            if getattr(self, field_name) is None:
                raise ValueError(
                    f"{self.kind!r} protocol requires {field_name!r}"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly encoding; ``from_dict`` round-trips exactly."""
        payload: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            payload[f.name] = (
                schema_to_dict(value) if f.name == "schema" else value
            )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProtocolSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        data = dict(payload)
        if "schema" in data and not isinstance(data["schema"], Schema):
            data["schema"] = schema_from_dict(data["schema"])
        return cls(**data)
