"""Typed protocol configuration with dict round-tripping.

A :class:`ProtocolSpec` pins down everything needed to rebuild a
protocol — kind, budget, primitive names, dimensions — so deployments
can store configs as JSON and rebuild byte-identical client/server
pairs with ``Protocol.from_spec(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional

from repro.core.validation import check_epsilon
from repro.data.schema import (
    Attribute,
    CategoricalAttribute,
    NumericAttribute,
    Schema,
)

#: Protocol kinds understood by the facade.
PROTOCOL_KINDS = (
    "mean",
    "frequency",
    "histogram",
    "multidim-numeric",
    "multidim-mixed",
)

#: Schema version stamped into every ``ProtocolSpec.to_dict`` payload.
#: ``major.minor``: a minor bump may add keys (old readers ignore them),
#: a major bump changes the meaning of existing keys (old readers must
#: reject the payload rather than mis-build a protocol).
SPEC_VERSION = "1.0"
SPEC_MAJOR, SPEC_MINOR = (int(part) for part in SPEC_VERSION.split("."))


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """JSON-friendly encoding of a :class:`Schema`."""
    attributes: List[Dict[str, Any]] = []
    for a in schema.attributes:
        if isinstance(a, NumericAttribute):
            attributes.append(
                {
                    "name": a.name,
                    "type": "numeric",
                    "low": a.low,
                    "high": a.high,
                }
            )
        else:
            attributes.append(
                {
                    "name": a.name,
                    "type": "categorical",
                    "cardinality": a.cardinality,
                }
            )
    return {"attributes": attributes}


def schema_from_dict(payload: Dict[str, Any]) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    attributes: List[Attribute] = []
    for spec in payload["attributes"]:
        kind = spec.get("type")
        if kind == "numeric":
            attributes.append(
                NumericAttribute(
                    name=spec["name"],
                    low=float(spec.get("low", -1.0)),
                    high=float(spec.get("high", 1.0)),
                )
            )
        elif kind == "categorical":
            attributes.append(
                CategoricalAttribute(
                    name=spec["name"], cardinality=int(spec["cardinality"])
                )
            )
        else:
            raise ValueError(
                f"attribute type must be 'numeric' or 'categorical', "
                f"got {kind!r}"
            )
    return Schema(attributes)


@dataclass(frozen=True)
class ProtocolSpec:
    """Complete, serializable description of one protocol.

    Which fields apply depends on ``kind``:

    =================  ==================================================
    kind               required / optional fields
    =================  ==================================================
    mean               mechanism
    frequency          oracle, domain
    histogram          oracle, bins, postprocess
    multidim-numeric   mechanism, d, k (optional override of Eq. 12)
    multidim-mixed     mechanism, oracle, schema, k (optional)
    =================  ==================================================
    """

    kind: str
    epsilon: float
    mechanism: Optional[str] = None
    oracle: Optional[str] = None
    d: Optional[int] = None
    k: Optional[int] = None
    domain: Optional[int] = None
    bins: Optional[int] = None
    postprocess: Optional[str] = None
    schema: Optional[Schema] = None

    def __post_init__(self) -> None:
        if self.kind not in PROTOCOL_KINDS:
            raise ValueError(
                f"kind must be one of {PROTOCOL_KINDS}, got {self.kind!r}"
            )
        check_epsilon(self.epsilon)
        requirements = {
            "mean": ("mechanism",),
            "frequency": ("oracle", "domain"),
            "histogram": ("oracle", "bins", "postprocess"),
            "multidim-numeric": ("mechanism", "d"),
            "multidim-mixed": ("mechanism", "oracle", "schema"),
        }
        for field_name in requirements[self.kind]:
            if getattr(self, field_name) is None:
                raise ValueError(
                    f"{self.kind!r} protocol requires {field_name!r}"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly encoding; ``from_dict`` round-trips exactly.

        The payload is stamped with ``spec_version`` so deployment
        configs stored today survive future schema growth (see
        :data:`SPEC_VERSION`).
        """
        payload: Dict[str, Any] = {"spec_version": SPEC_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            payload[f.name] = (
                schema_to_dict(value) if f.name == "schema" else value
            )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProtocolSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Tolerant across minor schema growth: keys this version does not
        know are ignored *when the payload claims a newer minor* (that
        writer legitimately added them), but a payload from a different
        *major* version is rejected outright — its known keys can no
        longer be trusted to mean the same thing.  Unknown keys in a
        payload from this reader's minor (or older) can only be
        mistakes, so they stay hard errors.  Payloads without
        ``spec_version`` (pre-versioning) are read as ``1.0``.
        """
        data = dict(payload)
        version = str(data.pop("spec_version", SPEC_VERSION))
        parts = version.split(".")
        try:
            major = int(parts[0])
            minor = int(parts[1]) if len(parts) > 1 else 0
        except ValueError:
            raise ValueError(
                f"malformed spec_version {version!r}; expected "
                f"'major.minor'"
            ) from None
        if major != SPEC_MAJOR:
            raise ValueError(
                f"spec_version {version!r} has major {major}, this "
                f"reader understands only major {SPEC_MAJOR}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            if minor > SPEC_MINOR:
                data = {k: v for k, v in data.items() if k in known}
            else:
                raise ValueError(
                    f"unknown spec fields: {sorted(unknown)} (payload "
                    f"claims spec_version {version!r}, which should not "
                    f"carry them)"
                )
        if "schema" in data and not isinstance(data["schema"], Schema):
            data["schema"] = schema_from_dict(data["schema"])
        return cls(**data)
