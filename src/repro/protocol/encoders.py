"""Client-side encoders: stateless, vectorized report producers.

A :class:`ClientEncoder` is the user-device half of a protocol: it maps
a batch of true values to perturbed reports with one vectorized call —
``encode_batch(values, rng) -> reports`` — and carries no per-report
state, so any number of client shards can encode concurrently.  Each
encoder is a thin adapter over an existing primitive
(:class:`~repro.core.mechanism.NumericMechanism`,
:class:`~repro.frequency.oracle.FrequencyOracle`, or the Section IV
samplers), so one interface covers 1-D numeric, categorical, and
d-dimensional mixed tuples.

``new_accumulator()`` returns the matching
:class:`~repro.protocol.accumulators.ServerAccumulator`, so an encoder
fully determines its protocol.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.core.mechanism import NumericMechanism
from repro.frequency.histogram import LDPHistogram
from repro.frequency.oracle import FrequencyOracle
from repro.multidim.collector import (
    MixedMultidimCollector,
    MultidimNumericCollector,
    sample_and_perturb,
)
from repro.protocol.accumulators import (
    FrequencyAccumulator,
    HistogramAccumulator,
    MeanAccumulator,
    MixedAccumulator,
    MultidimMeanAccumulator,
    ServerAccumulator,
)
from repro.protocol.reports import SampledNumericReports
from repro.utils.rng import RngLike, ensure_rng


class ClientEncoder(abc.ABC):
    """One user-side encoding step of an LDP protocol.

    Implementations are stateless per report: encoding a batch touches
    only the supplied ``rng``, so batches may be encoded in any order or
    on any shard.
    """

    @abc.abstractmethod
    def encode_batch(self, values: Any, rng: RngLike = None) -> Any:
        """Perturb a batch of true values into transmit-ready reports.

        An *empty* batch (zero values) is valid for every encoder and
        produces an empty report batch without consuming the rng; the
        matching accumulator absorbs it as a no-op.  This keeps empty
        shards and quiet streaming windows uniform across protocol
        kinds.
        """

    @abc.abstractmethod
    def new_accumulator(self) -> ServerAccumulator:
        """A fresh server accumulator matching this encoder."""

    def __call__(self, values: Any, rng: RngLike = None) -> Any:
        return self.encode_batch(values, rng)


class NumericMeanEncoder(ClientEncoder):
    """Adapter over any 1-D :class:`NumericMechanism` (mean protocol)."""

    def __init__(self, mechanism: NumericMechanism) -> None:
        self.mechanism = mechanism

    def encode_batch(self, values: Any, rng: RngLike = None) -> np.ndarray:
        return np.atleast_1d(self.mechanism.privatize(values, rng))

    def new_accumulator(self) -> MeanAccumulator:
        return MeanAccumulator()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumericMeanEncoder({self.mechanism!r})"


class FrequencyEncoder(ClientEncoder):
    """Adapter over any :class:`FrequencyOracle` (frequency protocol)."""

    def __init__(self, oracle: FrequencyOracle) -> None:
        self.oracle = oracle

    def encode_batch(self, values: Any, rng: RngLike = None) -> Any:
        return self.oracle.privatize(values, rng)

    def new_accumulator(self) -> FrequencyAccumulator:
        return FrequencyAccumulator(self.oracle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrequencyEncoder({self.oracle!r})"


class HistogramEncoder(ClientEncoder):
    """Bucketize-then-perturb encoder for distribution estimation."""

    def __init__(self, histogram: LDPHistogram) -> None:
        self.histogram = histogram

    def encode_batch(self, values: Any, rng: RngLike = None) -> Any:
        return self.histogram.privatize(values, rng)

    def new_accumulator(self) -> HistogramAccumulator:
        return HistogramAccumulator(
            oracle=self.histogram.oracle,
            edges=self.histogram.edges,
            postprocess=self.histogram.postprocess,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramEncoder(bins={self.histogram.bins}, "
            f"oracle={self.histogram.oracle_name!r})"
        )


class MultidimNumericEncoder(ClientEncoder):
    """Algorithm 4 client: sample k of d attributes, perturb, scale.

    Emits the compact :class:`SampledNumericReports` wire format — the
    k (index, value) pairs a real client would transmit — rather than
    the legacy dense (n, d) matrix.  Consumes the rng stream in exactly
    the same order as ``MultidimNumericCollector.privatize``, so
    seed-matched runs agree with the legacy path.
    """

    def __init__(self, collector: MultidimNumericCollector) -> None:
        self.collector = collector

    def encode_batch(
        self, tuples: Any, rng: RngLike = None
    ) -> SampledNumericReports:
        c = self.collector
        gen = ensure_rng(rng)
        sampled, noisy = sample_and_perturb(
            c.mechanism, tuples, c.d, c.k, gen
        )
        return SampledNumericReports(
            d=c.d, k=c.k, cols=sampled, values=(c.d / c.k) * noisy
        )

    def new_accumulator(self) -> MultidimMeanAccumulator:
        return MultidimMeanAccumulator(self.collector.d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultidimNumericEncoder({self.collector!r})"


class MixedEncoder(ClientEncoder):
    """Section IV-C client for mixed numeric + categorical tuples."""

    def __init__(self, collector: MixedMultidimCollector) -> None:
        self.collector = collector

    def encode_batch(self, dataset: Any, rng: RngLike = None) -> Any:
        return self.collector.privatize(dataset, rng)

    def new_accumulator(self) -> MixedAccumulator:
        return MixedAccumulator.for_collector(self.collector)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MixedEncoder({self.collector!r})"
