"""repro — a reproduction of Wang et al., "Collecting and Analyzing
Multidimensional Data with Local Differential Privacy" (ICDE 2019).

Public API highlights
---------------------

The protocol API (canonical since v1.1) makes the client/server split
explicit — clients encode, servers absorb and merge::

    from repro import Protocol
    protocol = Protocol.multidim(epsilon=4.0, d=10, mechanism="hm")
    reports = protocol.client().encode_batch(tuples, rng=0)
    means = protocol.server().absorb(reports).estimate()

1-D numeric mechanisms (Section III)::

    from repro import PiecewiseMechanism, HybridMechanism
    pm = PiecewiseMechanism(epsilon=1.0)
    noisy = pm.privatize(values, rng=0)          # values in [-1, 1]

Multidimensional collection (Section IV; legacy one-shot shim)::

    from repro import MultidimNumericCollector, MixedMultidimCollector
    collector = MultidimNumericCollector(epsilon=4.0, d=10, mechanism="hm")
    means = collector.collect(tuples, rng=0)     # deprecated shortcut

LDP-SGD (Section V)::

    from repro import LogisticRegression
    model = LogisticRegression(epsilon=2.0, method="hm").fit(X, y, rng=0)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.analysis import (
    PrivacyAccountant,
    compare_mechanisms,
    mean_interval,
    required_epsilon,
    required_users,
)
from repro.core import (
    DuchiMechanism,
    DuchiMultidimMechanism,
    HybridMechanism,
    LaplaceMechanism,
    NumericMechanism,
    PiecewiseMechanism,
    SCDFMechanism,
    StaircaseMechanism,
    available_mechanisms,
    get_mechanism,
)
from repro.data import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
    make_br_like,
    make_mx_like,
)
from repro.frequency import (
    FrequencyOracle,
    LDPHistogram,
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    available_oracles,
    get_oracle,
)
from repro.multidim import (
    MixedEstimates,
    MixedMultidimCollector,
    MultidimNumericCollector,
    SplitCompositionBaseline,
)
from repro.protocol import (
    ClientEncoder,
    Protocol,
    ProtocolSpec,
    ServerAccumulator,
    available_primitives,
    get_primitive,
)
from repro.runtime import (
    ParallelRunner,
    ShardPlan,
    StreamingRunner,
    run_sharded,
)
from repro.sgd import (
    LDPSGDTrainer,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    NonPrivateSGDTrainer,
    SupportVectorMachine,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # protocol (canonical client/server API)
    "Protocol",
    "ProtocolSpec",
    "ClientEncoder",
    "ServerAccumulator",
    "available_primitives",
    "get_primitive",
    # runtime (sharded / parallel / streaming execution)
    "ShardPlan",
    "ParallelRunner",
    "StreamingRunner",
    "run_sharded",
    # core
    "NumericMechanism",
    "available_mechanisms",
    "get_mechanism",
    "LaplaceMechanism",
    "SCDFMechanism",
    "StaircaseMechanism",
    "DuchiMechanism",
    "DuchiMultidimMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    # frequency
    "FrequencyOracle",
    "available_oracles",
    "get_oracle",
    "GeneralizedRandomizedResponse",
    "SymmetricUnaryEncoding",
    "OptimizedUnaryEncoding",
    "OptimizedLocalHashing",
    # multidim
    "MultidimNumericCollector",
    "MixedMultidimCollector",
    "SplitCompositionBaseline",
    "MixedEstimates",
    # data
    "NumericAttribute",
    "CategoricalAttribute",
    "Schema",
    "Dataset",
    "make_br_like",
    "make_mx_like",
    # sgd
    "LDPSGDTrainer",
    "NonPrivateSGDTrainer",
    "LinearRegression",
    "LogisticRegression",
    "SupportVectorMachine",
    "MLPClassifier",
    # analysis
    "PrivacyAccountant",
    "mean_interval",
    "required_users",
    "required_epsilon",
    "compare_mechanisms",
    # histogram
    "LDPHistogram",
]
