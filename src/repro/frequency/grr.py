"""Generalized Randomized Response (k-ary randomized response).

The direct generalization of Warner's 1965 randomized response: report
the true value with probability p = e^eps / (e^eps + k - 1), otherwise a
uniformly random *other* value.  Support for v means "the report equals
v", so q = 1 / (e^eps + k - 1).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.frequency.oracle import FrequencyOracle, register_oracle
from repro.utils.rng import RngLike, ensure_rng


@register_oracle
class GeneralizedRandomizedResponse(FrequencyOracle):
    """k-ary randomized response ('direct encoding')."""

    name = "grr"

    @property
    def support_probabilities(self) -> Tuple[float, float]:
        e = math.exp(self.epsilon)
        return e / (e + self.k - 1.0), 1.0 / (e + self.k - 1.0)

    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        gen = ensure_rng(rng)
        truth = self._check_values(values)
        p, _ = self.support_probabilities
        keep = gen.random(truth.shape) < p
        # A uniform draw over the k-1 *other* values: draw over k-1 slots
        # and shift those at or above the true value up by one.
        others = gen.integers(0, self.k - 1, size=truth.shape)
        others = np.where(others >= truth, others + 1, others)
        return np.where(keep, truth, others)

    def support_counts(self, reports) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        return np.bincount(reports, minlength=self.k).astype(float)

    def output_probabilities(self, value: int) -> np.ndarray:
        """Exact report pmf given the true value; used by the DP tests."""
        p, q = self.support_probabilities
        pmf = np.full(self.k, q)
        pmf[value] = p
        return pmf
