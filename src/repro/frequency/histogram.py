"""Distribution (histogram) estimation for numeric attributes under LDP.

The paper estimates a numeric attribute's *mean*; a natural companion
task (and the backbone of the related work it cites, e.g. RAPPOR and
Duchi et al.'s probability estimation) is the attribute's *distribution*.
This module bucketizes [-1, 1] into B equal-width bins, treats the bin
index as a categorical value, runs any registered frequency oracle, and
post-processes the estimate into a valid histogram:

* clip negatives and renormalize to a probability vector,
* expose CDF and quantile queries, and
* a mean-from-histogram estimate (a sanity cross-check against PM/HM).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.validation import check_epsilon, check_unit_interval
from repro.frequency.oracle import get_oracle
from repro.utils.rng import RngLike, ensure_rng


class LDPHistogram:
    """Equal-width histogram over [-1, 1] estimated under eps-LDP.

    Parameters
    ----------
    epsilon:
        Privacy budget per user.
    bins:
        Number of equal-width buckets over [-1, 1].
    oracle:
        Registered frequency oracle name ("oue" by default).
    """

    def __init__(
        self,
        epsilon: float,
        bins: int = 16,
        oracle: str = "oue",
        postprocess: str = "norm-sub",
    ):
        self.epsilon = check_epsilon(epsilon)
        bins = int(bins)
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        self.bins = bins
        self.oracle_name = oracle
        self.oracle = get_oracle(oracle, self.epsilon, bins)
        from repro.frequency.postprocess import METHODS

        if postprocess not in METHODS:
            raise ValueError(
                f"unknown postprocess {postprocess!r}; "
                f"choose from {tuple(METHODS)}"
            )
        self.postprocess = postprocess
        self.edges = np.linspace(-1.0, 1.0, bins + 1)
        self.centers = (self.edges[:-1] + self.edges[1:]) / 2.0

    # ------------------------------------------------------------------
    def bucketize(self, values) -> np.ndarray:
        """Map values in [-1, 1] to bin indices in {0, ..., bins-1}."""
        arr = np.atleast_1d(check_unit_interval(values))
        idx = np.floor((arr + 1.0) / 2.0 * self.bins).astype(np.int64)
        return np.clip(idx, 0, self.bins - 1)

    def privatize(self, values, rng: RngLike = None):
        """User side: bucketize then perturb the bucket index."""
        return self.oracle.privatize(self.bucketize(values), ensure_rng(rng))

    # ------------------------------------------------------------------
    def estimate(self, reports) -> "HistogramEstimate":
        """Aggregator side: debiased, projected histogram estimate.

        Thin wrapper over the mergeable protocol-layer state; see
        :class:`repro.protocol.accumulators.HistogramAccumulator` for
        the sharded / streaming version.
        """
        from repro.protocol.accumulators import HistogramAccumulator

        return (
            HistogramAccumulator(self.oracle, self.edges, self.postprocess)
            .absorb(reports)
            .estimate()
        )

    @staticmethod
    def _project(raw: np.ndarray) -> np.ndarray:
        """Legacy clip+rescale projection (kept as the 'none' fallback
        so estimates are always valid histograms)."""
        clipped = np.clip(raw, 0.0, None)
        total = clipped.sum()
        if total <= 0.0:
            # Degenerate all-noise case: fall back to uniform.
            return np.full_like(raw, 1.0 / raw.shape[0])
        return clipped / total

    def collect(self, values, rng: RngLike = None) -> "HistogramEstimate":
        """privatize + estimate in one call.

        .. deprecated:: 1.1
            Monolithic client+server shortcut.  Use
            ``repro.protocol.Protocol.histogram(epsilon, bins=...)``
            with ``client().encode_batch`` and
            ``server().absorb(...).estimate()`` instead.
        """
        warnings.warn(
            "LDPHistogram.collect() is deprecated; use "
            "repro.protocol.Protocol.histogram(...) (client/server API) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate(self.privatize(values, rng))


class HistogramEstimate:
    """A projected histogram with CDF / quantile / mean queries."""

    def __init__(self, histogram: np.ndarray, raw: np.ndarray,
                 edges: np.ndarray):
        self.histogram = np.asarray(histogram, dtype=float)
        self.raw = np.asarray(raw, dtype=float)
        self.edges = np.asarray(edges, dtype=float)
        self.centers = (self.edges[:-1] + self.edges[1:]) / 2.0

    def cdf(self, x: float) -> float:
        """P[value <= x] under the estimated histogram (piecewise linear
        within bins)."""
        x = float(np.clip(x, -1.0, 1.0))
        total = 0.0
        for i, mass in enumerate(self.histogram):
            lo, hi = self.edges[i], self.edges[i + 1]
            if x >= hi:
                total += mass
            elif x > lo:
                total += mass * (x - lo) / (hi - lo)
        return float(min(max(total, 0.0), 1.0))

    def quantile(self, q: float) -> float:
        """Inverse CDF by accumulating bin masses."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        cumulative = 0.0
        for i, mass in enumerate(self.histogram):
            if cumulative + mass >= q:
                lo, hi = self.edges[i], self.edges[i + 1]
                if mass == 0.0:
                    return float(lo)
                return float(lo + (q - cumulative) / mass * (hi - lo))
            cumulative += mass
        return float(self.edges[-1])

    def mean(self) -> float:
        """Mean of the histogram (bin centers weighted by masses)."""
        return float(self.histogram @ self.centers)

    def total_variation(self, other_histogram) -> float:
        """TV distance to another probability vector over the same bins."""
        other = np.asarray(other_histogram, dtype=float)
        if other.shape != self.histogram.shape:
            raise ValueError(
                f"shape mismatch: {other.shape} vs {self.histogram.shape}"
            )
        return float(0.5 * np.abs(self.histogram - other).sum())


def true_histogram(values, bins: int = 16) -> np.ndarray:
    """Exact equal-width histogram of values in [-1, 1] (ground truth)."""
    arr = np.atleast_1d(check_unit_interval(values))
    if arr.size == 0:
        raise ValueError("cannot histogram an empty array")
    idx = np.clip(
        np.floor((arr + 1.0) / 2.0 * bins).astype(np.int64), 0, bins - 1
    )
    return np.bincount(idx, minlength=bins).astype(float) / arr.shape[0]
