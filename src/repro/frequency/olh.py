"""Optimized Local Hashing (OLH), Wang et al. USENIX'17.

Each user draws a random hash seed, hashes her value into a small domain
of size g = round(e^eps) + 1, and reports the seed together with a
GRR-perturbed hash bucket.  Communication is O(1) instead of OUE's O(k),
with (asymptotically) the same estimator variance.  Included as an
ablation alternative to OUE inside the Section IV-C collector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.frequency.oracle import FrequencyOracle, register_oracle
from repro.utils.rng import RngLike, ensure_rng

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: Working-set bound for vectorized support counting: domain values are
#: processed in blocks of ~this many (user, value) hash evaluations.
#: Sized so each block's uint64 temporaries stay L2-resident — larger
#: blocks go DRAM-bound and run slower than the per-value loop they
#: replace.
_SUPPORT_BLOCK_ELEMENTS = 65_536


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a fast, well-mixed 64-bit hash."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= _MIX1
    x ^= x >> np.uint64(27)
    x *= _MIX2
    x ^= x >> np.uint64(31)
    return x


@dataclass
class OLHReports:
    """Per-user OLH reports: a hash seed and a perturbed hash bucket."""

    seeds: np.ndarray
    buckets: np.ndarray

    def __post_init__(self):
        if self.seeds.shape != self.buckets.shape:
            raise ValueError("seeds and buckets must have the same shape")

    def __len__(self) -> int:
        return int(self.seeds.shape[0])

    # ------------------------------------------------------------------
    # Columnar form (v2 wire format; see repro.protocol.reports)
    # ------------------------------------------------------------------
    def to_columns(self) -> dict:
        """Canonical columnar form: the two per-user vectors by name."""
        return {"seeds": self.seeds, "buckets": self.buckets}

    @classmethod
    def from_columns(cls, columns: dict) -> "OLHReports":
        """Rebuild from :meth:`to_columns` output (bitwise)."""
        return cls(
            seeds=np.asarray(columns["seeds"]),
            buckets=np.asarray(columns["buckets"]),
        )


@register_oracle
class OptimizedLocalHashing(FrequencyOracle):
    """OLH frequency oracle with the variance-optimal g = e^eps + 1."""

    name = "olh"

    def __init__(self, epsilon: float, k: int, g: int = None):
        super().__init__(epsilon, k)
        if g is None:
            g = int(round(math.exp(self.epsilon))) + 1
        if g < 2:
            raise ValueError(f"hash range g must be >= 2, got {g}")
        self.g = g

    @property
    def support_probabilities(self) -> Tuple[float, float]:
        e = math.exp(self.epsilon)
        p = e / (e + self.g - 1.0)
        # For a non-true value, the (random) hash collides with the
        # reported bucket with probability exactly 1/g.
        return p, 1.0 / self.g

    def _hash(self, seeds: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Hash (seed, value) pairs into buckets [0, g)."""
        with np.errstate(over="ignore"):
            mixed = _splitmix64(
                seeds.astype(np.uint64)
                + (values.astype(np.uint64) + np.uint64(1)) * _GOLDEN
            )
        return (mixed % np.uint64(self.g)).astype(np.int64)

    def privatize(self, values, rng: RngLike = None) -> OLHReports:
        gen = ensure_rng(rng)
        truth = self._check_values(values)
        n = truth.shape[0]
        seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64).astype(
            np.uint64
        )
        hashed = self._hash(seeds, truth)
        # GRR over the hash domain [0, g).
        e = math.exp(self.epsilon)
        keep = gen.random(n) < e / (e + self.g - 1.0)
        others = gen.integers(0, self.g - 1, size=n)
        others = np.where(others >= hashed, others + 1, others)
        buckets = np.where(keep, hashed, others)
        return OLHReports(seeds=seeds, buckets=buckets)

    def support_counts(self, reports: OLHReports) -> np.ndarray:
        """Support counting over cache-sized blocks of domain values.

        Hashes blocks of ~``_SUPPORT_BLOCK_ELEMENTS`` (user, value)
        pairs per numpy call: for n below the block budget this folds
        many domain values into one 2-D hash (the win over the old
        per-value loop — up to ~2.5x when k is large relative to n);
        for larger n the block degenerates to one value at a time,
        which matches the old loop's shape but still avoids its
        per-value ``np.full``/``astype`` allocations.  Blocks larger
        than ~L2 measurably *lose* to the loop (DRAM-bound
        temporaries), hence the small budget.  Bitwise-identical to the
        per-value loop in all regimes.
        """
        if not isinstance(reports, OLHReports):
            raise TypeError("OLH expects OLHReports from privatize()")
        n = len(reports)
        counts = np.zeros(self.k)
        if n == 0:
            return counts
        block = max(1, _SUPPORT_BLOCK_ELEMENTS // n)
        seeds = reports.seeds.astype(np.uint64)[np.newaxis, :]
        buckets = reports.buckets[np.newaxis, :]
        for start in range(0, self.k, block):
            values = np.arange(
                start, min(start + block, self.k), dtype=np.int64
            )
            with np.errstate(over="ignore"):
                mixed = _splitmix64(
                    seeds
                    + (values.astype(np.uint64)[:, np.newaxis] + np.uint64(1))
                    * _GOLDEN
                )
            hashed = (mixed % np.uint64(self.g)).astype(np.int64)
            counts[start : start + values.shape[0]] = (
                (hashed == buckets).sum(axis=1).astype(float)
            )
        return counts
