"""Abstract interface for single-attribute categorical frequency oracles.

A frequency oracle perturbs one categorical value from a finite domain
{0, 1, ..., k-1} under eps-LDP and lets the aggregator estimate the
frequency (fraction of users) of every domain value.

The key method for composition with the paper's Section IV-C collector is
:meth:`debiased_counts`: it returns, for each domain value v, the sum
over reports of an *unbiased per-report indicator* of "this user's true
value is v".  The plain frequency estimate is that sum divided by the
number of reports; the sampled multidimensional collector instead divides
by n and multiplies by d/k (Section IV-C's estimator).
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple, Type

import numpy as np

from repro.core.validation import check_epsilon
from repro.utils.rng import RngLike


class FrequencyOracle(abc.ABC):
    """Base class for eps-LDP categorical frequency oracles.

    Parameters
    ----------
    epsilon:
        Privacy budget per report.
    k:
        Domain size; true values are integers in {0, ..., k-1}.
    """

    name: str = "abstract"

    def __init__(self, epsilon: float, k: int):
        self.epsilon = check_epsilon(epsilon)
        k = int(k)
        if k < 2:
            raise ValueError(f"domain size k must be >= 2, got {k}")
        self.k = k

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def privatize(self, values, rng: RngLike = None):
        """Perturb an array of true values; returns mechanism-specific
        reports (integers for GRR, bit matrices for UE variants, ...)."""

    @abc.abstractmethod
    def support_counts(self, reports) -> np.ndarray:
        """Raw count, per domain value v, of reports that 'support' v."""

    @property
    @abc.abstractmethod
    def support_probabilities(self) -> Tuple[float, float]:
        """(p, q): probability a report supports v when the true value is
        v (p) versus some other value (q)."""

    # ------------------------------------------------------------------
    def debiased_counts(self, reports) -> np.ndarray:
        """Sum over reports of the unbiased indicator (support - q)/(p - q)."""
        p, q = self.support_probabilities
        counts = self.support_counts(reports)
        n_reports = self._n_reports(reports)
        return (counts - n_reports * q) / (p - q)

    def estimate_frequencies(self, reports) -> np.ndarray:
        """Unbiased frequency estimates over the reporting users.

        For sharded or streaming aggregation prefer the mergeable
        protocol-layer equivalent,
        :class:`repro.protocol.accumulators.FrequencyAccumulator`
        (obtained via ``repro.protocol.Protocol.frequency(...)``).
        """
        n_reports = self._n_reports(reports)
        if n_reports == 0:
            raise ValueError("cannot estimate frequencies from zero reports")
        return self.debiased_counts(reports) / n_reports

    def estimator_variance(self, n: int, f: float = 0.0) -> float:
        """Variance of a single frequency estimate from n reports.

        Var = q(1-q)/(n (p-q)^2) + f (1 - p - q)/(n (p - q)), the standard
        decomposition for support-based estimators (Wang et al. 2017);
        ``f`` is the true frequency (0 gives the dominant term).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        p, q = self.support_probabilities
        return q * (1.0 - q) / (n * (p - q) ** 2) + f * (1.0 - p - q) / (
            n * (p - q)
        )

    def _n_reports(self, reports) -> int:
        return len(reports)

    def _check_values(self, values) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(values))
        if not np.issubdtype(arr.dtype, np.integer):
            if not np.all(arr == np.floor(arr)):
                raise ValueError("categorical values must be integers")
            arr = arr.astype(np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.k):
            raise ValueError(
                f"values must lie in [0, {self.k - 1}], observed "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr.astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self.epsilon!r}, k={self.k})"


_ORACLE_REGISTRY: Dict[str, Type[FrequencyOracle]] = {}


def register_oracle(cls: Type[FrequencyOracle]) -> Type[FrequencyOracle]:
    """Class decorator adding an oracle to the name registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} must define a unique 'name'")
    if cls.name in _ORACLE_REGISTRY:
        raise ValueError(f"duplicate oracle name {cls.name!r}")
    _ORACLE_REGISTRY[cls.name] = cls
    return cls


def available_oracles() -> Tuple[str, ...]:
    """Names of all registered frequency oracles."""
    return tuple(sorted(_ORACLE_REGISTRY))


def get_oracle(name: str, epsilon: float, k: int, **kwargs) -> FrequencyOracle:
    """Instantiate a registered oracle by name ('grr', 'sue', 'oue', 'olh')."""
    try:
        cls = _ORACLE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; available: {available_oracles()}"
        ) from None
    return cls(epsilon, k, **kwargs)
