"""Unary-encoding frequency oracles: SUE (basic RAPPOR) and OUE.

Both encode the true value v as a length-k one-hot bit vector and flip
each bit independently:

* **SUE** (symmetric, basic RAPPOR): Pr[1 -> 1] = p = e^{eps/2}/(e^{eps/2}+1),
  Pr[0 -> 1] = q = 1 - p.  The per-bit flip is symmetric, so the privacy
  cost of the whole vector is eps (one bit differs... two bits differ
  between two one-hot inputs, each contributing eps/2).
* **OUE** (optimized unary encoding, Wang et al. USENIX'17): p = 1/2 and
  q = 1/(e^eps + 1), which minimizes the estimator variance
  (4 e^eps / (n (e^eps - 1)^2) at f -> 0).  OUE is the oracle the paper
  plugs into its Section IV-C mixed-attribute collector.

Support for value v is "bit v of the report is 1".
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.frequency.oracle import FrequencyOracle, register_oracle
from repro.utils.rng import RngLike, ensure_rng


class UnaryEncodingOracle(FrequencyOracle):
    """Shared machinery for SUE and OUE; subclasses define (p, q)."""

    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        """Return an (n, k) 0/1 matrix of perturbed one-hot encodings."""
        gen = ensure_rng(rng)
        truth = self._check_values(values)
        n = truth.shape[0]
        p, q = self.support_probabilities
        u = gen.random((n, k_ := self.k))
        is_true_bit = np.zeros((n, k_), dtype=bool)
        is_true_bit[np.arange(n), truth] = True
        threshold = np.where(is_true_bit, p, q)
        return (u < threshold).astype(np.uint8)

    def support_counts(self, reports) -> np.ndarray:
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != self.k:
            raise ValueError(
                f"reports must be an (n, {self.k}) bit matrix, "
                f"got shape {reports.shape}"
            )
        return reports.sum(axis=0).astype(float)

    def bit_flip_probabilities(self) -> Tuple[float, float]:
        """Alias of (p, q) emphasizing the per-bit interpretation."""
        return self.support_probabilities


@register_oracle
class SymmetricUnaryEncoding(UnaryEncodingOracle):
    """SUE / basic one-time RAPPOR: symmetric per-bit perturbation."""

    name = "sue"

    @property
    def support_probabilities(self) -> Tuple[float, float]:
        e_half = math.exp(self.epsilon / 2.0)
        return e_half / (e_half + 1.0), 1.0 / (e_half + 1.0)


@register_oracle
class OptimizedUnaryEncoding(UnaryEncodingOracle):
    """OUE (Wang et al. 2017): p = 1/2, q = 1/(e^eps + 1).

    The state-of-the-art single-attribute oracle the paper adopts for
    categorical attributes (Section IV-C, Section VI-A).
    """

    name = "oue"

    @property
    def support_probabilities(self) -> Tuple[float, float]:
        return 0.5, 1.0 / (math.exp(self.epsilon) + 1.0)

    def worst_case_estimator_variance(self, n: int) -> float:
        """The paper-quoted OUE variance 4 e^eps / (n (e^eps - 1)^2)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        e = math.exp(self.epsilon)
        return 4.0 * e / (n * (e - 1.0) ** 2)
