"""Categorical encodings used across the package.

* :func:`one_hot` — full k-column indicator encoding (used when treating
  value frequencies as mean estimation, Section II).
* :func:`dummy_encode` — the paper's Section VI-B transform for empirical
  risk minimization: a k-valued attribute becomes k-1 binary attributes,
  where value l < k-1 sets column l and the last value sets no column.
* :func:`true_frequencies` — exact frequency vector of a value array.
"""

from __future__ import annotations

import numpy as np


def _check_categorical(values, k: int) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(values))
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == np.floor(arr)):
            raise ValueError("categorical values must be integers")
        arr = arr.astype(np.int64)
    if int(k) < 2:
        raise ValueError(f"domain size k must be >= 2, got {k}")
    if arr.size and (arr.min() < 0 or arr.max() >= k):
        raise ValueError(
            f"values must lie in [0, {k - 1}], observed "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr.astype(np.int64)


def one_hot(values, k: int) -> np.ndarray:
    """Full one-hot (n, k) 0/1 matrix for values in {0, ..., k-1}."""
    arr = _check_categorical(values, k)
    out = np.zeros((arr.shape[0], int(k)), dtype=np.float64)
    out[np.arange(arr.shape[0]), arr] = 1.0
    return out


def dummy_encode(values, k: int) -> np.ndarray:
    """The paper's ERM encoding: (n, k-1) matrix, last category -> zeros.

    Value l in {0, ..., k-2} sets column l to 1; value k-1 is the
    reference category represented by the all-zero row (Section VI-B).
    """
    return one_hot(values, k)[:, : int(k) - 1]


def true_frequencies(values, k: int) -> np.ndarray:
    """Exact frequency (fraction of users) of every domain value."""
    arr = _check_categorical(values, k)
    if arr.size == 0:
        raise ValueError("cannot compute frequencies of an empty array")
    return np.bincount(arr, minlength=int(k)).astype(float) / arr.shape[0]
