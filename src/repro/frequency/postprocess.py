"""Post-processing for LDP frequency estimates.

Debiased frequency estimates are unbiased but not *consistent*: cells
can be negative and the vector need not sum to 1.  Post-processing maps
the raw estimate onto the probability simplex, which never hurts (it is
a projection, hence a contraction towards any feasible truth) and often
helps substantially at small eps.  Three standard methods:

* :func:`clip_and_normalize` — clip negatives, rescale (the baseline the
  histogram module uses).
* :func:`norm_sub` — iteratively zero out negative cells and subtract
  the deficit uniformly from the remaining positive cells; this is the
  Euclidean projection onto the simplex restricted to the support and is
  the method recommended by Wang et al.'s post-processing study.
* :func:`least_squares_simplex` — exact Euclidean projection onto the
  simplex (the sorted-cumulative-sum algorithm).

All three preserve the input when it is already a valid distribution.
"""

from __future__ import annotations

import numpy as np


def _check(raw) -> np.ndarray:
    arr = np.asarray(raw, dtype=float).copy()
    if arr.ndim != 1 or arr.size < 1:
        raise ValueError("raw estimate must be a non-empty 1-D vector")
    if not np.all(np.isfinite(arr)):
        raise ValueError("raw estimate must be finite")
    return arr


def clip_and_normalize(raw) -> np.ndarray:
    """Clip negatives to zero and rescale to sum 1."""
    arr = _check(raw)
    arr = np.clip(arr, 0.0, None)
    total = arr.sum()
    if total <= 0.0:
        return np.full_like(arr, 1.0 / arr.size)
    return arr / total


def norm_sub(raw) -> np.ndarray:
    """Norm-Sub: repeatedly zero negatives and redistribute the deficit.

    Each round clamps negative cells to zero and subtracts the total
    overshoot equally from the remaining positive cells; terminates when
    the vector is non-negative and sums to one (always, in <= k rounds).
    """
    arr = _check(raw)
    # Start by enforcing the sum-to-one constraint.
    arr = arr + (1.0 - arr.sum()) / arr.size
    for _ in range(arr.size + 1):
        negative = arr < 0.0
        if not np.any(negative):
            break
        deficit = arr[negative].sum()
        arr[negative] = 0.0
        positive = arr > 0.0
        if not np.any(positive):
            return np.full_like(arr, 1.0 / arr.size)
        arr[positive] += deficit / positive.sum()
    return np.clip(arr, 0.0, None)


def least_squares_simplex(raw) -> np.ndarray:
    """Exact Euclidean projection onto the probability simplex.

    The classic sort-based algorithm (Held et al. / Duchi et al. 2008):
    find the largest k such that sorted values minus a common shift stay
    positive, then shift and clamp.
    """
    arr = _check(raw)
    sorted_desc = np.sort(arr)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, arr.size + 1)
    feasible = sorted_desc - cumulative / indices > 0.0
    rho = int(np.nonzero(feasible)[0][-1]) + 1
    theta = cumulative[rho - 1] / rho
    return np.clip(arr - theta, 0.0, None)


#: Registry of post-processing methods by name.
METHODS = {
    "clip": clip_and_normalize,
    "norm-sub": norm_sub,
    "least-squares": least_squares_simplex,
    "none": lambda raw: _check(raw),
}


def postprocess(raw, method: str = "norm-sub") -> np.ndarray:
    """Apply a registered post-processing method to a raw estimate."""
    try:
        fn = METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {tuple(METHODS)}"
        ) from None
    return fn(raw)
