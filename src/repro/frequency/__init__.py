"""Categorical frequency oracles (GRR, SUE, OUE, OLH) and encodings.

OUE (optimized unary encoding) is the oracle the paper plugs into its
mixed-attribute collector; the others serve as ablation baselines.
"""

from repro.frequency.encoders import dummy_encode, one_hot, true_frequencies
from repro.frequency.grr import GeneralizedRandomizedResponse
from repro.frequency.histogram import (
    HistogramEstimate,
    LDPHistogram,
    true_histogram,
)
from repro.frequency.olh import OLHReports, OptimizedLocalHashing
from repro.frequency.postprocess import (
    clip_and_normalize,
    least_squares_simplex,
    norm_sub,
    postprocess,
)
from repro.frequency.oracle import (
    FrequencyOracle,
    available_oracles,
    get_oracle,
)
from repro.frequency.unary import (
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    UnaryEncodingOracle,
)

__all__ = [
    "FrequencyOracle",
    "available_oracles",
    "get_oracle",
    "GeneralizedRandomizedResponse",
    "SymmetricUnaryEncoding",
    "OptimizedUnaryEncoding",
    "UnaryEncodingOracle",
    "OptimizedLocalHashing",
    "OLHReports",
    "LDPHistogram",
    "HistogramEstimate",
    "true_histogram",
    "postprocess",
    "norm_sub",
    "clip_and_normalize",
    "least_squares_simplex",
    "one_hot",
    "dummy_encode",
    "true_frequencies",
]
