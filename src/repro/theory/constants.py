"""Closed-form constants from the paper.

This module is pure math (no dependency on the mechanism classes) so the
core package can import it freely:

* ``EPSILON_STAR`` — the threshold eps* ~= 0.61 of Eq. (6) below which the
  Hybrid Mechanism degenerates to Duchi et al.'s solution.
* ``EPSILON_SHARP`` — the crossover eps# ~= 1.29 of Table I where PM's and
  Duchi et al.'s worst-case 1-D variances coincide.
* ``duchi_cd`` / ``duchi_b`` — the constants C_d (Eq. 9) and B (Eq. 10)
  of Duchi et al.'s multidimensional Algorithm 3.
* ``hybrid_alpha`` — the optimal PM-mixing weight alpha of Eq. (7).
* ``optimal_k`` — the attribute-sampling parameter k of Eq. (12).
* ``pm_c`` / ``pm_p`` — the Piecewise Mechanism's output bound C and
  plateau density p.
"""

from __future__ import annotations

import math

from repro.core.validation import check_dimension, check_epsilon


def _epsilon_star_closed_form() -> float:
    """eps* per Eq. (6): the real root of HM's alpha-switching cubic."""
    s = math.sqrt(241.0)
    inner = (
        -5.0
        + 2.0 * (6353.0 - 405.0 * s) ** (1.0 / 3.0)
        + 2.0 * (6353.0 + 405.0 * s) ** (1.0 / 3.0)
    ) / 27.0
    return math.log(inner)


def _epsilon_sharp_closed_form() -> float:
    """eps# per Table I: ln((7 + 4 sqrt 7 + 2 sqrt(20 + 14 sqrt 7)) / 9)."""
    s7 = math.sqrt(7.0)
    return math.log((7.0 + 4.0 * s7 + 2.0 * math.sqrt(20.0 + 14.0 * s7)) / 9.0)


#: eps* ~= 0.61 (Eq. 6). For eps <= eps*, HM uses alpha = 0.
EPSILON_STAR: float = _epsilon_star_closed_form()

#: eps# ~= 1.29 (Table I). For eps > eps#, PM beats Duchi in worst case.
EPSILON_SHARP: float = _epsilon_sharp_closed_form()


def pm_c(epsilon: float) -> float:
    """PM's output bound C = (e^{eps/2} + 1)/(e^{eps/2} - 1)."""
    epsilon = check_epsilon(epsilon)
    e_half = math.exp(epsilon / 2.0)
    return (e_half + 1.0) / (e_half - 1.0)


def pm_p(epsilon: float) -> float:
    """PM's plateau density p = (e^eps - e^{eps/2}) / (2 e^{eps/2} + 2)."""
    epsilon = check_epsilon(epsilon)
    e_half = math.exp(epsilon / 2.0)
    return (e_half * e_half - e_half) / (2.0 * e_half + 2.0)


def hybrid_alpha(epsilon: float) -> float:
    """Optimal coin-head probability alpha for HM (Eq. 7).

    alpha = 1 - e^{-eps/2} for eps > eps*, else 0 (pure Duchi).
    """
    epsilon = check_epsilon(epsilon)
    if epsilon > EPSILON_STAR:
        return 1.0 - math.exp(-epsilon / 2.0)
    return 0.0


def optimal_k(epsilon: float, d: int) -> int:
    """Number of attributes each user reports (Eq. 12).

    k = max(1, min(d, floor(eps / 2.5))) balances the per-attribute
    budget eps/k against the d/k sampling inflation.
    """
    epsilon = check_epsilon(epsilon)
    d = check_dimension(d)
    return max(1, min(d, int(math.floor(epsilon / 2.5))))


def duchi_cd(d: int, tie_breaking: str = "shared") -> float:
    """The combinatorial constant C_d of Eq. (9).

    C_d = 2^{d-1} / binom(d-1, (d-1)/2)                      if d odd,
    C_d = (2^{d-1} + binom(d, d/2)/2) / binom(d-1, d/2)       if d even.

    The two formulas correspond to how boundary sign vectors (those with
    t* . v = 0, which exist only for even d) are treated:

    * ``tie_breaking="shared"`` — Algorithm 3 as printed in the paper:
      boundary tuples belong to *both* halfspaces T+ and T-.  This is the
      Eq. (9) value above.  For even d the resulting mechanism's
      worst-case probability ratio is e^eps + 1 rather than e^eps (ties
      receive mass from both branches), i.e. it is ln(e^eps + 1)-LDP.
    * ``tie_breaking="split"`` — Duchi et al.'s original construction:
      each boundary tuple is assigned to T+ or T- with probability 1/2.
      This restores exact eps-LDP for even d; the matching unbiasedness
      constant becomes C_d = 2^{d-1} / binom(d-1, floor(d/2)) (the
      boundary's symmetric contribution to E[t*] cancels).

    For odd d there are no ties and the two variants coincide.
    """
    d = check_dimension(d)
    if tie_breaking not in ("shared", "split"):
        raise ValueError(
            f"tie_breaking must be 'shared' or 'split', got {tie_breaking!r}"
        )
    if d % 2 == 1:
        return 2.0 ** (d - 1) / math.comb(d - 1, (d - 1) // 2)
    if tie_breaking == "split":
        return 2.0 ** (d - 1) / math.comb(d - 1, d // 2)
    return (2.0 ** (d - 1) + 0.5 * math.comb(d, d // 2)) / math.comb(
        d - 1, d // 2
    )


def duchi_b(epsilon: float, d: int, tie_breaking: str = "shared") -> float:
    """The output magnitude B of Eq. (10): (e^eps+1)/(e^eps-1) * C_d."""
    epsilon = check_epsilon(epsilon)
    e = math.exp(epsilon)
    return (e + 1.0) / (e - 1.0) * duchi_cd(d, tie_breaking)
