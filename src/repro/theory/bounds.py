"""Concrete versions of the paper's error bounds (Lemmas 2 and 5).

Both lemmas are of the form |Z - X| = O(sqrt(d log(d/beta)) / (eps
sqrt(n))) with probability >= 1 - beta.  The O(.) hides the mechanism's
worst-case variance; here we expose the explicit sub-Gaussian radius the
Bernstein argument yields, so experiments can plot measured error against
a concrete envelope.
"""

from __future__ import annotations

import math

from repro.core.validation import check_dimension, check_epsilon
from repro.theory.variance import (
    hm_md_worst_variance,
    hm_worst_variance,
    pm_md_worst_variance,
    pm_worst_variance,
)
from repro.utils.stats import confidence_radius


def mean_error_bound_1d(
    eps: float, n: int, beta: float = 0.05, mechanism: str = "pm"
) -> float:
    """Lemma 2 radius for the 1-D mean estimator of n reports."""
    eps = check_epsilon(eps)
    if mechanism == "pm":
        var = pm_worst_variance(eps)
    elif mechanism == "hm":
        var = hm_worst_variance(eps)
    else:
        raise ValueError(f"mechanism must be 'pm' or 'hm', got {mechanism!r}")
    return confidence_radius(var, n, beta)


def mean_error_bound_md(
    eps: float, d: int, n: int, beta: float = 0.05, mechanism: str = "hm"
) -> float:
    """Lemma 5 radius: max-over-attributes error with a union bound."""
    eps = check_epsilon(eps)
    d = check_dimension(d)
    if mechanism == "pm":
        var = pm_md_worst_variance(eps, d)
    elif mechanism == "hm":
        var = hm_md_worst_variance(eps, d)
    else:
        raise ValueError(f"mechanism must be 'pm' or 'hm', got {mechanism!r}")
    # Union bound over the d attributes: beta -> beta / d.
    return confidence_radius(var, n, beta / d)


def asymptotic_md_error(eps: float, d: int, n: int) -> float:
    """The paper's asymptotic rate sqrt(d log d) / (eps sqrt n), for shape
    comparisons (no constants)."""
    eps = check_epsilon(eps)
    d = check_dimension(d)
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return math.sqrt(d * math.log(max(d, 2))) / (eps * math.sqrt(n))
