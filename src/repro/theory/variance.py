"""Closed-form noise variances from the paper, as pure functions.

These are implemented *independently* of the mechanism classes (straight
from the paper's equations) so the test suite can cross-check each
mechanism's ``variance()`` method against them.  They also power the
theory figures: Fig. 1 (1-D worst-case variance vs eps), Fig. 3
(multidimensional worst-case variance ratios) and Table I (regime
ordering).

Notation: ``t`` is the true value in [-1, 1], ``eps`` the privacy budget,
``d`` the number of attributes and ``k`` the number of sampled attributes
(Eq. 12 by default).

One deliberate deviation: the paper's Eq. (15), second branch
(eps/k <= eps*), prints the t^2 coefficient as (d/k - 1).  Deriving from
first principles — Var[t*_j] = (d/k) E[x^2] - t^2 with E[x^2] = bound^2
for Duchi's binary output — gives coefficient -1.  We implement the
first-principles value; the two agree at the worst case t = 0, which is
all Table I / Corollary 2 use.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.validation import check_dimension, check_epsilon
from repro.theory.constants import (
    EPSILON_STAR,
    duchi_b,
    hybrid_alpha,
    optimal_k,
)

# ----------------------------------------------------------------------
# One-dimensional mechanisms (Section III)
# ----------------------------------------------------------------------


def laplace_variance(eps: float) -> float:
    """Laplace mechanism noise variance 8/eps^2 (input-independent)."""
    eps = check_epsilon(eps)
    return 8.0 / eps**2


def duchi_1d_variance(t, eps: float) -> np.ndarray:
    """Eq. (4): ((e^eps+1)/(e^eps-1))^2 - t^2."""
    eps = check_epsilon(eps)
    t = np.asarray(t, dtype=float)
    e = math.exp(eps)
    return ((e + 1.0) / (e - 1.0)) ** 2 - t**2


def duchi_1d_worst_variance(eps: float) -> float:
    """Worst case of Eq. (4), attained at t = 0."""
    return float(duchi_1d_variance(0.0, eps))


def pm_variance(t, eps: float) -> np.ndarray:
    """Lemma 1: t^2/(e^{eps/2}-1) + (e^{eps/2}+3)/(3 (e^{eps/2}-1)^2)."""
    eps = check_epsilon(eps)
    t = np.asarray(t, dtype=float)
    e_half = math.exp(eps / 2.0)
    return t**2 / (e_half - 1.0) + (e_half + 3.0) / (3.0 * (e_half - 1.0) ** 2)


def pm_worst_variance(eps: float) -> float:
    """Worst case of Lemma 1 (t = +-1): 4 e^{eps/2}/(3 (e^{eps/2}-1)^2)."""
    eps = check_epsilon(eps)
    e_half = math.exp(eps / 2.0)
    return 4.0 * e_half / (3.0 * (e_half - 1.0) ** 2)


def hm_variance(t, eps: float, alpha: float = None) -> np.ndarray:
    """HM variance: alpha * Var_PM + (1 - alpha) * Var_Duchi."""
    eps = check_epsilon(eps)
    if alpha is None:
        alpha = hybrid_alpha(eps)
    t = np.asarray(t, dtype=float)
    return alpha * pm_variance(t, eps) + (1.0 - alpha) * duchi_1d_variance(
        t, eps
    )


def hm_worst_variance(eps: float) -> float:
    """Eq. (8): HM's worst-case variance at the optimal alpha."""
    eps = check_epsilon(eps)
    if eps > EPSILON_STAR:
        e_half = math.exp(eps / 2.0)
        e_full = math.exp(eps)
        return (e_half + 3.0) / (3.0 * e_half * (e_half - 1.0)) + (
            e_full + 1.0
        ) ** 2 / (e_half * (e_full - 1.0) ** 2)
    return duchi_1d_worst_variance(eps)


def piecewise_constant_noise_variance(eps: float, m: float, a: float) -> float:
    """Variance of the Eq. (2) noise density with plateau (m, a).

    Shared by SCDF and Staircase; evaluated by geometric series.
    """
    eps = check_epsilon(eps)
    total = m**3 / 3.0
    j = 0
    while True:
        lo = m + 2.0 * j
        hi = lo + 2.0
        term = math.exp(-eps * (j + 1)) * (hi**3 - lo**3) / 3.0
        total += term
        if term < 1e-18 * max(total, 1.0) or j > 100_000:
            break
        j += 1
    return 2.0 * a * total


def scdf_variance(eps: float) -> float:
    """SCDF noise variance (input-independent)."""
    eps = check_epsilon(eps)
    a = eps / 4.0
    one_minus = 1.0 - math.exp(-eps)
    m = 2.0 * (one_minus - eps * math.exp(-eps)) / (eps * one_minus)
    return piecewise_constant_noise_variance(eps, m, a)


def staircase_variance(eps: float) -> float:
    """Staircase noise variance (input-independent)."""
    eps = check_epsilon(eps)
    m = 2.0 / (1.0 + math.exp(eps / 2.0))
    e_neg = math.exp(-eps)
    a = (1.0 - e_neg) / (2.0 * m + 4.0 * e_neg - 2.0 * m * e_neg)
    return piecewise_constant_noise_variance(eps, m, a)


# ----------------------------------------------------------------------
# Multidimensional mechanisms (Section IV)
# ----------------------------------------------------------------------


def duchi_md_variance(t, eps: float, d: int) -> np.ndarray:
    """Eq. (13): per-coordinate variance of Algorithm 3, B^2 - t^2."""
    t = np.asarray(t, dtype=float)
    return duchi_b(eps, d) ** 2 - t**2


def duchi_md_worst_variance(eps: float, d: int) -> float:
    """Worst case of Eq. (13), at t = 0."""
    return float(duchi_md_variance(0.0, eps, d))


def pm_md_variance(t, eps: float, d: int, k: int = None) -> np.ndarray:
    """Eq. (14): per-coordinate variance of Algorithm 4 with PM inside."""
    eps = check_epsilon(eps)
    d = check_dimension(d)
    if k is None:
        k = optimal_k(eps, d)
    t = np.asarray(t, dtype=float)
    e = math.exp(eps / (2.0 * k))
    constant = d * (e + 3.0) / (3.0 * k * (e - 1.0) ** 2)
    coeff = d * e / (k * (e - 1.0)) - 1.0
    return constant + coeff * t**2


def pm_md_worst_variance(eps: float, d: int, k: int = None) -> float:
    """Worst case of Eq. (14); the t^2 coefficient is positive so t = 1."""
    return float(pm_md_variance(1.0, eps, d, k))


def hm_md_variance(t, eps: float, d: int, k: int = None) -> np.ndarray:
    """Eq. (15): per-coordinate variance of Algorithm 4 with HM inside."""
    eps = check_epsilon(eps)
    d = check_dimension(d)
    if k is None:
        k = optimal_k(eps, d)
    t = np.asarray(t, dtype=float)
    eps_k = eps / k
    ratio = d / k
    if eps_k > EPSILON_STAR:
        return ratio * hm_worst_variance(eps_k) + (ratio - 1.0) * t**2
    e = math.exp(eps_k)
    bound_sq = ((e + 1.0) / (e - 1.0)) ** 2
    # First-principles second branch; see module docstring.
    return ratio * bound_sq - t**2


def hm_md_worst_variance(eps: float, d: int, k: int = None) -> float:
    """Worst case of Eq. (15) over t in [-1, 1]."""
    candidates = hm_md_variance(np.array([0.0, 1.0]), eps, d, k)
    return float(np.max(candidates))


def worst_variance_ratio_vs_duchi(
    eps: float, d: int, mechanism: str = "hm"
) -> float:
    """Fig. 3's quantity: MaxVar_{PM|HM} / MaxVar_Duchi for dimension d."""
    denom = duchi_md_worst_variance(eps, d)
    if mechanism == "pm":
        return pm_md_worst_variance(eps, d) / denom
    if mechanism == "hm":
        return hm_md_worst_variance(eps, d) / denom
    raise ValueError(f"mechanism must be 'pm' or 'hm', got {mechanism!r}")
