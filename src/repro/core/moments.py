"""Second-moment and variance estimation for a numeric attribute.

The paper's mechanisms estimate E[t]; many analyses also need Var[t].
Since t in [-1, 1] implies t^2 in [0, 1], the affine map s = 2 t^2 - 1
puts the squared value back into the mechanisms' [-1, 1] domain, so the
same PM/HM machinery estimates E[t^2] — and hence the variance
Var[t] = E[t^2] - E[t]^2 — under LDP.

Budget strategies:

* ``strategy="split"`` — every user reports both t (at eps/2) and s (at
  eps/2); sequential composition gives eps total.
* ``strategy="sample"`` — every user flips a fair coin and reports
  *either* t or s at full budget eps.  Each sub-population halves, but
  each report is twice as accurate; for PM/HM's eps-squared-ish variance
  regime sampling usually wins (mirroring the paper's Section IV
  sampling-beats-splitting argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.mechanism import get_mechanism
from repro.core.validation import check_epsilon, check_unit_interval
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class MomentEstimate:
    """Joint estimate of a numeric attribute's first two moments."""

    mean: float
    second_moment: float

    @property
    def variance(self) -> float:
        """Var[t] = E[t^2] - E[t]^2, clipped at 0 (noise can push the
        raw plug-in estimate slightly negative)."""
        return max(self.second_moment - self.mean**2, 0.0)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


class MomentsEstimator:
    """Collect mean and variance of one numeric attribute under eps-LDP.

    Parameters
    ----------
    epsilon:
        Total per-user budget.
    mechanism:
        Registered 1-D mechanism name ("hm" by default).
    strategy:
        "sample" (coin-flip between t and 2t^2-1, full budget each) or
        "split" (report both at eps/2 each).
    """

    def __init__(
        self,
        epsilon: float,
        mechanism: str = "hm",
        strategy: str = "sample",
    ):
        self.epsilon = check_epsilon(epsilon)
        if strategy not in ("sample", "split"):
            raise ValueError(
                f"strategy must be 'sample' or 'split', got {strategy!r}"
            )
        self.strategy = strategy
        self.mechanism_name = mechanism
        budget = self.epsilon if strategy == "sample" else self.epsilon / 2.0
        self.mechanism = get_mechanism(mechanism, budget)

    # ------------------------------------------------------------------
    @staticmethod
    def _square_transform(values: np.ndarray) -> np.ndarray:
        """Map t in [-1,1] to s = 2 t^2 - 1 in [-1, 1]."""
        return 2.0 * values**2 - 1.0

    def privatize(
        self, values, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Perturb all users; returns (mean_reports, square_reports).

        Under "sample", the two arrays partition the users; under
        "split" both have length n.
        """
        gen = ensure_rng(rng)
        arr = np.atleast_1d(check_unit_interval(values))
        squared = self._square_transform(arr)
        if self.strategy == "split":
            return (
                self.mechanism.privatize(arr, gen),
                self.mechanism.privatize(squared, gen),
            )
        pick_mean = gen.random(arr.shape[0]) < 0.5
        mean_reports = self.mechanism.privatize(arr[pick_mean], gen)
        square_reports = self.mechanism.privatize(squared[~pick_mean], gen)
        return mean_reports, square_reports

    def estimate(self, mean_reports, square_reports) -> MomentEstimate:
        """Aggregate the two report streams into a MomentEstimate."""
        mean_reports = np.asarray(mean_reports, dtype=float)
        square_reports = np.asarray(square_reports, dtype=float)
        if mean_reports.size == 0 or square_reports.size == 0:
            raise ValueError("both report streams must be non-empty")
        mean = float(mean_reports.mean())
        # Invert s = 2 t^2 - 1: E[t^2] = (E[s] + 1) / 2.
        second = (float(square_reports.mean()) + 1.0) / 2.0
        return MomentEstimate(mean=mean, second_moment=second)

    def collect(self, values, rng: RngLike = None) -> MomentEstimate:
        """privatize + estimate in one call."""
        return self.estimate(*self.privatize(values, rng))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MomentsEstimator(epsilon={self.epsilon!r}, "
            f"mechanism={self.mechanism_name!r}, strategy={self.strategy!r})"
        )
