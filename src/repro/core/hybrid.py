"""The Hybrid Mechanism (HM) — the paper's headline 1-D mechanism.

HM flips a coin with head probability alpha; on heads it perturbs with
the Piecewise Mechanism, on tails with Duchi et al.'s solution.  The
paper's Lemma 3 shows the worst-case variance is minimized by

    alpha = 1 - e^{-eps/2}   if eps > eps* ~= 0.61,
    alpha = 0                otherwise (HM degenerates to Duchi).

With this alpha the t^2 terms of the two component variances cancel
exactly, so HM's variance is *constant* in t for eps > eps*, equal to

    (e^{eps/2}+3) / (3 e^{eps/2}(e^{eps/2}-1))
        + (e^eps+1)^2 / (e^{eps/2}(e^eps-1)^2)          (Eq. 8)

and HM's worst case is never above min(PM, Duchi) (Corollary 1).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.duchi import DuchiMechanism
from repro.core.mechanism import NumericMechanism, register_mechanism
from repro.core.piecewise import PiecewiseMechanism
from repro.theory.constants import EPSILON_STAR, hybrid_alpha
from repro.utils.rng import RngLike


@register_mechanism
class HybridMechanism(NumericMechanism):
    """alpha-mixture of the Piecewise Mechanism and Duchi et al.'s solution.

    Parameters
    ----------
    epsilon:
        Privacy budget.  Both components are invoked at the full budget;
        only one of them runs per value, so the mixture is eps-LDP.
    alpha:
        Optional override of the mixing weight, for ablation studies.
        Defaults to the optimal Eq. (7) value.
    """

    name = "hm"

    def __init__(self, epsilon: float, alpha: float = None):
        super().__init__(epsilon)
        self.pm = PiecewiseMechanism(self.epsilon)
        self.duchi = DuchiMechanism(self.epsilon)
        if alpha is None:
            alpha = hybrid_alpha(self.epsilon)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)

    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        flat, shape, gen = self._prepare(values, rng)
        heads = gen.random(flat.shape) < self.alpha
        out = np.empty_like(flat)
        if np.any(heads):
            out[heads] = self.pm.privatize(flat[heads], gen)
        if np.any(~heads):
            out[~heads] = self.duchi.privatize(flat[~heads], gen)
        return self._restore(out, shape)

    def variance(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return self.alpha * self.pm.variance(t) + (
            1.0 - self.alpha
        ) * self.duchi.variance(t)

    def worst_case_variance(self) -> float:
        """Eq. (8) when alpha is optimal; otherwise the max over t grid."""
        if self.alpha == hybrid_alpha(self.epsilon):
            if self.epsilon > EPSILON_STAR:
                e_half = math.exp(self.epsilon / 2.0)
                e_full = math.exp(self.epsilon)
                return (e_half + 3.0) / (
                    3.0 * e_half * (e_half - 1.0)
                ) + (e_full + 1.0) ** 2 / (e_half * (e_full - 1.0) ** 2)
            return self.duchi.worst_case_variance()
        return super().worst_case_variance()

    def output_range(self) -> Tuple[float, float]:
        # PM's range [-C, C] contains Duchi's two-point range whenever
        # eps > 0, except at large eps where Duchi's bound exceeds C; the
        # union is what the aggregator may observe.
        lo_pm, hi_pm = self.pm.output_range()
        lo_du, hi_du = self.duchi.output_range()
        return (min(lo_pm, lo_du), max(hi_pm, hi_du))
