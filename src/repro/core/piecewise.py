"""The Piecewise Mechanism (PM) — the paper's first contribution (Alg. 2).

Given t in [-1, 1], PM outputs t* in the bounded range [-C, C] where
C = (e^{eps/2} + 1)/(e^{eps/2} - 1).  The output density is piecewise
constant with (up to) three pieces: a high-probability plateau
[l(t), r(t)] of width C - 1 centered (affinely) on t, and low-probability
wings covering the rest of [-C, C]:

    pdf(t* = x | t) = p            if x in [l(t), r(t)]
    pdf(t* = x | t) = p / e^eps    if x in [-C, l(t)) u (r(t), C]

with p = (e^eps - e^{eps/2}) / (2 e^{eps/2} + 2),
l(t) = (C+1)/2 * t - (C-1)/2 and r(t) = l(t) + C - 1.

PM is unbiased and its variance *decreases* with |t| (Lemma 1):

    Var[t* | t] = t^2/(e^{eps/2} - 1) + (e^{eps/2} + 3)/(3 (e^{eps/2}-1)^2)

which makes it particularly effective on small-magnitude inputs such as
SGD gradients (Section V).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.mechanism import NumericMechanism, register_mechanism
from repro.theory.constants import pm_c, pm_p
from repro.utils.rng import RngLike


@register_mechanism
class PiecewiseMechanism(NumericMechanism):
    """The Piecewise Mechanism for one-dimensional numeric data."""

    name = "pm"

    def __init__(self, epsilon: float):
        super().__init__(epsilon)
        self.c = pm_c(self.epsilon)
        self.p = pm_p(self.epsilon)
        # Probability that the output lands on the central plateau.
        e_half = math.exp(self.epsilon / 2.0)
        self._p_center = e_half / (e_half + 1.0)

    # ------------------------------------------------------------------
    def left(self, t) -> np.ndarray:
        """Plateau left endpoint l(t) = (C+1)/2 * t - (C-1)/2."""
        t = np.asarray(t, dtype=float)
        return (self.c + 1.0) / 2.0 * t - (self.c - 1.0) / 2.0

    def right(self, t) -> np.ndarray:
        """Plateau right endpoint r(t) = l(t) + C - 1."""
        return self.left(t) + self.c - 1.0

    # ------------------------------------------------------------------
    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        flat, shape, gen = self._prepare(values, rng)
        lo = self.left(flat)
        hi = self.right(flat)

        out = np.empty_like(flat)
        center = gen.random(flat.shape) < self._p_center

        # Central plateau: uniform on [l(t), r(t)].
        u = gen.random(flat.shape)
        out[center] = (lo + u * (hi - lo))[center]

        # Wings: uniform on [-C, l(t)) u (r(t), C].  Draw a position w on
        # [0, total wing length] and map it onto the two intervals.
        wings = ~center
        if np.any(wings):
            left_len = lo[wings] + self.c          # length of [-C, l)
            total_len = left_len + (self.c - hi[wings])
            w = gen.random(left_len.shape) * total_len
            in_left = w < left_len
            out[wings] = np.where(
                in_left, -self.c + w, hi[wings] + (w - left_len)
            )
        return self._restore(out, shape)

    # ------------------------------------------------------------------
    def pdf(self, x, t: float) -> np.ndarray:
        """Output density pdf(t* = x | t) per Eq. (5)."""
        x = np.asarray(x, dtype=float)
        lo = float(self.left(t))
        hi = float(self.right(t))
        inside_support = (x >= -self.c) & (x <= self.c)
        on_plateau = (x >= lo) & (x <= hi)
        wing_density = self.p / math.exp(self.epsilon)
        return np.where(
            inside_support, np.where(on_plateau, self.p, wing_density), 0.0
        )

    def variance(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        e_half = math.exp(self.epsilon / 2.0)
        return t**2 / (e_half - 1.0) + (e_half + 3.0) / (
            3.0 * (e_half - 1.0) ** 2
        )

    def worst_case_variance(self) -> float:
        """Max over t of Lemma 1's variance: 4 e^{eps/2}/(3 (e^{eps/2}-1)^2)."""
        e_half = math.exp(self.epsilon / 2.0)
        return 4.0 * e_half / (3.0 * (e_half - 1.0) ** 2)

    def output_range(self) -> Tuple[float, float]:
        return (-self.c, self.c)
