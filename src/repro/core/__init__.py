"""One-dimensional numeric LDP mechanisms and Duchi's Algorithm 3.

This subpackage implements the paper's primary contribution (the
Piecewise and Hybrid Mechanisms) together with every baseline the paper
evaluates against: the Laplace mechanism, SCDF, Staircase, and Duchi et
al.'s one- and multi-dimensional solutions.
"""

from repro.core.duchi import DuchiMechanism, DuchiMultidimMechanism
from repro.core.hybrid import HybridMechanism
from repro.core.laplace import LaplaceMechanism
from repro.core.moments import MomentEstimate, MomentsEstimator
from repro.core.mechanism import (
    NumericMechanism,
    available_mechanisms,
    get_mechanism,
)
from repro.core.piecewise import PiecewiseMechanism
from repro.core.piecewise_constant import (
    PiecewiseConstantNoiseMechanism,
    SCDFMechanism,
    StaircaseMechanism,
)

__all__ = [
    "NumericMechanism",
    "available_mechanisms",
    "get_mechanism",
    "LaplaceMechanism",
    "SCDFMechanism",
    "StaircaseMechanism",
    "PiecewiseConstantNoiseMechanism",
    "DuchiMechanism",
    "DuchiMultidimMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    "MomentsEstimator",
    "MomentEstimate",
]
