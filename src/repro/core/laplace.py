"""The classic Laplace mechanism applied to the LDP setting.

For an input t in [-1, 1], the sensitivity of the identity query is 2, so
t* = t + Lap(2/eps) satisfies eps-LDP.  The estimate is unbiased with
noise variance 2 * (2/eps)^2 = 8/eps^2 regardless of t (Section III-A).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.mechanism import NumericMechanism, register_mechanism
from repro.utils.rng import RngLike

#: Sensitivity of a value in [-1, 1]: max |t - t'| = 2.
SENSITIVITY = 2.0


@register_mechanism
class LaplaceMechanism(NumericMechanism):
    """Laplace noise addition: ``t* = t + Lap(2/eps)``."""

    name = "laplace"

    @property
    def scale(self) -> float:
        """The Laplace scale parameter lambda = 2/eps."""
        return SENSITIVITY / self.epsilon

    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        flat, shape, gen = self._prepare(values, rng)
        noise = gen.laplace(loc=0.0, scale=self.scale, size=flat.shape)
        return self._restore(flat + noise, shape)

    def variance(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        # Var[Lap(lambda)] = 2 lambda^2, independent of the input value.
        return np.full_like(t, 2.0 * self.scale**2)

    def worst_case_variance(self) -> float:
        return 8.0 / self.epsilon**2

    def output_range(self) -> Tuple[float, float]:
        return (-np.inf, np.inf)

    def pdf(self, x, t: float) -> np.ndarray:
        """Output density pdf(t* = x | t); used by the LDP property tests."""
        x = np.asarray(x, dtype=float)
        lam = self.scale
        return np.exp(-np.abs(x - t) / lam) / (2.0 * lam)
