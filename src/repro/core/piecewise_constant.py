"""SCDF and Staircase mechanisms (piecewise-constant additive noise).

Both mechanisms add data-independent noise drawn from the piecewise
constant density of the paper's Eq. (2): a central plateau of half-width
``m`` with density ``a``, flanked by an infinite ladder of width-2 steps
whose density decays by a factor of e^eps per step:

    pdf(x) = a * exp(-eps * (j+1))   for |x| in [m + 2j, m + 2(j+1)], j >= 0
    pdf(x) = a                        for |x| <= m

The two mechanisms differ only in (m, a):

* **SCDF** (Soria-Comas & Domingo-Ferrer, Inf. Sci. 2013):
  a = eps/4 and m = 2 (1 - e^{-eps} - eps e^{-eps}) / (eps (1 - e^{-eps})).
* **Staircase** (Geng et al., J-STSP 2015):
  m = 2 / (1 + e^{eps/2}) and
  a = (1 - e^{-eps}) / (2m + 4 e^{-eps} - 2 m e^{-eps}).

Both are unbiased (the noise is symmetric) and have unbounded output,
which is the deficiency the Piecewise Mechanism addresses.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.mechanism import NumericMechanism, register_mechanism
from repro.utils.rng import RngLike

#: Width of each ladder step equals the sensitivity of the query (2).
STEP_WIDTH = 2.0


class PiecewiseConstantNoiseMechanism(NumericMechanism):
    """Shared machinery for SCDF and Staircase.

    Subclasses provide the plateau half-width ``m`` and density ``a``
    via :meth:`_parameters`.
    """

    def __init__(self, epsilon: float):
        super().__init__(epsilon)
        self.m, self.a = self._parameters()
        # Probability mass of the central plateau [-m, m].
        self._p_center = 2.0 * self.m * self.a
        # Mass of one side's ladder: a * 2 * sum_{j>=1} e^{-eps j}
        #   = 2 a e^{-eps} / (1 - e^{-eps}).
        decay = math.exp(-self.epsilon)
        self._p_side = STEP_WIDTH * self.a * decay / (1.0 - decay)
        total = self._p_center + 2.0 * self._p_side
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise AssertionError(
                f"noise pdf does not normalize: total mass {total:.12f}"
            )

    def _parameters(self) -> Tuple[float, float]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def sample_noise(self, size, rng: RngLike = None) -> np.ndarray:
        """Draw iid noise values from the piecewise-constant density."""
        from repro.utils.rng import ensure_rng

        gen = ensure_rng(rng)
        n = int(np.prod(size)) if np.ndim(size) else int(size)
        u = gen.random(n)
        out = np.empty(n)

        in_center = u < self._p_center
        n_center = int(in_center.sum())
        out[in_center] = gen.uniform(-self.m, self.m, size=n_center)

        n_tail = n - n_center
        if n_tail:
            # Geometric step index: piece j >= 0 with mass prop. to e^{-eps(j+1)}.
            p = 1.0 - math.exp(-self.epsilon)
            j = gen.geometric(p, size=n_tail) - 1
            offset = gen.uniform(0.0, STEP_WIDTH, size=n_tail)
            magnitude = self.m + STEP_WIDTH * j + offset
            sign = gen.choice([-1.0, 1.0], size=n_tail)
            out[~in_center] = sign * magnitude
        return out.reshape(size)

    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        flat, shape, gen = self._prepare(values, rng)
        return self._restore(flat + self.sample_noise(flat.shape, gen), shape)

    # ------------------------------------------------------------------
    def pdf(self, x, t: float = 0.0) -> np.ndarray:
        """Density of the perturbed output t* = t + noise at points x."""
        x = np.abs(np.asarray(x, dtype=float) - t)
        out = np.where(x <= self.m, self.a, 0.0)
        beyond = x > self.m
        if np.any(beyond):
            j = np.floor((x[beyond] - self.m) / STEP_WIDTH)
            out = np.asarray(out, dtype=float)
            out[beyond] = self.a * np.exp(-self.epsilon * (j + 1.0))
        return out

    def noise_variance(self) -> float:
        """Closed-form-by-series variance of the additive noise.

        Var = 2a [ m^3/3 + sum_{j>=0} e^{-eps(j+1)} ((m+2(j+1))^3-(m+2j)^3)/3 ].
        The series converges geometrically; we truncate once the term
        falls below machine precision.
        """
        eps, m, a = self.epsilon, self.m, self.a
        total = m**3 / 3.0
        j = 0
        while True:
            lo = m + STEP_WIDTH * j
            hi = lo + STEP_WIDTH
            term = math.exp(-eps * (j + 1)) * (hi**3 - lo**3) / 3.0
            total += term
            if term < 1e-18 * max(total, 1.0):
                break
            j += 1
            if j > 100_000:  # defensive: eps pathologically small
                break
        return 2.0 * a * total

    def variance(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return np.full_like(t, self.noise_variance())

    def worst_case_variance(self) -> float:
        return self.noise_variance()


@register_mechanism
class SCDFMechanism(PiecewiseConstantNoiseMechanism):
    """Soria-Comas & Domingo-Ferrer optimal data-independent noise."""

    name = "scdf"

    def _parameters(self) -> Tuple[float, float]:
        eps = self.epsilon
        a = eps / 4.0
        one_minus = 1.0 - math.exp(-eps)
        m = STEP_WIDTH * (one_minus - eps * math.exp(-eps)) / (eps * one_minus)
        if m < 0:
            raise AssertionError(f"SCDF plateau width is negative: {m}")
        return m, a


@register_mechanism
class StaircaseMechanism(PiecewiseConstantNoiseMechanism):
    """Geng et al.'s staircase mechanism (optimal for unbounded domains)."""

    name = "staircase"

    def _parameters(self) -> Tuple[float, float]:
        eps = self.epsilon
        m = STEP_WIDTH / (1.0 + math.exp(eps / 2.0))
        e_neg = math.exp(-eps)
        a = (1.0 - e_neg) / (2.0 * m + 4.0 * e_neg - 2.0 * m * e_neg)
        return m, a
