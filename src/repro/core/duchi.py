"""Duchi et al.'s minimax-optimal LDP mechanisms (Algorithms 1 and 3).

One-dimensional case (Algorithm 1): the perturbed value is binary,
t* = ±(e^eps + 1)/(e^eps - 1), with head probability linear in t.  The
estimate is unbiased with variance ((e^eps+1)/(e^eps-1))^2 - t^2 — note
the variance *increases* as |t| decreases, the opposite of PM.

Multidimensional case (Algorithm 3): each coordinate of the output is
±B where B = (e^eps + 1)/(e^eps - 1) * C_d and C_d is the combinatorial
constant of Eq. (9).  A random sign vector v encodes the input; the
output is drawn uniformly from the halfspace {t* : t* . v >= 0} with
probability e^eps/(e^eps + 1), else from the complementary halfspace.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.mechanism import NumericMechanism, register_mechanism
from repro.core.validation import check_dimension, check_epsilon, check_matrix
from repro.theory.constants import duchi_b, duchi_cd
from repro.utils.rng import RngLike, ensure_rng


@register_mechanism
class DuchiMechanism(NumericMechanism):
    """Duchi et al.'s solution for one-dimensional numeric data (Alg. 1)."""

    name = "duchi"

    @property
    def bound(self) -> float:
        """The magnitude of the binary output, (e^eps+1)/(e^eps-1)."""
        e = math.exp(self.epsilon)
        return (e + 1.0) / (e - 1.0)

    def head_probability(self, t) -> np.ndarray:
        """Pr[u = 1 | t] = (e^eps - 1)/(2 e^eps + 2) * t + 1/2."""
        t = np.asarray(t, dtype=float)
        e = math.exp(self.epsilon)
        return (e - 1.0) / (2.0 * e + 2.0) * t + 0.5

    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        flat, shape, gen = self._prepare(values, rng)
        heads = gen.random(flat.shape) < self.head_probability(flat)
        out = np.where(heads, self.bound, -self.bound)
        return self._restore(out, shape)

    def variance(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return self.bound**2 - t**2

    def worst_case_variance(self) -> float:
        # Maximized at t = 0 (Eq. 4).
        return self.bound**2

    def output_range(self) -> Tuple[float, float]:
        return (-self.bound, self.bound)

    def output_probabilities(self, t: float) -> dict:
        """Exact output pmf {value: probability}; used by the DP tests."""
        p = float(self.head_probability(t))
        return {self.bound: p, -self.bound: 1.0 - p}


class DuchiMultidimMechanism:
    """Duchi et al.'s solution for multidimensional numeric data (Alg. 3).

    Perturbs whole tuples in [-1, 1]^d under eps-LDP (the full budget
    covers the entire tuple, not each coordinate).

    Parameters
    ----------
    epsilon:
        Privacy budget for the whole tuple.
    d:
        Number of numeric attributes.
    tie_breaking:
        How output corners with t* . v = 0 (possible only for even d)
        are treated.  "shared" follows Algorithm 3 as printed (boundary
        corners belong to both halfspaces; unbiased with the paper's
        Eq. 9 constant, but for even d the worst-case probability ratio
        is e^eps + 1).  "split" follows Duchi et al.'s original
        construction (boundary corners join either halfspace with
        probability 1/2; exactly eps-LDP for every d, with the matching
        constant 2^{d-1}/binom(d-1, floor(d/2))).  The two variants are
        identical for odd d.  See repro.theory.constants.duchi_cd.
    """

    def __init__(self, epsilon: float, d: int, tie_breaking: str = "shared"):
        self.epsilon = check_epsilon(epsilon)
        self.d = check_dimension(d)
        self.tie_breaking = tie_breaking
        self.cd = duchi_cd(self.d, tie_breaking)
        self.b = duchi_b(self.epsilon, self.d, tie_breaking)

    def privatize(self, tuples, rng: RngLike = None) -> np.ndarray:
        """Perturb an (n, d) matrix of tuples; returns an (n, d) matrix.

        A 1-D input of length d is treated as a single tuple and a 1-D
        output is returned.
        """
        gen = ensure_rng(rng)
        arr = np.asarray(tuples, dtype=float)
        single = arr.ndim == 1
        t = check_matrix(arr, self.d)
        n = t.shape[0]

        # Line 1: v[j] = +1 with probability (1 + t[j]) / 2.
        v = np.where(gen.random(t.shape) < (1.0 + t) / 2.0, 1.0, -1.0)

        # Line 3: Bernoulli u with Pr[u=1] = e^eps / (e^eps + 1).
        e = math.exp(self.epsilon)
        want_positive = gen.random(n) < e / (e + 1.0)

        signs = self._sample_halfspace(v, want_positive, gen)
        out = self.b * signs
        return out[0] if single else out

    def _sample_halfspace(
        self, v: np.ndarray, want_positive: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        """Uniformly sample s in {-1,1}^d from the requested halfspace.

        Rejection sampling from the full hypercube: by symmetry at least
        half of all sign vectors satisfy each halfspace constraint, so
        the expected number of rounds is < 2.  Corners with s.v = 0 are
        accepted always ("shared" ties) or with probability 1/2
        ("split" ties); see the class docstring.
        """
        n, d = v.shape
        signs = np.empty((n, d))
        pending = np.arange(n)
        while pending.size:
            cand = np.where(gen.random((pending.size, d)) < 0.5, 1.0, -1.0)
            dots = np.einsum("ij,ij->i", cand, v[pending])
            if self.tie_breaking == "shared":
                tie_ok = dots == 0.0
            else:
                tie_ok = (dots == 0.0) & (gen.random(pending.size) < 0.5)
            ok = np.where(
                want_positive[pending], dots > 0.0, dots < 0.0
            ) | tie_ok
            accepted = pending[ok]
            signs[accepted] = cand[ok]
            pending = pending[~ok]
        return signs

    def variance(self, t) -> np.ndarray:
        """Per-coordinate variance Var[t*[j] | t[j]] (Eq. 13)."""
        t = np.asarray(t, dtype=float)
        return self.b**2 - t**2

    def worst_case_variance(self) -> float:
        """Worst-case per-coordinate variance, at t[j] = 0 (Eq. 13)."""
        return self.b**2

    def estimate_means(self, reports) -> np.ndarray:
        """Unbiased per-attribute mean estimates: the column averages."""
        arr = np.asarray(reports, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValueError("reports must be a non-empty (n, d) matrix")
        return arr.mean(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DuchiMultidimMechanism(epsilon={self.epsilon!r}, d={self.d})"
