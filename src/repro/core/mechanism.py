"""Abstract interface for 1-D numeric LDP mechanisms.

A :class:`NumericMechanism` perturbs a single numeric value in [-1, 1]
under epsilon-local differential privacy.  Concrete subclasses implement
the paper's mechanisms (Laplace, SCDF, Staircase, Duchi et al., PM, HM).

Every mechanism exposes, besides sampling, the *closed-form* per-input
noise variance and its worst case over the input domain — these are the
quantities Table I and Figs. 1/3 of the paper compare.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Tuple, Type

import numpy as np

from repro.core.validation import check_epsilon, check_unit_interval
from repro.utils.rng import RngLike, ensure_rng

#: Points in the dense [-1, 1] grid used by worst-case-variance searches.
#: Odd and of the form 2^m + 1 so the grid contains -1, 0 and 1 exactly.
VARIANCE_GRID_POINTS = 2049


def variance_grid() -> np.ndarray:
    """The dense symmetric grid over [-1, 1] for worst-case searches.

    Used as the fallback wherever a closed-form maximizer is unknown:
    mechanism variances need not be monotone in |t| (e.g. mixtures with
    suboptimal weights), so endpoint evaluation alone can silently
    under-report the worst case.
    """
    return np.linspace(-1.0, 1.0, VARIANCE_GRID_POINTS)


class NumericMechanism(abc.ABC):
    """Base class for one-dimensional numeric ε-LDP mechanisms.

    Parameters
    ----------
    epsilon:
        The privacy budget ε > 0 consumed by one invocation of
        :meth:`privatize` per value.
    """

    #: Registry key; subclasses set a short lowercase name.
    name: str = "abstract"

    def __init__(self, epsilon: float):
        self.epsilon = check_epsilon(epsilon)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def privatize(self, values, rng: RngLike = None) -> np.ndarray:
        """Perturb each value in ``values`` independently under ε-LDP.

        ``values`` may be a scalar or any array shape; the output has the
        same shape.  Each entry consumes the full budget ε, so callers
        perturbing a d-dimensional tuple must split the budget themselves
        (or use :mod:`repro.multidim`).
        """

    # ------------------------------------------------------------------
    # Closed-form accuracy
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def variance(self, t) -> np.ndarray:
        """Noise variance Var[t* | t] for each input value ``t``."""

    def worst_case_variance(self) -> float:
        """max over t in [-1, 1] of :meth:`variance`.

        Default implementation evaluates a dense grid over [-1, 1]
        (which always contains the points -1, 0 and 1).  Every built-in
        mechanism's variance is monotone in |t|, making the endpoints
        sufficient — but the base class must not assume that, since
        mixtures and ablation mechanisms can peak at interior points.
        Subclasses override with closed forms where available.
        """
        candidates = self.variance(variance_grid())
        return float(np.max(candidates))

    def output_range(self) -> Tuple[float, float]:
        """The support of the perturbed output (may be infinite)."""
        return (-math.inf, math.inf)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def estimate_mean(self, reports) -> float:
        """Unbiased mean estimate from a collection of perturbed reports.

        All mechanisms here are unbiased (E[t*] = t), so the aggregator's
        estimator is simply the average of the reports.

        For sharded or streaming aggregation prefer the mergeable
        protocol-layer equivalent,
        :class:`repro.protocol.accumulators.MeanAccumulator` (obtained
        via ``repro.protocol.Protocol.numeric_mean(...)``).
        """
        arr = np.asarray(reports, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot estimate a mean from zero reports")
        return float(arr.mean())

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _prepare(self, values, rng: RngLike):
        """Common prologue: validate domain, coerce rng, flatten."""
        arr = check_unit_interval(values, name="values")
        return np.atleast_1d(arr), np.shape(values), ensure_rng(rng)

    @staticmethod
    def _restore(flat: np.ndarray, shape) -> np.ndarray:
        """Reshape a flat result to the caller's input shape."""
        out = flat.reshape(shape) if shape else flat.reshape(())
        return out[()] if shape == () else out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self.epsilon!r})"


#: Registry of mechanism name -> class, populated by register_mechanism.
_REGISTRY: Dict[str, Type[NumericMechanism]] = {}


def register_mechanism(cls: Type[NumericMechanism]) -> Type[NumericMechanism]:
    """Class decorator adding a mechanism to the name registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} must define a unique 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate mechanism name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def available_mechanisms() -> Tuple[str, ...]:
    """Names of all registered 1-D numeric mechanisms."""
    return tuple(sorted(_REGISTRY))


def get_mechanism(name: str, epsilon: float, **kwargs) -> NumericMechanism:
    """Instantiate a registered mechanism by name.

    >>> get_mechanism("pm", 1.0)          # doctest: +ELLIPSIS
    PiecewiseMechanism(epsilon=1.0)
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; available: {available_mechanisms()}"
        ) from None
    return cls(epsilon, **kwargs)
