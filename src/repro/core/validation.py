"""Input validation shared by every mechanism.

All numeric mechanisms in the paper assume inputs in the canonical domain
[-1, 1] and a strictly positive privacy budget epsilon.  These helpers
raise early, descriptive errors instead of producing silently-biased
estimates downstream.
"""

from __future__ import annotations

import math

import numpy as np

#: Tolerance for domain checks, to forgive float rounding at the endpoints.
DOMAIN_ATOL = 1e-9


def check_epsilon(epsilon: float) -> float:
    """Validate a privacy budget and return it as a float."""
    epsilon = float(epsilon)
    if not math.isfinite(epsilon):
        raise ValueError(f"epsilon must be finite, got {epsilon}")
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return epsilon


def check_unit_interval(values, name: str = "values") -> np.ndarray:
    """Validate that values lie in [-1, 1] and return them as an ndarray.

    Scalars are accepted and become 0-d arrays; callers use
    ``np.atleast_1d`` when they need a vector.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    lo, hi = float(arr.min()), float(arr.max())
    if lo < -1.0 - DOMAIN_ATOL or hi > 1.0 + DOMAIN_ATOL:
        raise ValueError(
            f"{name} must lie in [-1, 1]; observed range [{lo:.6g}, {hi:.6g}]. "
            "Normalize inputs first (see repro.data.normalize)."
        )
    return np.clip(arr, -1.0, 1.0)


def check_dimension(d: int) -> int:
    """Validate a dimensionality parameter."""
    d = int(d)
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    return d


def check_probability(p: float, name: str = "probability") -> float:
    """Validate that p is a probability in [0, 1]."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p


def check_matrix(values, d: int, name: str = "tuples") -> np.ndarray:
    """Validate an (n, d) matrix of numeric tuples in [-1, 1]^d."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got ndim={arr.ndim}")
    if arr.shape[1] != d:
        raise ValueError(
            f"{name} must have {d} columns, got {arr.shape[1]}"
        )
    return check_unit_interval(arr, name=name)
