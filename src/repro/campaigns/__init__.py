"""Multi-tenant collection campaigns.

The paper's deployment story is an operator running *many* concurrent
LDP collections — different attribute sets, epsilons, mechanisms —
over one user population.  This package is that layer:

* :mod:`repro.campaigns.lifecycle` — the one-way campaign state
  machine ``open -> sealed -> estimated``.
* :mod:`repro.campaigns.registry` — :class:`Campaign` (a protocol, its
  accumulator, idempotency keys, lifecycle state) and
  :class:`CampaignRegistry`, keyed by the SHA-256 spec fingerprint the
  wire envelope already carries.
* :mod:`repro.campaigns.ledger` — :class:`CrossCampaignLedger`, the
  single per-user budget shared by every campaign: no matter how many
  campaigns a user reports into, their total epsilon spend is capped.

:class:`~repro.service.server.IngestionServer` routes every request
through a registry + ledger pair; see DESIGN.md ("The campaign layer").
"""

from repro.campaigns.ledger import CrossCampaignLedger, batch_multiplicity
from repro.campaigns.lifecycle import (
    TRANSITIONS,
    CampaignState,
    InvalidTransitionError,
    check_transition,
)
from repro.campaigns.registry import (
    Campaign,
    CampaignRegistry,
    CampaignSealedError,
    UnknownCampaignError,
)

__all__ = [
    "TRANSITIONS",
    "Campaign",
    "CampaignRegistry",
    "CampaignSealedError",
    "CampaignState",
    "CrossCampaignLedger",
    "InvalidTransitionError",
    "UnknownCampaignError",
    "batch_multiplicity",
    "check_transition",
]
