"""Cross-campaign privacy ledger: one budget per user, many campaigns.

Sequential composition does not care *which* collection consumed a
user's budget — epsilon spent in campaign A and epsilon spent in
campaign B add up on the same person.  The
:class:`CrossCampaignLedger` therefore wraps a single
:class:`~repro.analysis.accountant.PrivacyAccountant` shared by every
campaign on a server: each accepted report charges its campaign's
``spec.epsilon`` against the user's one global ``lifetime_epsilon``,
with the campaign fingerprint recorded as the
:class:`~repro.analysis.accountant.Charge` label so the spend can be
broken down per campaign after the fact.

Batch semantics mirror the single-campaign server: a batch is charged
atomically — either every user in it (at multiplicity) has room and
all are charged, or :meth:`rejected_users` is non-empty and the caller
rejects the whole batch (HTTP 429) without touching the ledger.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.accountant import PrivacyAccountant


def batch_multiplicity(users: Iterable[str]) -> Dict[str, int]:
    """How many reports each user contributes to one batch.

    Multiplicity matters for atomic budget checks: a user appearing
    twice must afford 2x the per-report epsilon.
    """
    multiplicity: Dict[str, int] = {}
    for user in users:
        name = str(user)
        multiplicity[name] = multiplicity.get(name, 0) + 1
    return multiplicity


class CrossCampaignLedger:
    """Per-user global budget enforcement across all campaigns."""

    def __init__(
        self,
        lifetime_epsilon: float,
        accountant: Optional[PrivacyAccountant] = None,
    ):
        self.accountant = (
            PrivacyAccountant(lifetime_epsilon=lifetime_epsilon)
            if accountant is None
            else accountant
        )

    # ------------------------------------------------------------------
    @property
    def lifetime_epsilon(self) -> float:
        return self.accountant.lifetime_epsilon

    def spent(self, user: str) -> float:
        return self.accountant.spent(user)

    def spent_many(self, users: Iterable[str]) -> List[float]:
        return self.accountant.spent_many(users)

    def remaining(self, user: str) -> float:
        return self.accountant.remaining(user)

    def users(self) -> Tuple[str, ...]:
        return self.accountant.users()

    def spent_by_campaign(self, user: str) -> Dict[str, float]:
        """Per-campaign breakdown of ``user``'s total spend (labels on
        the underlying ledger are campaign fingerprints)."""
        return self.accountant.spent_by_label(user)

    # ------------------------------------------------------------------
    def rejected_users(
        self, multiplicity: Dict[str, int], epsilon: float
    ) -> List[str]:
        """Users whose *cross-campaign* remaining budget cannot cover
        their share of this batch.  Non-empty means the whole batch
        must be rejected."""
        return [
            user
            for user, count in multiplicity.items()
            if not self.accountant.can_charge(user, count * epsilon)
        ]

    def charge_batch(
        self,
        multiplicity: Dict[str, int],
        epsilon: float,
        campaign: str,
    ) -> None:
        """Charge one pre-checked batch, labelled by campaign.

        Callers must have verified :meth:`rejected_users` is empty —
        the underlying accountant still raises
        :class:`~repro.analysis.accountant.BudgetExceededError` on an
        overdraw, so a missed pre-check cannot corrupt the ledger.
        """
        for user, count in multiplicity.items():
            self.accountant.charge(user, count * epsilon, label=campaign)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly snapshot (bitwise round-trip via the
        accountant's float-exact serialization)."""
        return {"type": "cross-campaign-ledger", **self.accountant.to_dict()}

    @classmethod
    def from_dict(cls, payload: Dict) -> "CrossCampaignLedger":
        return cls(
            lifetime_epsilon=float(payload["lifetime_epsilon"]),
            accountant=PrivacyAccountant.from_dict(payload),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossCampaignLedger(lifetime_epsilon="
            f"{self.lifetime_epsilon:g}, users={len(self.users())})"
        )
