"""Campaign registry: many concurrent collections on one server.

A :class:`Campaign` bundles everything one collection owns — its
:class:`~repro.protocol.facade.Protocol`, its single
:class:`~repro.protocol.accumulators.ServerAccumulator`, its
idempotency-key set, its lifecycle state, and its counters.  The
:class:`CampaignRegistry` keys campaigns by the SHA-256 fingerprint of
their canonical spec dict (the same fingerprint the wire envelope
carries), so the campaign *id* and the spec-integrity check are one
value: addressing a campaign with the wrong spec is structurally
impossible to do silently.

What campaigns deliberately do **not** own is a privacy accountant —
budget is a property of the *user*, not the collection, and lives in
the one :class:`~repro.campaigns.ledger.CrossCampaignLedger` shared by
every campaign on the server.

The service's wire codec is imported lazily inside methods: ``campaigns``
sits below ``service`` in the import graph (``service.server`` imports
this module at top), so a module-level import back into
``repro.service`` would be a cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Union

from repro.campaigns.lifecycle import CampaignState, check_transition
from repro.obs.logging import get_logger
from repro.protocol.accumulators import ServerAccumulator
from repro.protocol.facade import Protocol
from repro.protocol.reports import ColumnBlock
from repro.protocol.spec import ProtocolSpec
from repro.stream.heavy import HeavyHitterTracker
from repro.stream.windows import WindowConfig, WindowedAccumulator

_log = get_logger("repro.campaigns.registry")


class UnknownCampaignError(KeyError):
    """No campaign registered under the requested fingerprint."""


class CampaignSealedError(RuntimeError):
    """A report was addressed at a campaign that no longer ingests."""


class Campaign:
    """One collection: a protocol, its accumulator, and its lifecycle.

    Parameters
    ----------
    protocol_or_spec:
        A :class:`Protocol`, :class:`ProtocolSpec`, or spec dict.
    default:
        Whether v1 (campaign-unaware) envelopes route here.
    shards:
        Number of per-shard accumulators.  ``1`` (the default) is the
        classic single-accumulator campaign; the sharded server passes
        its worker count and each worker owns one index of
        :attr:`accumulators`.
    window:
        Optional :class:`~repro.stream.windows.WindowConfig` (or its
        dict form).  When set, every shard accumulator is a
        :class:`~repro.stream.windows.WindowedAccumulator` over the
        protocol's accumulator factory, and the campaign answers
        ``GET /estimate?window=...`` queries.  The window config lives
        *outside* the :class:`ProtocolSpec` on purpose: it changes what
        the server can answer, not what users transmit, so it must not
        change the campaign fingerprint that clients validate against.
    """

    def __init__(
        self,
        protocol_or_spec: Union[Protocol, ProtocolSpec, Dict[str, Any]],
        default: bool = False,
        shards: int = 1,
        window: Optional[Union[WindowConfig, Dict[str, Any]]] = None,
    ):
        from repro.service.wire import spec_fingerprint

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if isinstance(protocol_or_spec, Protocol):
            self.protocol = protocol_or_spec
        else:
            self.protocol = Protocol.from_spec(protocol_or_spec)
        if window is not None and not isinstance(window, WindowConfig):
            window = WindowConfig.from_dict(window)
        self.window = window
        self.heavy: Optional[HeavyHitterTracker] = None
        self.spec = self.protocol.spec
        self.fingerprint = spec_fingerprint(self.spec)
        self.default = bool(default)
        self.state = CampaignState.OPEN
        self.shards = int(shards)
        self.accumulators: List[ServerAccumulator] = [
            self._new_accumulator() for _ in range(self.shards)
        ]
        self.seen_keys: set = set()
        self.batches_accepted = 0
        self.duplicates = 0
        # Sequence of the last namespaced snapshot holding this
        # campaign's accumulator; None until first saved.  Dirty means
        # state has changed since then and the next checkpoint must
        # rewrite it.
        self.saved_seq: Optional[int] = None
        self.dirty = True

    # ------------------------------------------------------------------
    def _new_accumulator(self) -> ServerAccumulator:
        """A fresh accumulator of this campaign's shape: windowed when
        the campaign has a window config, plain otherwise."""
        if self.window is not None:
            return self.window.build(self.protocol.server)
        return self.protocol.server()

    @property
    def windowed(self) -> bool:
        """Whether this campaign answers ``?window=`` queries."""
        return self.window is not None

    @property
    def accumulator(self) -> ServerAccumulator:
        """The single-shard accumulator (shard 0).

        The pre-sharding surface: every ``shards=1`` campaign (the
        default) behaves exactly as before.  Sharded campaigns expose
        :attr:`accumulators` per shard and :meth:`merged_accumulator`
        for the fan-in view.
        """
        return self.accumulators[0]

    @property
    def reports(self) -> int:
        """Reports absorbed so far, across all shards."""
        return int(sum(acc.count for acc in self.accumulators))

    def validate_batch(self, batch: Any) -> None:
        """Raise ``ValueError`` iff absorbing ``batch`` would.

        Runs on the request path *before* budget is charged and the
        batch is enqueued to a shard worker; never mutates state
        (validation dispatches through shard 0, but every shard
        accumulator is an identically configured twin).
        """
        if isinstance(batch, ColumnBlock):
            self.accumulators[0].validate_columns(batch)
        else:
            self.accumulators[0].validate_reports(batch)

    def absorb_shard(
        self, index: int, batch: Any, round_: Optional[int] = None
    ) -> int:
        """Fold one validated batch into shard ``index``; returns the
        number of reports absorbed (the shard workers' counter).

        ``round_`` routes the batch into that round's pane on windowed
        campaigns (round-less batches land in the current pane); plain
        campaigns ignore it — the round is a windowing concern, not an
        accumulation one.
        """
        acc = self.accumulators[index]
        before = acc.count
        if isinstance(acc, WindowedAccumulator) and round_ is not None:
            if isinstance(batch, ColumnBlock):
                acc.absorb_columns_round(round_, batch)
            else:
                acc.absorb_round(round_, batch)
        elif isinstance(batch, ColumnBlock):
            acc.absorb_columns(batch)
        else:
            acc.absorb(batch)
        return int(acc.count - before)

    def merged_accumulator(self) -> ServerAccumulator:
        """The campaign-wide accumulator view for estimates.

        ``shards=1`` returns the live accumulator itself.  Sharded
        campaigns fold every shard's state into a fresh accumulator in
        fixed shard order — deterministic, so re-merging after a
        checkpoint resume is bitwise-identical — leaving the per-shard
        state untouched.
        """
        if self.shards == 1:
            return self.accumulators[0]
        merged = self._new_accumulator()
        for acc in self.accumulators:
            merged.merge(acc)
        return merged

    def merged_window(self) -> WindowedAccumulator:
        """The campaign-wide *windowed* view; raises on plain campaigns."""
        if self.window is None:
            raise ValueError(
                f"campaign {self.fingerprint[:12]}... has no window "
                f"config; only all-time estimates are available"
            )
        merged = self.merged_accumulator()
        assert isinstance(merged, WindowedAccumulator)
        return merged

    def heavy_tracker(self, k: int) -> HeavyHitterTracker:
        """The campaign's churn tracker, created on first use."""
        if self.heavy is None:
            self.heavy = HeavyHitterTracker(k=k)
            self.dirty = True
        return self.heavy

    # ------------------------------------------------------------------
    # Live window introspection (cheap enough for metric gauges:
    # reads per-shard pane counters, never merges accumulators)
    # ------------------------------------------------------------------
    def window_latest_round(self) -> int:
        """Highest round absorbed across shards (-1 before any data)."""
        latest = -1
        for acc in self.accumulators:
            if isinstance(acc, WindowedAccumulator):
                if acc.latest_round is not None:
                    latest = max(latest, acc.latest_round)
        return latest

    def window_live_panes(self) -> int:
        """Distinct live rounds across shards."""
        rounds: set = set()
        for acc in self.accumulators:
            if isinstance(acc, WindowedAccumulator):
                rounds.update(acc.live_rounds())
        return len(rounds)

    def window_reports(self) -> int:
        """Reports currently held in live panes, across shards."""
        return sum(
            sum(acc.pane_counts().values())
            for acc in self.accumulators
            if isinstance(acc, WindowedAccumulator)
        )

    @property
    def accepts_reports(self) -> bool:
        return self.state is CampaignState.OPEN

    def seal(self) -> CampaignState:
        """``open -> sealed`` (idempotent on sealed/estimated)."""
        if self.state is not CampaignState.ESTIMATED:
            was = self.state
            self.state = check_transition(self.state, CampaignState.SEALED)
            self.dirty = True
            if self.state is not was:
                _log.info(
                    "campaign state transition",
                    extra={
                        "campaign": self.fingerprint,
                        "from": was.value,
                        "to": self.state.value,
                        "reports": self.reports,
                    },
                )
        return self.state

    def mark_estimated(self) -> CampaignState:
        """``sealed -> estimated`` — called when a final estimate is
        served; estimating an *open* campaign is allowed but non-final
        and does not transition."""
        was = self.state
        self.state = check_transition(self.state, CampaignState.ESTIMATED)
        self.dirty = True
        if self.state is not was:
            _log.info(
                "campaign state transition",
                extra={
                    "campaign": self.fingerprint,
                    "from": was.value,
                    "to": self.state.value,
                    "reports": self.reports,
                },
            )
        return self.state

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-friendly public listing entry (``GET /campaigns``)."""
        return {
            "campaign": self.fingerprint,
            "kind": self.spec.kind,
            "epsilon": self.spec.epsilon,
            "state": self.state.value,
            "final": self.state is not CampaignState.OPEN,
            "default": self.default,
            "shards": self.shards,
            "reports": self.reports,
            "batches_accepted": self.batches_accepted,
            "duplicates": self.duplicates,
            "window": (
                self.window.to_dict() if self.window is not None else None
            ),
        }

    def manifest_entry(self) -> Dict[str, Any]:
        """Metadata recorded in the root snapshot manifest (everything
        except the accumulator payload, which lives in this campaign's
        own snapshot namespace)."""
        entry: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "state": self.state.value,
            "default": self.default,
            "batches_accepted": self.batches_accepted,
            "duplicates": self.duplicates,
            "seq": self.saved_seq,
        }
        if self.window is not None:
            entry["window"] = self.window.to_dict()
        if self.heavy is not None:
            entry["heavy"] = self.heavy.to_dict()
        return entry

    def snapshot_payload(self) -> Dict[str, Any]:
        """Wire-encoded accumulator state + idempotency keys.

        Single-shard campaigns keep the pre-sharding payload format
        (one ``accumulator`` entry), so their snapshots stay loadable
        by older code; sharded campaigns write one encoded state per
        shard under ``shard_accumulators``.
        """
        from repro.service.wire import encode_accumulator_state

        payload: Dict[str, Any] = {
            "fingerprint": self.fingerprint,
            "idempotency_keys": sorted(self.seen_keys),
        }
        if self.shards == 1:
            payload["accumulator"] = encode_accumulator_state(
                self.accumulators[0]
            )
        else:
            payload["shards"] = self.shards
            payload["shard_accumulators"] = [
                encode_accumulator_state(acc) for acc in self.accumulators
            ]
        return payload

    def restore(
        self, manifest: Dict[str, Any], payload: Dict[str, Any]
    ) -> "Campaign":
        """Load the state a manifest entry + namespaced snapshot carry."""
        from repro.service.wire import (
            SpecMismatchError,
            decode_accumulator_state,
        )

        if payload.get("fingerprint") != self.fingerprint:
            raise SpecMismatchError(
                f"campaign snapshot was written by "
                f"{str(payload.get('fingerprint'))[:12]!r}..., not "
                f"{self.fingerprint[:12]!r}..."
            )
        if "shard_accumulators" in payload:
            states = payload["shard_accumulators"]
            if len(states) != self.shards:
                raise ValueError(
                    f"snapshot holds {len(states)} shard accumulators, "
                    f"campaign is configured with {self.shards} shards — "
                    f"restart with --shards {len(states)} to resume it"
                )
            for acc, state in zip(self.accumulators, states):
                decode_accumulator_state(acc, state)
        else:
            # Pre-sharding payload: the whole campaign state loads into
            # shard 0 (correct under merge — the other shards are
            # empty), whatever the configured shard count.
            decode_accumulator_state(
                self.accumulators[0], payload["accumulator"]
            )
        self.seen_keys = set(payload.get("idempotency_keys", []))
        self.state = CampaignState.coerce(manifest["state"])
        self.default = bool(manifest.get("default", self.default))
        self.batches_accepted = int(manifest["batches_accepted"])
        self.duplicates = int(manifest.get("duplicates", 0))
        if manifest.get("heavy") is not None:
            self.heavy = HeavyHitterTracker.from_dict(manifest["heavy"])
        self.saved_seq = manifest.get("seq")
        self.dirty = False
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Campaign({self.spec.kind!r}, "
            f"fingerprint={self.fingerprint[:12]}..., "
            f"state={self.state.value}, reports={self.reports})"
        )


class CampaignRegistry:
    """All campaigns one server instance is running, by fingerprint.

    ``shards`` is a server-level property: every campaign registered
    here gets that many per-shard accumulators, matching the server's
    worker count.
    """

    def __init__(self, shards: int = 1):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        self._campaigns: Dict[str, Campaign] = {}
        self._default: Optional[str] = None

    # ------------------------------------------------------------------
    def register(
        self,
        protocol_or_spec: Union[Protocol, ProtocolSpec, Dict[str, Any]],
        default: bool = False,
        window: Optional[Union[WindowConfig, Dict[str, Any]]] = None,
    ) -> tuple:
        """Add a campaign; returns ``(campaign, created)``.

        Registration is idempotent by fingerprint: re-registering an
        existing spec returns the live campaign untouched (its
        accumulated reports, state and keys are kept).  A re-register
        may omit the window config (window-unaware callers never strip
        an existing window) but must not *contradict* it — the window
        shapes the accumulator state, so changing it mid-flight would
        corrupt snapshots.
        """
        campaign = Campaign(
            protocol_or_spec,
            default=default,
            shards=self.shards,
            window=window,
        )
        existing = self._campaigns.get(campaign.fingerprint)
        if existing is not None:
            if (
                campaign.window is not None
                and existing.window != campaign.window
            ):
                raise ValueError(
                    f"campaign {existing.fingerprint[:12]}... is already "
                    f"registered with window={existing.window}; "
                    f"cannot re-register with window={campaign.window}"
                )
            if default and self._default is None:
                existing.default = True
                self._default = existing.fingerprint
            return existing, False
        if default:
            if self._default is not None:
                raise ValueError(
                    "registry already has a default campaign "
                    f"({self._default[:12]}...)"
                )
            self._default = campaign.fingerprint
        self._campaigns[campaign.fingerprint] = campaign
        return campaign, True

    def get(self, fingerprint: str) -> Campaign:
        try:
            return self._campaigns[fingerprint]
        except KeyError:
            raise UnknownCampaignError(
                f"no campaign registered under fingerprint "
                f"{str(fingerprint)[:12]!r}..."
            ) from None

    def resolve(self, fingerprint: Optional[str]) -> Campaign:
        """Route an envelope: explicit fingerprint, or the default
        campaign when the sender is campaign-unaware (v1 client)."""
        if fingerprint is not None:
            return self.get(fingerprint)
        if self._default is None:
            raise UnknownCampaignError(
                "envelope names no campaign and this server has no "
                "default campaign"
            )
        return self._campaigns[self._default]

    @property
    def default(self) -> Optional[Campaign]:
        if self._default is None:
            return None
        return self._campaigns[self._default]

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._campaigns

    def __len__(self) -> int:
        return len(self._campaigns)

    def __iter__(self) -> Iterator[Campaign]:
        return iter(self._campaigns.values())

    def fingerprints(self) -> List[str]:
        return list(self._campaigns)

    def describe(self) -> List[Dict[str, Any]]:
        """Public listing, default campaign first then by fingerprint."""
        return [
            c.describe()
            for c in sorted(
                self._campaigns.values(),
                key=lambda c: (not c.default, c.fingerprint),
            )
        ]

    def total_reports(self) -> int:
        return sum(c.reports for c in self._campaigns.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CampaignRegistry(campaigns={len(self._campaigns)}, "
            f"default={self._default and self._default[:12]})"
        )
