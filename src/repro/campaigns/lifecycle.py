"""Campaign lifecycle state machine.

A collection campaign moves one way through three states:

    open ──seal──▶ sealed ──estimate──▶ estimated

* **open** — accepting reports.  Estimates may be served but are
  *non-final*: more reports can still arrive.
* **sealed** — closed to ingestion (a report addressed at a sealed
  campaign is a 409, never silently dropped); the aggregate is frozen.
* **estimated** — a final estimate has been served from the frozen
  aggregate.  Terminal.

Transitions are validated centrally by :func:`check_transition` so the
server, the registry, and snapshot restoration all enforce the same
graph; an illegal jump raises :class:`InvalidTransitionError` instead
of corrupting a campaign's history.
"""

from __future__ import annotations

from enum import Enum
from typing import Union


class InvalidTransitionError(RuntimeError):
    """An illegal campaign state transition was requested."""


class CampaignState(str, Enum):
    """Lifecycle states of one collection campaign."""

    OPEN = "open"
    SEALED = "sealed"
    ESTIMATED = "estimated"

    @classmethod
    def coerce(cls, value: Union["CampaignState", str]) -> "CampaignState":
        """Accept a state or its string name (snapshot payloads)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise InvalidTransitionError(
                f"unknown campaign state {value!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


#: Allowed forward edges of the lifecycle graph.
TRANSITIONS = {
    CampaignState.OPEN: frozenset({CampaignState.SEALED}),
    CampaignState.SEALED: frozenset({CampaignState.ESTIMATED}),
    CampaignState.ESTIMATED: frozenset(),
}


def check_transition(
    current: CampaignState, target: CampaignState
) -> CampaignState:
    """Validate ``current -> target``; returns ``target``.

    Self-transitions are allowed (sealing a sealed campaign is an
    idempotent no-op), every other edge must be in :data:`TRANSITIONS`.
    """
    current = CampaignState.coerce(current)
    target = CampaignState.coerce(target)
    if target is current:
        return target
    if target not in TRANSITIONS[current]:
        raise InvalidTransitionError(
            f"cannot move a campaign from {current.value!r} to "
            f"{target.value!r}; lifecycle is open -> sealed -> estimated"
        )
    return target
