"""Graceful-drain lifecycle: signal plumbing and drain bookkeeping.

Production shutdown is a *sequence*, not an event: stop admitting new
work, finish what is in flight, persist state, then exit 0 so the
orchestrator knows the stop was clean.  This module holds the generic
half of that sequence — the service layer owns the specific steps
(answer ``POST /report`` with 503, flush shard queues, write the final
checkpoint), see :meth:`repro.service.server.IngestionServer.drain`.

The contract that makes drain *graceful* rather than merely polite:
the snapshot a drained server leaves behind is **bitwise-equal** to
the one an uninterrupted server would write after the same accepted
batches.  Drain adds no state of its own — it only stops admission and
runs the same flush + checkpoint path early.

:class:`DrainState` is the three-step ladder (serving → draining →
drained; strictly forward), :class:`SignalDrain` turns POSIX signals
into an awaitable event on the loop, and :class:`DrainResult` is the
receipt the drain path returns (what was flushed, what was persisted,
how long it took).
"""

from __future__ import annotations

import asyncio
import enum
import signal as _signal
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

__all__ = ["DrainResult", "DrainState", "SignalDrain"]


class DrainState(enum.Enum):
    """Where a service is on the shutdown ladder (strictly forward)."""

    SERVING = "serving"
    DRAINING = "draining"
    DRAINED = "drained"


_ORDER = [DrainState.SERVING, DrainState.DRAINING, DrainState.DRAINED]


def advance(current: DrainState, target: DrainState) -> DrainState:
    """Move down the ladder; backwards moves raise (idempotent on
    same-state)."""
    if _ORDER.index(target) < _ORDER.index(current):
        raise ValueError(
            f"cannot move from {current.value} back to {target.value}"
        )
    return target


@dataclass(frozen=True)
class DrainResult:
    """Receipt for one completed drain.

    ``checkpoint_seq`` is ``None`` when the server runs without a
    snapshot store (nothing durable to write); ``shards_flushed`` is 0
    for a single-shard (inline-absorb) server.
    """

    checkpoint_seq: Optional[int]
    shards_flushed: int
    batches_accepted: int
    seconds: float


class SignalDrain:
    """Await POSIX shutdown signals as an asyncio event.

    Usage (from an entrypoint, inside the running loop):

        drain = SignalDrain().install()
        ...
        signum = await drain.wait()   # blocks until SIGTERM/SIGINT


    ``install()`` registers loop-level handlers (not the default
    Python signal handlers), so delivery is prompt even mid-select and
    never interrupts a handler in an inconsistent state.  The second
    signal of the same kind is deliberately left at its default
    disposition-by-flag: :attr:`count` lets callers implement
    "second SIGTERM = abort now" policies.
    """

    def __init__(
        self, signals: Iterable[int] = (_signal.SIGTERM,)
    ) -> None:
        self.signals: Tuple[int, ...] = tuple(signals)
        self._event = asyncio.Event()
        self._received: Optional[int] = None
        self.count = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _trigger(self, signum: int) -> None:
        self.count += 1
        if self._received is None:
            self._received = signum
        self._event.set()

    def install(self) -> "SignalDrain":
        """Register handlers on the *running* loop (call from inside)."""
        loop = asyncio.get_running_loop()
        for signum in self.signals:
            loop.add_signal_handler(signum, self._trigger, signum)
        self._loop = loop
        return self

    def uninstall(self) -> None:
        """Restore default handling (idempotent; safe if never installed)."""
        if self._loop is None:
            return
        for signum in self.signals:
            try:
                self._loop.remove_signal_handler(signum)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass
        self._loop = None

    @property
    def triggered(self) -> bool:
        return self._event.is_set()

    @property
    def signal(self) -> Optional[int]:
        """The first signal received, or ``None``."""
        return self._received

    async def wait(self) -> int:
        """Block until a registered signal arrives; returns its number."""
        await self._event.wait()
        assert self._received is not None
        return self._received
