"""Thread-safe metric primitives + Prometheus text exposition.

A deliberately dependency-free re-implementation of the three metric
shapes the service tier needs — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — behind a :class:`MetricsRegistry` that renders
the Prometheus *text exposition format v0.0.4* (the format every
Prometheus server scrapes), so ``GET /metrics`` works against a stock
Prometheus without ``prometheus_client`` being installed.

Semantics mirror the real client library where it matters:

* metric and label names are validated against the Prometheus grammar,
  and the reserved ``__`` prefix is rejected;
* a metric family may declare label names; :meth:`Metric.labels`
  returns (creating on first use) the child for one label-value tuple,
  and the child is cached so hot paths pay one dict lookup;
* histograms expose cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count``, with ``+Inf`` always present;
* rendering escapes help strings (``\\`` and newline) and label values
  (``\\``, ``"`` and newline) exactly as the exposition format
  specifies.

Differences, both deliberate:

* :meth:`Counter.restore` exists so a counter whose value doubles as
  *durable state* (the ingest server's ``batches_accepted``, which is
  also the snapshot sequence number) can resume across restarts
  instead of resetting to zero;
* ``MetricsRegistry(enabled=False)`` hands out no-op instruments with
  the same surface, which is how the benchmark measures the cost of
  instrumentation itself (and how callers opt out wholesale).

Everything is thread-safe: one lock per metric family guards child
creation, one lock per child guards its numbers.  Registration is
idempotent — asking the registry for an already-registered name
returns the existing family, provided type/help/labels agree.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "CONTENT_TYPE_LATEST",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "null_registry",
]

#: The Content-Type a /metrics response must carry for Prometheus.
CONTENT_TYPE_LATEST = "text/plain; version=0.0.4; charset=utf-8"

#: prometheus_client's default latency buckets (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.25, 0.5, 0.75,
    1.0, 2.5, 5.0, 7.5, 10.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_metric_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    if name.startswith("__"):
        raise ValueError(f"metric name {name!r} uses the reserved __ prefix")
    return name


def _check_label_names(labels: Sequence[str]) -> Tuple[str, ...]:
    out = []
    for label in labels:
        if not _LABEL_NAME_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
        if label.startswith("__"):
            raise ValueError(
                f"label name {label!r} uses the reserved __ prefix"
            )
        if label == "le":
            raise ValueError(
                "label name 'le' is reserved for histogram buckets"
            )
        out.append(label)
    if len(set(out)) != len(out):
        raise ValueError(f"duplicate label names in {labels!r}")
    return tuple(out)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Exposition-format number: ``+Inf``/``-Inf``/``NaN`` spelled the
    Prometheus way, integers without a trailing ``.0``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(
    names: Sequence[str], values: Sequence[str], extra: str = ""
) -> str:
    pairs = [
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_observer", "_start")

    def __init__(self, observer: Callable[[float], None]):
        self._observer = observer
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._observer(time.perf_counter() - self._start)


class Metric:
    """One metric family: a name, a type, and labelled children.

    An unlabelled family is its own single child — ``inc``/``set``/
    ``observe`` on the family operate on it directly.  A labelled
    family requires :meth:`labels` first (mirroring prometheus_client,
    where forgetting labels raises instead of silently aggregating).
    """

    typ = "untyped"

    def __init__(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> None:
        self.name = _check_metric_name(name)
        self.help = str(help)
        self.label_names = _check_label_names(labels)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not self.label_names:
            self._children[()] = self._new_child(())

    # -- child management ------------------------------------------------
    def _new_child(self, values: Tuple[str, ...]) -> Any:
        raise NotImplementedError

    def labels(self, *values: str, **kv: str) -> Any:
        """The child for one label-value combination (created on first
        use).  Accepts positional values in declared order or keyword
        form; values are coerced to ``str``."""
        if values and kv:
            raise ValueError("pass label values positionally or by name")
        if kv:
            try:
                values = tuple(str(kv[n]) for n in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name} needs labels {self.label_names}, got "
                    f"{sorted(kv)}"
                ) from exc
            if len(kv) != len(self.label_names):
                raise ValueError(
                    f"{self.name} needs labels {self.label_names}, got "
                    f"{sorted(kv)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} declares {len(self.label_names)} labels "
                f"{self.label_names}, got {len(values)} values"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._new_child(values)
                    self._children[values] = child
        return child

    def _sole_child(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"{self.name} declares labels {self.label_names}; call "
                f".labels(...) first"
            )
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """``(label_values, child)`` pairs, sorted for stable output."""
        with self._lock:
            return sorted(self._children.items())

    # -- rendering -------------------------------------------------------
    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.typ}",
        ]
        for values, child in self.children():
            lines.extend(child.render_samples(self.name, values))
        return lines

    def render_samples(
        self, name: str, values: Tuple[str, ...]
    ) -> List[str]:  # pragma: no cover - children override
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("_lock", "_value", "label_names")

    def __init__(self, label_names: Tuple[str, ...]):
        self._lock = threading.Lock()
        self._value = 0.0
        self.label_names = label_names

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counters only go up; inc({amount}) is negative"
            )
        with self._lock:
            self._value += amount

    def restore(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def value_int(self) -> int:
        return int(self._value)

    def render_samples(self, name, values):
        labels = _render_labels(self.label_names, values)
        return [f"{name}{labels} {format_value(self._value)}"]


class Counter(Metric):
    """Monotonically increasing count (resets only on restart/restore)."""

    typ = "counter"

    def _new_child(self, values: Tuple[str, ...]) -> _CounterChild:
        return _CounterChild(self.label_names)

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def restore(self, value: float) -> None:
        """Reset to an absolute value — ONLY for resuming a counter
        that doubles as durable state after a checkpoint restore.
        Ordinary metrics must never go down; Prometheus handles the
        restart discontinuity via its own reset detection."""
        self._sole_child().restore(value)

    @property
    def value(self) -> float:
        """Unlabelled value, or the sum over every labelled child."""
        if not self.label_names:
            return self._children[()].value
        return sum(child.value for _, child in self.children())

    def value_int(self) -> int:
        return int(self.value)


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn", "label_names")

    def __init__(self, label_names: Tuple[str, ...]):
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self.label_names = label_names

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make this gauge *live*: every read calls ``fn``."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        return float(fn()) if fn is not None else self._value

    def render_samples(self, name, values):
        labels = _render_labels(self.label_names, values)
        return [f"{name}{labels} {format_value(self.value)}"]


class Gauge(Metric):
    """A value that can go up and down — or a live callback."""

    typ = "gauge"

    def _new_child(self, values: Tuple[str, ...]) -> _GaugeChild:
        return _GaugeChild(self.label_names)

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._sole_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._sole_child().value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "label_names")

    def __init__(
        self, label_names: Tuple[str, ...], bounds: Tuple[float, ...]
    ):
        self._lock = threading.Lock()
        self._bounds = bounds  # finite upper bounds, ascending
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self.label_names = label_names

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk observation: one lock acquisition, O(b log n) bucketing.

        Sorting once and bisecting each bucket bound over the sorted
        values keeps a 2k-report batch's per-user spend observation in
        the hundred-microsecond range — cheap enough for the ingest
        hot path (the benchmark's instrumented-vs-uninstrumented row
        guards this).
        """
        ordered = sorted(float(v) for v in values)
        if not ordered:
            return
        total = sum(ordered)
        cuts = [
            bisect.bisect_right(ordered, bound) for bound in self._bounds
        ]
        with self._lock:
            previous = 0
            for i, cut in enumerate(cuts):
                self._counts[i] += cut - previous
                previous = cut
            self._counts[-1] += len(ordered) - previous
            self._sum += total

    def time(self) -> _Timer:
        return _Timer(self.observe)

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def render_samples(self, name, values):
        lines = []
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
            total = self._sum
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            labels = _render_labels(
                self.label_names,
                values,
                extra=f'le="{format_value(bound)}"',
            )
            lines.append(f"{name}_bucket{labels} {cumulative}")
        cumulative += counts[-1]
        inf_labels = _render_labels(
            self.label_names, values, extra='le="+Inf"'
        )
        lines.append(f"{name}_bucket{inf_labels} {cumulative}")
        plain = _render_labels(self.label_names, values)
        lines.append(f"{name}_sum{plain} {format_value(total)}")
        lines.append(f"{name}_count{plain} {cumulative}")
        return lines


class Histogram(Metric):
    """Cumulative-bucket distribution with ``_sum`` and ``_count``."""

    typ = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"bucket bounds must be strictly ascending, got {buckets}"
            )
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit, always appended
            if not bounds:
                raise ValueError(
                    "histogram needs at least one finite bucket bound"
                )
        self._bounds = bounds
        super().__init__(name, help, labels)

    def _new_child(self, values: Tuple[str, ...]) -> _HistogramChild:
        return _HistogramChild(self.label_names, self._bounds)

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self._sole_child().observe_many(values)

    def time(self) -> _Timer:
        return self._sole_child().time()

    @property
    def count(self) -> int:
        return self._sole_child().count

    @property
    def sum(self) -> float:
        return self._sole_child().sum


class _NullInstrument:
    """Absorbs the full Counter/Gauge/Histogram surface as no-ops.

    ``MetricsRegistry(enabled=False)`` hands these out so call sites
    never branch on whether instrumentation is on.  Reads return
    zeros; ``labels`` returns the same instance.
    """

    def labels(self, *values: Any, **kv: Any) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def restore(self, value: float) -> None:
        pass

    def time(self) -> _Timer:
        return _Timer(lambda elapsed: None)

    @property
    def value(self) -> float:
        return 0.0

    def value_int(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Every metric one process (or one server) exposes.

    ``render()`` is the ``GET /metrics`` body: families in
    registration order, children in sorted label order — byte-stable
    given the same observations, which the golden-file tests rely on.

    Registration is idempotent: requesting an existing name returns
    the existing family if type, help and label names agree, and
    raises on any mismatch (two subsystems silently sharing a name
    with different schemas is a bug, not a merge).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- factories -------------------------------------------------------
    def _register(self, cls, name, help, labels, **kwargs):
        if not self.enabled:
            return _NULL
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.help != help
                    or existing.label_names != tuple(labels)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different type/help/labels"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- introspection ---------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def sample(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        """One sample's current value (test/healthz helper); ``None``
        for an unknown metric or an unobserved label combination."""
        metric = self.get(name)
        if metric is None:
            return None
        values = tuple(
            str((labels or {}).get(n, "")) for n in metric.label_names
        )
        child = metric._children.get(values)
        if child is None:
            return None
        if isinstance(child, _HistogramChild):
            return float(child.count)
        return float(child.value)

    # -- exposition ------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text-exposition body (v0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self._metrics)} metrics, {state})"


def null_registry() -> MetricsRegistry:
    """A disabled registry: every instrument it hands out is a no-op."""
    return MetricsRegistry(enabled=False)
