"""Observability: metrics, structured logging, graceful lifecycle.

Dependency-free (stdlib-only) primitives the production service tier
is wired through:

* :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` with labels, collected in a
  :class:`MetricsRegistry` that renders the Prometheus text
  exposition format v0.0.4 (``GET /metrics`` works against a stock
  Prometheus scraper, no ``prometheus_client`` needed).
* :mod:`repro.obs.logging` — one-JSON-object-per-line structured
  logging over stdlib :mod:`logging`, with request/campaign ids
  propagated through :mod:`contextvars` and a shared
  ``--log-format json|text`` CLI surface.
* :mod:`repro.obs.lifecycle` — graceful-drain plumbing: POSIX signals
  as awaitable events, the serving → draining → drained ladder, and
  the drain receipt.  The drained snapshot is bitwise-equal to an
  uninterrupted run's — drain only stops admission early.

Layering: ``obs`` sits below ``service``/``campaigns``/``runtime`` in
the import graph and imports none of them (nor numpy), so any layer —
and any future subsystem — can instrument itself without cycles.
"""

from repro.obs.lifecycle import DrainResult, DrainState, SignalDrain
from repro.obs.logging import (
    JsonFormatter,
    TextFormatter,
    add_logging_arguments,
    bound_context,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    CONTENT_TYPE_LATEST,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    null_registry,
)

__all__ = [
    "CONTENT_TYPE_LATEST",
    "Counter",
    "DEFAULT_BUCKETS",
    "DrainResult",
    "DrainState",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "SignalDrain",
    "TextFormatter",
    "add_logging_arguments",
    "bound_context",
    "configure_logging",
    "get_logger",
    "null_registry",
]
