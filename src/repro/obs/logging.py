"""Structured logging: one JSON object per line, context-propagated ids.

Library code logs through plain :func:`logging.getLogger` loggers (the
:func:`get_logger` alias exists so call sites read as part of this
subsystem); *entrypoints* call :func:`configure_logging` exactly once
to choose the rendering:

* ``json`` — one JSON object per line on stderr:
  ``{"ts": ..., "level": "info", "logger": "repro.service.server",
  "event": "batch accepted", "request_id": "r-17", "campaign":
  "3f9a...", "reports": 2000}`` — machine-parseable, field-stable,
  safe to ship to a log pipeline;
* ``text`` — the same record as ``HH:MM:SS level logger: message
  key=value ...`` for humans at a terminal.

Request- and campaign-scoped fields ride on :mod:`contextvars`: the
server binds ``request_id`` (and, once routed, ``campaign``) around
each request via :func:`bound_context`, and every log record emitted
below — any module, any depth, including ``await`` boundaries — picks
the ids up automatically.  Extra structured fields are passed the
stdlib way (``logger.info("msg", extra={...})``); both formatters
render every non-reserved record attribute.

Nothing here touches the root logger at import time, and library
modules must never call ``logging.basicConfig`` — that is the
entrypoint's decision (enforced by lint rule QA701).
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import logging
import time
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "JsonFormatter",
    "TextFormatter",
    "add_logging_arguments",
    "bound_context",
    "configure_logging",
    "context_fields",
    "get_logger",
]

#: Request-scoped correlation id (set per HTTP request by the server).
request_id_var: contextvars.ContextVar[Optional[str]] = (
    contextvars.ContextVar("repro_request_id", default=None)
)

#: Campaign fingerprint the current operation concerns, if any.
campaign_var: contextvars.ContextVar[Optional[str]] = (
    contextvars.ContextVar("repro_campaign", default=None)
)

#: ``logging.LogRecord`` attributes that are plumbing, not payload.
_RESERVED = frozenset(
    {
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread",
        "threadName",
    }
)


def get_logger(name: str) -> logging.Logger:
    """The subsystem's logger factory (a named ``logging.getLogger``)."""
    return logging.getLogger(name)


@contextlib.contextmanager
def bound_context(
    request_id: Optional[str] = None, campaign: Optional[str] = None
) -> Iterator[None]:
    """Bind request/campaign ids for the duration of a ``with`` block.

    Values propagate through every log record emitted inside the block
    (and through ``await``/task boundaries, courtesy of contextvars);
    ``None`` leaves the enclosing binding untouched.
    """
    tokens = []
    if request_id is not None:
        tokens.append((request_id_var, request_id_var.set(request_id)))
    if campaign is not None:
        tokens.append((campaign_var, campaign_var.set(campaign)))
    try:
        yield
    finally:
        for var, token in reversed(tokens):
            var.reset(token)


def bind_campaign(campaign: Optional[str]) -> None:
    """Set the campaign id for the remainder of the current context
    (used once a request has been routed; the per-request
    :func:`bound_context` scope still bounds its lifetime)."""
    if campaign is not None:
        campaign_var.set(campaign)


def context_fields() -> Dict[str, str]:
    """The currently bound context ids, for inclusion in a record."""
    fields = {}
    request_id = request_id_var.get()
    if request_id is not None:
        fields["request_id"] = request_id
    campaign = campaign_var.get()
    if campaign is not None:
        fields["campaign"] = campaign
    return fields


def _record_fields(record: logging.LogRecord) -> Dict[str, Any]:
    """Context ids + every non-reserved attribute on the record."""
    fields = context_fields()
    for key, value in record.__dict__.items():
        if key in _RESERVED or key.startswith("_"):
            continue
        fields[key] = value
    return fields


class JsonFormatter(logging.Formatter):
    """One JSON object per line; keys in a fixed, grep-stable order."""

    def format(self, record: logging.LogRecord) -> str:
        entry: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        entry.update(_record_fields(record))
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc_type"] = record.exc_info[0].__name__
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=repr)


class TextFormatter(logging.Formatter):
    """Human-readable single line with ``key=value`` structured tail."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        out = io.StringIO()
        out.write(
            f"{stamp} {record.levelname.lower():<7} "
            f"{record.name}: {record.getMessage()}"
        )
        for key, value in _record_fields(record).items():
            rendered = str(value)
            if " " in rendered:
                rendered = json.dumps(rendered)
            out.write(f" {key}={rendered}")
        if record.exc_info and record.exc_info[0] is not None:
            out.write("\n" + self.formatException(record.exc_info))
        return out.getvalue()


def configure_logging(
    log_format: str = "text",
    level: str = "info",
    stream: Any = None,
    logger: Optional[logging.Logger] = None,
) -> logging.Handler:
    """Install one stream handler rendering ``json`` or ``text``.

    Entrypoint-only (CLI mains, test harnesses): library code never
    configures handlers.  Replaces handlers this function previously
    installed (marked via an attribute), so calling it twice — e.g. a
    test reconfiguring format — does not double-log.  Returns the
    installed handler.
    """
    if log_format not in ("json", "text"):
        raise ValueError(
            f"log_format must be 'json' or 'text', got {log_format!r}"
        )
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    target = logger if logger is not None else logging.getLogger()
    for handler in list(target.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            target.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(
        JsonFormatter() if log_format == "json" else TextFormatter()
    )
    target.addHandler(handler)
    target.setLevel(numeric)
    return handler


def add_logging_arguments(parser: Any) -> None:
    """Attach the standard ``--log-format`` / ``--log-level`` flags."""
    parser.add_argument(
        "--log-format",
        choices=("json", "text"),
        default="text",
        help="emit structured one-JSON-object-per-line logs (json) or "
        "human-readable lines (text, the default)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="minimum level to emit (default: info)",
    )
