"""Empty batches are a uniform no-op across every protocol kind.

The contract (see ClientEncoder.encode_batch / ServerAccumulator.absorb):

* encoding zero values yields a valid empty report batch and does not
  consume the rng;
* absorbing it leaves state and count unchanged;
* estimate() still raises ValueError while the total count is zero.
"""

import numpy as np
import pytest

from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.multidim.collector import sample_attribute_matrix
from repro.protocol import Protocol
from repro.protocol.accumulators import MeanAccumulator


def _schema():
    return Schema([NumericAttribute("a"), CategoricalAttribute("c", 4)])


def _empty_dataset():
    return Dataset(
        _schema(), {"a": np.zeros(0), "c": np.zeros(0, dtype=np.int64)}
    )


def _full_dataset(n=400):
    rng = np.random.default_rng(2)
    return Dataset(
        _schema(),
        {"a": rng.uniform(-1, 1, n), "c": rng.integers(0, 4, n)},
    )


#: kind -> (protocol factory, empty batch, non-empty batch)
KINDS = {
    "mean": (
        lambda: Protocol.numeric_mean(1.0, "hm"),
        np.zeros(0),
        np.linspace(-1, 1, 400),
    ),
    "frequency-oue": (
        lambda: Protocol.frequency(1.0, domain=5, oracle="oue"),
        np.zeros(0, dtype=np.int64),
        np.arange(400) % 5,
    ),
    "frequency-grr": (
        lambda: Protocol.frequency(1.0, domain=5, oracle="grr"),
        np.zeros(0, dtype=np.int64),
        np.arange(400) % 5,
    ),
    "frequency-olh": (
        lambda: Protocol.frequency(1.0, domain=5, oracle="olh"),
        np.zeros(0, dtype=np.int64),
        np.arange(400) % 5,
    ),
    "histogram": (
        lambda: Protocol.histogram(1.0, bins=4),
        np.zeros(0),
        np.linspace(-1, 1, 400),
    ),
    "multidim-numeric": (
        lambda: Protocol.multidim(4.0, d=3, mechanism="pm"),
        np.zeros((0, 3)),
        np.random.default_rng(0).uniform(-1, 1, (400, 3)),
    ),
    "multidim-mixed": (
        lambda: Protocol.multidim(4.0, schema=_schema()),
        _empty_dataset(),
        _full_dataset(),
    ),
}


@pytest.fixture(params=list(KINDS))
def kind(request):
    return request.param


class TestEmptyBatch:
    def test_encode_empty_then_estimate_raises(self, kind):
        factory, empty, _ = KINDS[kind]
        protocol = factory()
        server = protocol.server()
        reports = protocol.client().encode_batch(
            empty, np.random.default_rng(0)
        )
        assert server.absorb(reports) is server
        assert server.count == 0
        with pytest.raises(ValueError):
            server.estimate()

    def test_encode_empty_does_not_consume_rng(self, kind):
        factory, empty, _ = KINDS[kind]
        gen = np.random.default_rng(5)
        before = gen.bit_generator.state
        factory().client().encode_batch(empty, gen)
        assert gen.bit_generator.state == before

    def test_absorbing_empty_leaves_estimate_unchanged(self, kind):
        factory, empty, full = KINDS[kind]
        protocol = factory()
        client = protocol.client()
        server = protocol.server()
        server.absorb(client.encode_batch(full, np.random.default_rng(1)))
        count = server.count
        reference = server.estimate()

        server.absorb(client.encode_batch(empty, np.random.default_rng(2)))
        assert server.count == count
        updated = server.estimate()
        for ref, upd in zip(
            _flatten(reference), _flatten(updated)
        ):
            assert np.array_equal(ref, upd)

    def test_merging_an_empty_accumulator_is_a_noop(self, kind):
        factory, _, full = KINDS[kind]
        protocol = factory()
        server = protocol.server()
        server.absorb(
            protocol.client().encode_batch(full, np.random.default_rng(1))
        )
        reference = _flatten(server.estimate())
        server.merge(protocol.server())
        for ref, upd in zip(reference, _flatten(server.estimate())):
            assert np.array_equal(ref, upd)


def _flatten(estimate):
    if hasattr(estimate, "histogram"):
        return [estimate.histogram, estimate.raw]
    if hasattr(estimate, "means"):
        return [
            np.array([estimate.means[k] for k in sorted(estimate.means)]),
            *[estimate.frequencies[k] for k in sorted(estimate.frequencies)],
        ]
    return [np.atleast_1d(np.asarray(estimate, dtype=float))]


class TestEdgeCases:
    def test_sample_attribute_matrix_zero_users(self, rng):
        out = sample_attribute_matrix(0, 7, 3, rng)
        assert out.shape == (0, 3)

    def test_mean_accumulator_accepts_bare_empty_list(self):
        acc = MeanAccumulator()
        acc.absorb([])
        assert acc.count == 0

    def test_multidim_accumulator_accepts_bare_empty_list(self):
        acc = Protocol.multidim(4.0, d=3, mechanism="pm").server()
        acc.absorb([])
        acc.absorb(np.zeros((0, 3)))
        assert acc.count == 0
