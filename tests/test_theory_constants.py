"""Tests for the closed-form constants (eps*, eps#, C_d, B, alpha, k)."""

import math

import numpy as np
import pytest

from repro.theory.constants import (
    EPSILON_SHARP,
    EPSILON_STAR,
    duchi_b,
    duchi_cd,
    hybrid_alpha,
    optimal_k,
    pm_c,
    pm_p,
)
from repro.theory.variance import (
    duchi_1d_worst_variance,
    hm_worst_variance,
    pm_worst_variance,
)


def _bisect(f, lo, hi, tol=1e-12):
    """Simple bisection for a sign-changing continuous function."""
    flo = f(lo)
    for _ in range(200):
        mid = (lo + hi) / 2.0
        fmid = f(mid)
        if abs(fmid) < tol:
            return mid
        if (flo < 0) == (fmid < 0):
            lo, flo = mid, fmid
        else:
            hi = mid
    return (lo + hi) / 2.0


class TestEpsilonStar:
    def test_value_matches_paper(self):
        assert EPSILON_STAR == pytest.approx(0.61, abs=0.005)

    def test_is_root_of_switching_equation(self):
        """At eps*, the eps > eps* branch of Eq. (8) equals Duchi's
        worst-case variance — the two alpha regimes meet."""

        def gap(eps):
            e_half = math.exp(eps / 2.0)
            e_full = math.exp(eps)
            branch = (e_half + 3.0) / (3.0 * e_half * (e_half - 1.0)) + (
                e_full + 1.0
            ) ** 2 / (e_half * (e_full - 1.0) ** 2)
            return branch - duchi_1d_worst_variance(eps)

        root = _bisect(gap, 0.3, 1.0)
        assert root == pytest.approx(EPSILON_STAR, abs=1e-6)


class TestEpsilonSharp:
    def test_value_matches_paper(self):
        assert EPSILON_SHARP == pytest.approx(1.29, abs=0.005)

    def test_is_crossing_of_pm_and_duchi(self):
        def gap(eps):
            return pm_worst_variance(eps) - duchi_1d_worst_variance(eps)

        root = _bisect(gap, 1.0, 1.6)
        assert root == pytest.approx(EPSILON_SHARP, abs=1e-6)

    def test_ordering_flips_at_sharp(self):
        assert pm_worst_variance(EPSILON_SHARP - 0.05) > duchi_1d_worst_variance(
            EPSILON_SHARP - 0.05
        )
        assert pm_worst_variance(EPSILON_SHARP + 0.05) < duchi_1d_worst_variance(
            EPSILON_SHARP + 0.05
        )


class TestHybridAlpha:
    def test_zero_below_star(self):
        assert hybrid_alpha(0.5) == 0.0

    def test_formula_above_star(self):
        assert hybrid_alpha(3.0) == pytest.approx(1.0 - math.exp(-1.5))

    def test_alpha_in_unit_interval(self):
        for eps in np.linspace(0.05, 10.0, 50):
            assert 0.0 <= hybrid_alpha(float(eps)) < 1.0

    def test_alpha_is_optimal_among_grid(self):
        """No alpha on a fine grid achieves a smaller worst-case
        variance than Eq. (7)'s choice (Lemma 3)."""
        from repro.theory.variance import hm_variance

        for eps in (0.4, 0.8, 1.5, 3.0):
            best = hm_worst_variance(eps)
            grid_t = np.linspace(-1, 1, 101)
            for alpha in np.linspace(0.0, 1.0, 101):
                worst = float(np.max(hm_variance(grid_t, eps, alpha)))
                assert worst >= best - 1e-9


class TestOptimalK:
    def test_small_epsilon_gives_one(self):
        assert optimal_k(1.0, 10) == 1
        assert optimal_k(2.4, 10) == 1

    def test_floor_rule(self):
        assert optimal_k(5.0, 10) == 2
        assert optimal_k(7.5, 10) == 3
        assert optimal_k(25.0, 10) == 10  # capped at d

    def test_capped_by_d(self):
        assert optimal_k(100.0, 3) == 3

    def test_at_least_one(self):
        assert optimal_k(0.01, 5) == 1

    def test_k_minimizes_worst_variance_over_choices(self):
        """Eq. (12)'s k is (near-)optimal among all k in 1..d for the
        PM-based collector's worst-case variance."""
        from repro.theory.variance import pm_md_worst_variance

        for eps, d in ((1.0, 8), (4.0, 8), (10.0, 8), (25.0, 8)):
            chosen = optimal_k(eps, d)
            best_k = min(
                range(1, d + 1),
                key=lambda k: pm_md_worst_variance(eps, d, k),
            )
            chosen_var = pm_md_worst_variance(eps, d, chosen)
            best_var = pm_md_worst_variance(eps, d, best_k)
            # The floor rule is a (tight) approximation of the argmin.
            assert chosen_var <= best_var * 1.35


class TestPmConstants:
    def test_c_times_p_relation(self, epsilon):
        """Total mass: p (C-1) + (p/e^eps)(C+1) = 1."""
        c, p = pm_c(epsilon), pm_p(epsilon)
        mass = p * (c - 1.0) + (p / math.exp(epsilon)) * (c + 1.0)
        assert mass == pytest.approx(1.0)

    def test_c_diverges_as_eps_vanishes(self):
        assert pm_c(0.01) > 100.0

    def test_c_tends_to_one_at_large_eps(self):
        assert pm_c(20.0) == pytest.approx(1.0, abs=1e-3)


class TestDuchiConstants:
    @pytest.mark.parametrize("d", range(1, 12))
    def test_cd_at_least_one(self, d):
        assert duchi_cd(d) >= 1.0

    @pytest.mark.parametrize("d", [1, 3, 5, 7, 9])
    def test_variants_equal_odd(self, d):
        assert duchi_cd(d, "shared") == duchi_cd(d, "split")

    @pytest.mark.parametrize("d", [2, 4, 6, 8])
    def test_shared_exceeds_split_even(self, d):
        assert duchi_cd(d, "shared") > duchi_cd(d, "split")

    def test_split_d2(self):
        assert duchi_cd(2, "split") == pytest.approx(2.0)

    def test_split_d4(self):
        assert duchi_cd(4, "split") == pytest.approx(8.0 / 3.0)

    def test_b_decreasing_in_epsilon(self):
        bs = [duchi_b(e, 5) for e in (0.5, 1.0, 2.0, 4.0)]
        assert bs == sorted(bs, reverse=True)

    def test_invalid_tie_breaking(self):
        with pytest.raises(ValueError):
            duchi_cd(4, "both")
