"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passed_through_identically(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not an rng")

    def test_float_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [c.random(3) for c in spawn_rngs(5, 2)]
        b = [c.random(3) for c in spawn_rngs(5, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
