"""Unit tests for repro.stream.memo — longitudinal memoization."""

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.stream import MemoizedEncoder


def users(n):
    return [f"user-{i}" for i in range(n)]


class TestMemoizedEncoderBasics:
    def test_round_two_is_byte_identical_and_all_cached(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        values = np.random.default_rng(0).integers(0, 8, size=30)
        r1, fresh1 = memo.encode_users(values, users(30), np.random.default_rng(1))
        r2, fresh2 = memo.encode_users(values, users(30), np.random.default_rng(2))
        assert all(fresh1) and not any(fresh2)
        assert np.array_equal(r1, r2)
        assert memo.hits == 30 and memo.misses == 30

    def test_changed_values_are_fresh_only_where_changed(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        v1 = np.array([0, 1, 2, 3])
        r1, _ = memo.encode_users(v1, users(4), np.random.default_rng(1))
        v2 = np.array([0, 5, 2, 6])  # users 1 and 3 changed
        r2, fresh2 = memo.encode_users(v2, users(4), np.random.default_rng(2))
        assert fresh2 == [False, True, False, True]
        assert r2[0] == r1[0] and r2[2] == r1[2]

    def test_switching_back_reuses_original_report(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        r1, _ = memo.encode_users([3], ["u"], np.random.default_rng(1))
        memo.encode_users([5], ["u"], np.random.default_rng(2))
        r3, fresh3 = memo.encode_users([3], ["u"], np.random.default_rng(3))
        assert fresh3 == [False]
        assert np.array_equal(r1, r3)
        assert memo.cache_size == 2

    def test_all_cached_round_never_touches_rng(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        values = np.arange(8)
        memo.encode_users(values, users(8), np.random.default_rng(1))

        class ExplodingRng:
            def __getattr__(self, name):
                raise AssertionError("rng touched on an all-cached round")

        reports, fresh = memo.encode_users(values, users(8), ExplodingRng())
        assert not any(fresh)
        assert len(np.asarray(reports)) == 8

    def test_same_value_different_users_cached_separately(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        _, fresh = memo.encode_users([4, 4], ["a", "b"], np.random.default_rng(1))
        assert fresh == [True, True]
        assert memo.cache_size == 2

    def test_empty_batch_is_noop(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        reports, fresh = memo.encode_users([], [], np.random.default_rng(1))
        assert fresh == []
        assert len(np.asarray(reports)) == 0

    def test_mismatched_lengths_rejected(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        with pytest.raises(ValueError):
            memo.encode_users([1, 2], ["only-one"], np.random.default_rng(1))

    def test_refuses_double_wrap(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        with pytest.raises(ValueError):
            MemoizedEncoder(MemoizedEncoder(proto.client()))

    def test_forget_recharges_user(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        memo.encode_users([1, 2], ["a", "b"], np.random.default_rng(1))
        assert memo.forget("a") == 1
        _, fresh = memo.encode_users([1, 2], ["a", "b"], np.random.default_rng(2))
        assert fresh == [True, False]
        assert memo.forget() == 2
        assert memo.cache_size == 0

    def test_plain_encode_batch_delegates(self):
        proto = Protocol.frequency(epsilon=1.0, domain=8, oracle="grr")
        memo = MemoizedEncoder(proto.client())
        direct = proto.client().encode_batch(
            np.arange(8), np.random.default_rng(9)
        )
        wrapped = memo.encode_batch(np.arange(8), np.random.default_rng(9))
        assert np.array_equal(direct, wrapped)
        assert memo.cache_size == 0


class TestMemoizedEncoderContainers:
    """Every supported report container round-trips through the cache."""

    def test_mean_float_reports(self):
        proto = Protocol.numeric_mean(epsilon=1.0, mechanism="pm")
        memo = MemoizedEncoder(proto.client())
        values = np.random.default_rng(0).uniform(-1, 1, 12)
        r1, _ = memo.encode_users(values, users(12), np.random.default_rng(1))
        r2, fresh = memo.encode_users(values, users(12), np.random.default_rng(2))
        assert not any(fresh)
        assert r1.dtype == r2.dtype and np.array_equal(r1, r2)
        acc = proto.server().absorb(r2)
        assert acc.count == 12

    def test_unary_bit_matrix(self):
        proto = Protocol.frequency(epsilon=1.0, domain=6, oracle="oue")
        memo = MemoizedEncoder(proto.client())
        values = np.random.default_rng(0).integers(0, 6, size=10)
        r1, _ = memo.encode_users(values, users(10), np.random.default_rng(1))
        r2, fresh = memo.encode_users(values, users(10), np.random.default_rng(2))
        assert not any(fresh)
        assert r1.shape == (10, 6) and np.array_equal(r1, r2)
        proto.server().absorb(r2).estimate()

    def test_olh_reports(self):
        proto = Protocol.frequency(epsilon=1.0, domain=16, oracle="olh")
        memo = MemoizedEncoder(proto.client())
        values = np.random.default_rng(0).integers(0, 16, size=10)
        r1, _ = memo.encode_users(values, users(10), np.random.default_rng(1))
        r2, fresh = memo.encode_users(values, users(10), np.random.default_rng(2))
        assert not any(fresh)
        assert r1.seeds.dtype == r2.seeds.dtype
        assert np.array_equal(r1.seeds, r2.seeds)
        assert np.array_equal(r1.buckets, r2.buckets)
        proto.server().absorb(r2).estimate()

    def test_sampled_numeric_reports(self):
        proto = Protocol.multidim(epsilon=1.0, d=5, k=2)
        memo = MemoizedEncoder(proto.client())
        values = np.random.default_rng(0).uniform(-1, 1, size=(8, 5))
        r1, _ = memo.encode_users(values, users(8), np.random.default_rng(1))
        r2, fresh = memo.encode_users(values, users(8), np.random.default_rng(2))
        assert not any(fresh)
        assert np.array_equal(r1.cols, r2.cols)
        assert np.array_equal(r1.values, r2.values)
        proto.server().absorb(r2).estimate()

    def test_partial_cache_mixes_rows_in_batch_order(self):
        proto = Protocol.multidim(epsilon=1.0, d=4, k=2)
        memo = MemoizedEncoder(proto.client())
        base = np.random.default_rng(0).uniform(-1, 1, size=(4, 4))
        r1, _ = memo.encode_users(base, users(4), np.random.default_rng(1))
        changed = base.copy()
        changed[2] = -changed[2]
        r2, fresh = memo.encode_users(changed, users(4), np.random.default_rng(2))
        assert fresh == [False, False, True, False]
        for i in (0, 1, 3):
            assert np.array_equal(r1.cols[i], r2.cols[i])
            assert np.array_equal(r1.values[i], r2.values[i])

    def test_mixed_tuples_rejected(self):
        from repro.data.schema import (
            CategoricalAttribute,
            NumericAttribute,
            Schema,
        )

        proto = Protocol.multidim(
            epsilon=1.0,
            schema=Schema([
                NumericAttribute("num", low=-1.0, high=1.0),
                CategoricalAttribute("cat", 4),
            ]),
        )
        with pytest.raises(TypeError):
            MemoizedEncoder(proto.client())
