"""Server-tier module reaching into client-side encoding internals."""

from repro.protocol.encoders import NumericMeanEncoder


def handle(batch):
    import repro.core.mechanism

    return NumericMeanEncoder, repro.core.mechanism, batch
