"""Server-tier module touching only report-side machinery."""

from repro.protocol.facade import Protocol
from repro.service import wire


def build(spec):
    return Protocol.from_spec(spec), wire
