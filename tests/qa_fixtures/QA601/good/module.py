"""Acceptable exception handling: narrow best-effort, handled blanket."""


def close_quietly(sock):
    try:
        sock.close()
    except (ConnectionError, BrokenPipeError):
        pass


def guarded(fn, log):
    try:
        return fn()
    except Exception as exc:
        log.error("call failed: %r", exc)
        raise RuntimeError("wrapped") from exc
