"""Silent failure: a bare except and a swallowed blanket except."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722
        pass


def swallow_blanket(fn):
    try:
        return fn()
    except Exception:
        ...
