"""Global-state calls excused through the escape hatch."""

import numpy as np


def legacy_same_line():
    return np.random.normal()  # qa: allow[QA101]


def legacy_line_above():
    # qa: allow[QA101]
    return np.random.uniform()


def legacy_wildcard():
    return np.random.random()  # qa: allow[*]
