"""Global-state randomness: every call in draw() violates QA101."""

import random

import numpy as np
from numpy.random import rand


def draw():
    np.random.seed(0)
    a = np.random.normal()
    b = random.random()
    c = rand(3)
    return a, b, c
