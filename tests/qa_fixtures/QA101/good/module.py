"""Clean RNG usage: every draw flows through an explicit generator."""

import random

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    backoff = random.Random(seed)
    child = np.random.SeedSequence(seed).spawn(1)[0]
    return rng.normal(), backoff.random(), np.random.default_rng(child)
