"""Awaits stay outside the charge/absorb critical section."""


class Handler:
    async def handle_submit(self, ledger, accumulator, batch):
        await self.authenticate(batch)
        ledger.charge_batch(batch.users, batch.epsilon)
        accumulator.absorb(batch.reports)
        await self.checkpoint()
        return True

    async def authenticate(self, batch):
        return batch

    async def checkpoint(self):
        return None
