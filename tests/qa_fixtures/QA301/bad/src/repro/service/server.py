"""An await suspends the handler between charge and absorb."""


class Handler:
    async def handle_submit(self, ledger, accumulator, batch):
        ledger.charge_batch(batch.users, batch.epsilon)
        await self.audit_log(batch)
        accumulator.absorb(batch.reports)
        return True

    async def audit_log(self, batch):
        return batch
