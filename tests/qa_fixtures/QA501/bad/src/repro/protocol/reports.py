"""Two report containers; OrphanReports never reaches the codec."""


class SampledNumericReports:
    def __init__(self, cols=(), values=()):
        self.cols = cols
        self.values = values


class OrphanReports:
    def __init__(self, blob=b""):
        self.blob = blob
