"""Three report containers with codec gaps.

``OrphanReports`` never reaches the codec at all; ``HalfWiredReports``
only has v1 JSON entries, so a v2 (columnar) fleet cannot submit it.
"""


class SampledNumericReports:
    def __init__(self, cols=(), values=()):
        self.cols = cols
        self.values = values


class OrphanReports:
    def __init__(self, blob=b""):
        self.blob = blob


class HalfWiredReports:
    def __init__(self, items=()):
        self.items = items
