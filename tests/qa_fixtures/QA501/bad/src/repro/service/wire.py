"""Codec missing OrphanReports everywhere and HalfWiredReports on v2."""

from repro.protocol.reports import HalfWiredReports, SampledNumericReports


class ColumnBlock:
    def __init__(self, kind="", n=0, columns=None):
        self.kind = kind
        self.n = n
        self.columns = columns or {}


def encode_reports(reports):
    if isinstance(reports, SampledNumericReports):
        return {"type": "sampled-numeric", "cols": list(reports.cols)}
    if isinstance(reports, HalfWiredReports):
        return {"type": "half-wired", "items": list(reports.items)}
    raise TypeError(f"cannot encode report container {type(reports)}")


def decode_reports(payload):
    if payload["type"] == "sampled-numeric":
        return SampledNumericReports(cols=payload["cols"])
    if payload["type"] == "half-wired":
        return HalfWiredReports(items=payload["items"])
    raise TypeError(f"cannot decode report payload {payload['type']}")


def reports_to_columns(reports):
    if isinstance(reports, SampledNumericReports):
        return ColumnBlock(
            kind="sampled-numeric",
            n=len(reports.cols),
            columns={"cols": reports.cols},
        )
    raise TypeError(f"cannot encode report container {type(reports)}")


def columns_to_reports(block):
    if block.kind == "sampled-numeric":
        return SampledNumericReports(cols=block.columns["cols"])
    raise TypeError(f"cannot decode columnar block {block.kind}")
