"""Codec with an entry for every container in protocol/reports.py."""

from repro.protocol.reports import SampledNumericReports


def encode_reports(reports):
    if isinstance(reports, SampledNumericReports):
        return {"type": "sampled-numeric", "cols": list(reports.cols)}
    raise TypeError(f"cannot encode report container {type(reports)}")


def decode_reports(payload):
    if payload["type"] == "sampled-numeric":
        return SampledNumericReports(cols=payload["cols"])
    raise TypeError(f"cannot decode report payload {payload['type']}")
