"""Codec with v1 AND v2 entries for every container in reports.py."""

from repro.protocol.reports import ColumnBlock, SampledNumericReports


def encode_reports(reports):
    if isinstance(reports, SampledNumericReports):
        return {"type": "sampled-numeric", "cols": list(reports.cols)}
    raise TypeError(f"cannot encode report container {type(reports)}")


def decode_reports(payload):
    if payload["type"] == "sampled-numeric":
        return SampledNumericReports(cols=payload["cols"])
    raise TypeError(f"cannot decode report payload {payload['type']}")


def reports_to_columns(reports):
    if isinstance(reports, SampledNumericReports):
        return ColumnBlock(
            kind="sampled-numeric",
            n=len(reports.cols),
            columns={"cols": reports.cols},
        )
    raise TypeError(f"cannot encode report container {type(reports)}")


def columns_to_reports(block):
    if block.kind == "sampled-numeric":
        return SampledNumericReports(cols=block.columns["cols"])
    raise TypeError(f"cannot decode columnar block {block.kind}")
