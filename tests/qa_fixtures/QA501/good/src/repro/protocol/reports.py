"""One report container, fully registered in both wire formats."""


class ColumnBlock:  # carrier: the columnar wire form itself, exempt
    def __init__(self, kind="", n=0, columns=None):
        self.kind = kind
        self.n = n
        self.columns = columns or {}


class SampledNumericReports:
    def __init__(self, cols=(), values=()):
        self.cols = cols
        self.values = values
