"""One report container, fully registered in the wire codec."""


class SampledNumericReports:
    def __init__(self, cols=(), values=()):
        self.cols = cols
        self.values = values
