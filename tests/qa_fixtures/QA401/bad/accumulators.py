"""Snapshot gaps: a missing method and a statistic state_dict drops."""


class ServerAccumulator:
    """Stand-in for the real abstract base."""


class LeakyAccumulator(ServerAccumulator):
    def __init__(self):
        self._total = 0.0
        self._hidden = 0

    def absorb(self, reports):
        self._total += sum(reports)
        self._hidden += len(reports)
        return self

    def merge(self, other):
        self._total += other._total
        self._hidden += other._hidden
        return self

    def state_dict(self):
        return {"total": self._total}
