"""A snapshot-complete accumulator: full surface, all stats keyed."""


class ServerAccumulator:
    """Stand-in for the real abstract base."""


class CounterAccumulator(ServerAccumulator):
    def __init__(self):
        self._total = 0.0
        self._count = 0
        self.domain = 16  # public config: exempt from the key check

    def absorb(self, reports):
        self._total += sum(reports)
        self._count += len(reports)
        return self

    def merge(self, other):
        self._total += other._total
        self._count += other._count
        return self

    def state_dict(self):
        return {"total": self._total, "count": self._count}

    def load_state(self, state):
        self._total = float(state["total"])
        self._count = int(state["count"])
        return self


class ScaledCounterAccumulator(CounterAccumulator):
    """Inherits the whole snapshot surface; adds no new statistics."""

    def estimate(self):
        return self._total / self._count
