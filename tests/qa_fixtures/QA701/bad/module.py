"""Library module that prints and grabs the root logger: all QA701."""

import logging


def absorb(batch):
    print(f"absorbing {len(batch)} reports")
    logging.basicConfig(level=logging.INFO)
    return len(batch)


def debug_dump(state):
    print(state)
