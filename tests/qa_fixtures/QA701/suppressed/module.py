"""Prints excused through the escape hatch."""


def legacy_same_line(batch):
    print(len(batch))  # qa: allow[QA701]
    return len(batch)


def legacy_line_above(batch):
    # qa: allow[QA701]
    print(len(batch))
    return len(batch)
