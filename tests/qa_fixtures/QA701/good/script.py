"""Guarded script: an entrypoint may print and configure logging."""

import logging


def main():
    logging.basicConfig(level=logging.INFO)
    print("repro.fixture: running")
    return 0


if __name__ == "__main__":
    main()
