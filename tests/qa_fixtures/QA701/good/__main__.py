"""``python -m`` target: exempt by name, prints freely."""


def main():
    print("repro.fixture: served")
    return 0
