"""Clean library logging: named logger, no root configuration."""

import logging

log = logging.getLogger("repro.fixture.module")


def absorb(batch):
    log.info("absorbing", extra={"reports": len(batch)})
    return len(batch)
