"""Tests for the closed-form variance functions and the paper's
orderings (Table I, Corollaries 1-2, Fig. 3)."""

import numpy as np
import pytest

from repro.core import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SCDFMechanism,
    StaircaseMechanism,
)
from repro.multidim import MultidimNumericCollector
from repro.theory.constants import EPSILON_SHARP, EPSILON_STAR, optimal_k
from repro.theory.variance import (
    duchi_1d_variance,
    duchi_1d_worst_variance,
    duchi_md_variance,
    duchi_md_worst_variance,
    hm_md_variance,
    hm_md_worst_variance,
    hm_variance,
    hm_worst_variance,
    laplace_variance,
    pm_md_variance,
    pm_md_worst_variance,
    pm_variance,
    pm_worst_variance,
    scdf_variance,
    staircase_variance,
    worst_variance_ratio_vs_duchi,
)

GRID = np.linspace(-1, 1, 41)


class TestCrossCheckAgainstMechanisms:
    """The theory module is an independent implementation; it must agree
    with each mechanism class's variance() method."""

    def test_laplace(self, epsilon):
        assert laplace_variance(epsilon) == pytest.approx(
            LaplaceMechanism(epsilon).worst_case_variance()
        )

    def test_scdf(self, epsilon):
        assert scdf_variance(epsilon) == pytest.approx(
            SCDFMechanism(epsilon).noise_variance()
        )

    def test_staircase(self, epsilon):
        assert staircase_variance(epsilon) == pytest.approx(
            StaircaseMechanism(epsilon).noise_variance()
        )

    def test_duchi(self, epsilon):
        mech = DuchiMechanism(epsilon)
        assert np.allclose(duchi_1d_variance(GRID, epsilon), mech.variance(GRID))

    def test_pm(self, epsilon):
        mech = PiecewiseMechanism(epsilon)
        assert np.allclose(pm_variance(GRID, epsilon), mech.variance(GRID))

    def test_hm(self, epsilon):
        mech = HybridMechanism(epsilon)
        assert np.allclose(hm_variance(GRID, epsilon), mech.variance(GRID))

    def test_md_collector_pm(self, epsilon):
        collector = MultidimNumericCollector(epsilon, 8, "pm")
        assert np.allclose(
            pm_md_variance(GRID, epsilon, 8, collector.k),
            collector.per_coordinate_variance(GRID),
        )

    def test_md_collector_hm(self, epsilon):
        collector = MultidimNumericCollector(epsilon, 8, "hm")
        assert np.allclose(
            hm_md_variance(GRID, epsilon, 8, collector.k),
            collector.per_coordinate_variance(GRID),
        )


class TestOneDimensionalOrdering:
    """Table I's d = 1 block."""

    def test_above_sharp(self):
        for eps in (1.5, 2.0, 4.0, 8.0):
            hm = hm_worst_variance(eps)
            pm = pm_worst_variance(eps)
            du = duchi_1d_worst_variance(eps)
            assert hm < pm < du

    def test_at_sharp(self):
        assert pm_worst_variance(EPSILON_SHARP) == pytest.approx(
            duchi_1d_worst_variance(EPSILON_SHARP), rel=1e-9
        )
        assert hm_worst_variance(EPSILON_SHARP) < pm_worst_variance(
            EPSILON_SHARP
        )

    def test_between_star_and_sharp(self):
        for eps in (0.7, 0.9, 1.1):
            hm = hm_worst_variance(eps)
            pm = pm_worst_variance(eps)
            du = duchi_1d_worst_variance(eps)
            assert hm < du < pm

    def test_at_or_below_star(self):
        for eps in (0.2, 0.4, EPSILON_STAR):
            assert hm_worst_variance(eps) == pytest.approx(
                duchi_1d_worst_variance(eps)
            )
            assert duchi_1d_worst_variance(eps) < pm_worst_variance(eps)

    def test_pm_beats_laplace_everywhere(self):
        for eps in np.linspace(0.05, 10.0, 60):
            assert pm_worst_variance(float(eps)) < laplace_variance(float(eps))

    def test_duchi_worst_variance_never_below_one(self):
        """Duchi's noisy value always has |t*| > 1, so its variance at
        t = 0 stays above 1 for every eps — the deficiency motivating PM."""
        for eps in (1.0, 4.0, 16.0):
            assert duchi_1d_worst_variance(eps) > 1.0
        # At float precision the limit is exactly 1 for huge eps.
        assert duchi_1d_worst_variance(64.0) >= 1.0


class TestMultidimensionalOrdering:
    """Corollary 2: HM < PM < Duchi in worst case for all d > 1, eps > 0."""

    @pytest.mark.parametrize("d", [2, 3, 5, 10, 20, 40])
    def test_corollary2(self, d):
        for eps in (0.2, 0.61, 1.0, 1.29, 2.5, 5.0, 8.0):
            hm = hm_md_worst_variance(eps, d)
            pm = pm_md_worst_variance(eps, d)
            du = duchi_md_worst_variance(eps, d)
            assert hm < pm < du

    @pytest.mark.parametrize("d", [5, 10, 20, 40])
    def test_fig3_ratios_below_one(self, d):
        for eps in (0.5, 1.0, 2.0, 4.0, 8.0):
            assert worst_variance_ratio_vs_duchi(eps, d, "pm") < 1.0
            assert worst_variance_ratio_vs_duchi(eps, d, "hm") < 1.0

    @pytest.mark.parametrize("d", [5, 10, 20, 40])
    def test_fig3_hm_at_most_77_percent(self, d):
        """The paper: 'the worst-case variance of HM is at most 77% of
        Duchi et al.'s' for d in {5, 10, 20, 40}."""
        ratios = [
            worst_variance_ratio_vs_duchi(eps, d, "hm")
            for eps in np.linspace(0.1, 8.0, 40)
        ]
        assert max(ratios) <= 0.77

    def test_ratio_unknown_mechanism(self):
        with pytest.raises(ValueError):
            worst_variance_ratio_vs_duchi(1.0, 5, "laplace")


class TestMultidimFormulas:
    def test_pm_md_reduces_to_1d(self):
        """With d = k = 1 Eq. (14) is Lemma 1's variance."""
        for eps in (0.5, 1.0, 2.0):
            assert np.allclose(
                pm_md_variance(GRID, eps, 1, 1), pm_variance(GRID, eps)
            )

    def test_hm_md_reduces_to_1d(self):
        for eps in (0.5, 1.0, 2.0):
            assert np.allclose(
                hm_md_variance(GRID, eps, 1, 1), hm_variance(GRID, eps)
            )

    def test_duchi_md_reduces_to_1d(self):
        assert np.allclose(
            duchi_md_variance(GRID, 1.0, 1), duchi_1d_variance(GRID, 1.0)
        )

    def test_pm_md_worst_at_one(self):
        eps, d = 1.0, 8
        grid_max = float(np.max(pm_md_variance(GRID, eps, d)))
        assert pm_md_worst_variance(eps, d) == pytest.approx(grid_max)

    def test_duchi_md_worst_at_zero(self):
        eps, d = 1.0, 8
        grid_max = float(np.max(duchi_md_variance(GRID, eps, d)))
        assert duchi_md_worst_variance(eps, d) == pytest.approx(grid_max)

    def test_default_k_is_eq12(self):
        eps, d = 6.0, 10
        assert pm_md_variance(0.5, eps, d) == pytest.approx(
            float(pm_md_variance(0.5, eps, d, optimal_k(eps, d)))
        )

    def test_sampling_hurts_less_than_splitting(self):
        """Algorithm 4 with k=1 beats running PM per attribute at eps/d:
        the variance advantage that motivates sampling (Section IV)."""
        eps, d = 1.0, 10
        sampled = pm_md_worst_variance(eps, d, 1)
        # Splitting: each attribute gets eps/d; variance of a single
        # attribute's estimate is Var_PM(eps/d) (no d/k inflation but a
        # much smaller budget).
        split = pm_worst_variance(eps / d)
        assert sampled < split
