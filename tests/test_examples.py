"""Integration tests: every example script must run end-to-end.

Each example is imported as a module and its ``main()`` executed with
module-level constants patched down to test scale, so the examples in
the repository can never silently rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys, monkeypatch):
        module = _load("quickstart")
        monkeypatch.setattr(module, "N_USERS", 5_000)
        module.main()
        out = capsys.readouterr().out
        assert "true mean" in out
        assert "hm" in out

    def test_mechanism_tour(self, capsys):
        module = _load("mechanism_tour")
        module.main()
        out = capsys.readouterr().out
        assert "eps* = 0.6094" in out
        assert "Fig. 1" in out or "Worst-case" in out

    def test_protocol_quickstart(self, capsys, monkeypatch):
        module = _load("protocol_quickstart")
        monkeypatch.setattr(module, "N_USERS", 9_000)
        module.main()
        out = capsys.readouterr().out
        assert "numeric mean over 3 shards" in out
        assert "spec round-trip through JSON" in out
        assert "encode_batch -> absorb/merge" in out

    def test_census_analytics(self, capsys, monkeypatch):
        module = _load("census_analytics")
        monkeypatch.setattr(module, "N_USERS", 8_000)
        module.main()
        out = capsys.readouterr().out
        assert "numeric-mean MSE" in out
        assert "frequency table" in out

    def test_private_sgd(self, capsys, monkeypatch):
        module = _load("private_sgd")
        monkeypatch.setattr(module, "N_USERS", 6_000)
        monkeypatch.setattr(module, "EPSILONS", (4.0,))
        module.main()
        out = capsys.readouterr().out
        assert "non-private" in out
        assert "ldp-sgd(hm)" in out

    def test_distribution_estimation(self, capsys, monkeypatch):
        module = _load("distribution_estimation")
        monkeypatch.setattr(module, "N_USERS", 20_000)
        module.main()
        out = capsys.readouterr().out
        assert "total variation" in out
        assert "q0.5" in out

    def test_streaming_deployment(self, capsys, monkeypatch):
        module = _load("streaming_deployment")
        monkeypatch.setattr(module, "DAYS", 2)
        monkeypatch.setattr(module, "USERS_PER_DAY", 4_000)
        module.main()
        out = capsys.readouterr().out
        assert "charged 4000 users" in out
        assert "95% intervals" in out

    def test_multi_campaign_service(self, capsys, monkeypatch):
        module = _load("multi_campaign_service")
        monkeypatch.setattr(module, "N_USERS", 4_000)
        monkeypatch.setattr(module, "BATCHES", 2)
        module.main()
        out = capsys.readouterr().out
        assert "registered A/B campaign" in out
        assert "cross-campaign budget" in out
        assert "estimates identical: True" in out
        assert "state=estimated" in out

    def test_ldp_neural_network(self, capsys, monkeypatch):
        module = _load("ldp_neural_network")
        monkeypatch.setattr(module, "N_USERS", 8_000)
        monkeypatch.setattr(module, "EPSILONS", (4.0,))
        module.main()
        out = capsys.readouterr().out
        assert "linear SVM" in out
        assert "LDP-SGD" in out

    def test_live_dashboard(self, capsys, monkeypatch):
        module = _load("live_dashboard")
        monkeypatch.setattr(module, "N_USERS", 800)
        module.main(["--once"])
        out = capsys.readouterr().out
        assert "repro.stream dashboard" in out
        assert "<- top-3" in out
        assert "window reports: 800" in out
        assert "repro_campaign_window_latest_round" in out

    def test_dependency_mining(self, capsys, monkeypatch):
        module = _load("dependency_mining")
        monkeypatch.setattr(module, "N_USERS", 20_000)
        # Shrink the pre-deployment audits to test scale.
        from repro.analysis import auditor

        monkeypatch.setattr(
            module,
            "audit_numeric_mechanism",
            lambda mech, rng=None: auditor.audit_numeric_mechanism(
                mech, samples_per_input=20_000, rng=rng
            ),
        )
        monkeypatch.setattr(
            module,
            "audit_frequency_oracle",
            lambda oracle, rng=None: auditor.audit_frequency_oracle(
                oracle, samples_per_input=20_000, rng=rng
            ),
        )
        module.main()
        out = capsys.readouterr().out
        assert "estimated dependencies" in out
        assert "occupation x employment_status" in out

    def test_all_examples_covered(self):
        """Every example script in the directory has a test above."""
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {
            "quickstart",
            "protocol_quickstart",
            "mechanism_tour",
            "census_analytics",
            "private_sgd",
            "distribution_estimation",
            "streaming_deployment",
            "multi_campaign_service",
            "live_dashboard",
            "ldp_neural_network",
            "dependency_mining",
        }
        assert scripts == tested
