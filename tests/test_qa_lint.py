"""Tests for the repro.qa invariant linter (rules QA101..QA601).

Every rule id has a paired good/bad fixture tree under
``tests/qa_fixtures/``: the bad tree must produce at least one finding
of exactly that rule, the good tree none.  The shipped ``src`` tree
must lint clean end-to-end through the real CLI.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.qa import ALL_RULES, get_rule, lint_paths
from repro.qa.core import module_name_for

FIXTURES = Path(__file__).resolve().parent / "qa_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent

RULE_IDS = ["QA101", "QA201", "QA301", "QA401", "QA501", "QA601", "QA701"]


def findings(path, rule_ids=None):
    return lint_paths([Path(path)], rule_ids)


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


class TestFixturePairs:
    """The core contract: every rule id is proven by a failing fixture."""

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_fails_its_rule(self, rule_id):
        found = findings(FIXTURES / rule_id / "bad", [rule_id])
        assert found, f"bad fixture for {rule_id} produced no findings"
        assert {v.rule for v in found} == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_passes_its_rule(self, rule_id):
        assert findings(FIXTURES / rule_id / "good", [rule_id]) == []

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_passes_all_rules(self, rule_id):
        assert findings(FIXTURES / rule_id / "good") == []


class TestRngDiscipline:
    def test_every_global_state_call_is_flagged(self):
        found = findings(FIXTURES / "QA101" / "bad", ["QA101"])
        assert len(found) == 4
        assert {v.line for v in found} == {10, 11, 12, 13}

    def test_aliased_from_import_resolves(self):
        # `from numpy.random import rand; rand(3)` must be caught even
        # though the call site never mentions numpy.
        found = findings(FIXTURES / "QA101" / "bad", ["QA101"])
        assert any(
            v.line == 13 and "numpy.random.rand" in v.message for v in found
        )

    def test_explicit_generators_are_allowed(self):
        assert findings(FIXTURES / "QA101" / "good", ["QA101"]) == []


class TestSuppression:
    def test_allow_comment_suppresses(self):
        assert findings(FIXTURES / "QA101" / "suppressed") == []

    def test_same_calls_fire_without_comment(self):
        # The suppressed fixture is meaningful only because identical
        # calls do fire in the bad fixture.
        assert findings(FIXTURES / "QA101" / "bad", ["QA101"])


class TestPrivacyBoundary:
    def test_top_level_and_function_local_imports(self):
        found = findings(FIXTURES / "QA201" / "bad", ["QA201"])
        assert len(found) == 2
        messages = " ".join(v.message for v in found)
        assert "repro.protocol.encoders" in messages
        assert "repro.core" in messages


class TestChargeAbsorbAtomicity:
    def test_await_inside_critical_section(self):
        found = findings(FIXTURES / "QA301" / "bad", ["QA301"])
        assert len(found) == 1
        assert found[0].line == 7  # the await between charge and absorb

    def test_awaits_outside_critical_section_pass(self):
        assert findings(FIXTURES / "QA301" / "good", ["QA301"]) == []


class TestSnapshotCompleteness:
    def test_missing_method_and_dropped_statistic(self):
        found = findings(FIXTURES / "QA401" / "bad", ["QA401"])
        messages = [v.message for v in found]
        assert len(found) == 2
        assert any("load_state" in m for m in messages)
        assert any("_hidden" in m for m in messages)

    def test_inherited_surface_counts(self):
        # ScaledCounterAccumulator implements nothing itself; the
        # parent's absorb/merge/state_dict/load_state must satisfy it.
        assert findings(FIXTURES / "QA401" / "good", ["QA401"]) == []


class TestWireCodecExhaustiveness:
    def test_orphan_container_flagged_in_all_four_functions(self):
        found = findings(FIXTURES / "QA501" / "bad", ["QA501"])
        orphan = [v for v in found if "OrphanReports" in v.message]
        assert len(orphan) == 4
        joined = " ".join(v.message for v in orphan)
        assert "encode_reports" in joined
        assert "decode_reports" in joined
        assert "reports_to_columns" in joined
        assert "columns_to_reports" in joined

    def test_v1_only_container_flagged_on_columnar_path(self):
        # HalfWiredReports has v1 JSON entries but no columnar ones:
        # exactly the two v2 functions must flag it.
        found = findings(FIXTURES / "QA501" / "bad", ["QA501"])
        half = [v for v in found if "HalfWiredReports" in v.message]
        assert len(half) == 2
        joined = " ".join(v.message for v in half)
        assert "reports_to_columns" in joined
        assert "columns_to_reports" in joined
        assert "encode_reports" not in joined

    def test_registered_container_passes(self):
        # The good tree also defines the ColumnBlock carrier, which is
        # exempt — it is the columnar wire form, not a container.
        assert findings(FIXTURES / "QA501" / "good", ["QA501"]) == []


class TestExceptionHygiene:
    def test_bare_and_swallowed_blanket(self):
        found = findings(FIXTURES / "QA601" / "bad", ["QA601"])
        assert len(found) == 2
        joined = " ".join(v.message for v in found)
        assert "bare except" in joined
        assert "blanket except" in joined

    def test_narrow_pass_and_handled_blanket_are_fine(self):
        assert findings(FIXTURES / "QA601" / "good", ["QA601"]) == []


class TestLoggingDiscipline:
    def test_print_and_basicconfig_flagged(self):
        found = findings(FIXTURES / "QA701" / "bad", ["QA701"])
        assert len(found) == 3
        joined = " ".join(v.message for v in found)
        assert "print()" in joined
        assert "basicConfig" in joined

    def test_guarded_script_and_dunder_main_are_exempt(self):
        # good/ holds a clean library module AND two entrypoint shapes
        # (an `if __name__ == "__main__"` script, a __main__.py) that
        # print and call basicConfig — exempt wholesale.
        assert findings(FIXTURES / "QA701" / "good", ["QA701"]) == []

    def test_good_tree_passes_every_rule(self):
        assert findings(FIXTURES / "QA701" / "good") == []

    def test_allow_comment_suppresses(self):
        assert findings(FIXTURES / "QA701" / "suppressed") == []


class TestModuleNames:
    def test_fixture_mini_tree_maps_like_the_real_tree(self):
        path = FIXTURES / "QA301" / "bad" / "src" / "repro" / "service" / "server.py"
        assert module_name_for(path) == "repro.service.server"

    def test_package_init_drops_the_suffix(self):
        assert (
            module_name_for(Path("src/repro/protocol/__init__.py"))
            == "repro.protocol"
        )

    def test_paths_without_src_or_repro_keep_their_shape(self):
        assert module_name_for(Path("scratch/foo.py")) == "scratch.foo"


class TestParseErrors:
    def test_unparseable_file_becomes_qa000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        found = findings(tmp_path)
        assert len(found) == 1
        assert found[0].rule == "QA000"
        assert "could not parse" in found[0].message


class TestRegistry:
    def test_rule_ids_are_exactly_the_documented_set(self):
        assert [rule.id for rule in ALL_RULES] == RULE_IDS

    def test_get_rule_round_trips(self):
        for rule_id in RULE_IDS:
            assert get_rule(rule_id).id == rule_id

    def test_get_rule_unknown_id(self):
        with pytest.raises(KeyError):
            get_rule("QA999")


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.qa.lint", *args],
            cwd=REPO_ROOT,
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )

    def test_bad_fixture_exits_nonzero(self):
        result = self.run_cli(str(FIXTURES / "QA101" / "bad"))
        assert result.returncode == 1
        assert "FAIL:" in result.stdout
        assert "QA101" in result.stdout

    def test_good_fixture_exits_zero(self):
        result = self.run_cli(str(FIXTURES / "QA101" / "good"))
        assert result.returncode == 0
        assert "OK: 0 violations" in result.stdout

    def test_rule_filter_restricts_the_run(self):
        result = self.run_cli(
            "--rule", "QA601", str(FIXTURES / "QA101" / "bad")
        )
        assert result.returncode == 0

    def test_unknown_rule_id_is_a_usage_error(self):
        result = self.run_cli("--rule", "QA999", "src")
        assert result.returncode == 2
        assert "unknown rule ids" in result.stderr

    def test_missing_path_is_a_usage_error(self):
        result = self.run_cli("does/not/exist")
        assert result.returncode == 2

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in RULE_IDS:
            assert rule_id in result.stdout

    def test_json_output_shape(self):
        result = self.run_cli(
            "--format", "json", str(FIXTURES / "QA101" / "bad")
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert payload["checked_files"] == 1
        assert [r["id"] for r in payload["rules"]] == RULE_IDS
        assert payload["violations"]
        assert set(payload["violations"][0]) == {
            "rule", "path", "line", "col", "message",
        }

    def test_package_alias_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.qa", "--list-rules"],
            cwd=REPO_ROOT,
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "QA101" in result.stdout


class TestShippedTree:
    def test_src_lints_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.qa.lint", "src"],
            cwd=REPO_ROOT,
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK: 0 violations" in result.stdout

    def test_mypy_scoped_packages_clean(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                "--config-file",
                "mypy.ini",
                "-p",
                "repro.protocol",
                "-p",
                "repro.runtime",
            ],
            cwd=REPO_ROOT,
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
