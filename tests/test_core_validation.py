"""Tests for repro.core.validation."""

import math

import numpy as np
import pytest

from repro.core.validation import (
    check_dimension,
    check_epsilon,
    check_matrix,
    check_probability,
    check_unit_interval,
)


class TestCheckEpsilon:
    def test_accepts_positive(self):
        assert check_epsilon(1.5) == 1.5

    def test_coerces_to_float(self):
        assert isinstance(check_epsilon(2), float)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_epsilon(bad)


class TestCheckUnitInterval:
    def test_accepts_interior(self):
        arr = check_unit_interval([0.0, -0.5, 0.99])
        assert np.allclose(arr, [0.0, -0.5, 0.99])

    def test_accepts_endpoints(self):
        arr = check_unit_interval([-1.0, 1.0])
        assert np.allclose(arr, [-1.0, 1.0])

    def test_clips_float_rounding(self):
        arr = check_unit_interval([1.0 + 1e-12])
        assert arr.max() <= 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="must lie in"):
            check_unit_interval([1.5])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_unit_interval([math.nan])

    def test_empty_ok(self):
        assert check_unit_interval([]).size == 0

    def test_scalar_ok(self):
        assert float(check_unit_interval(0.5)) == 0.5


class TestCheckDimension:
    def test_accepts(self):
        assert check_dimension(3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_dimension(bad)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad)


class TestCheckMatrix:
    def test_accepts_2d(self):
        out = check_matrix(np.zeros((4, 3)), 3)
        assert out.shape == (4, 3)

    def test_promotes_1d_row(self):
        out = check_matrix(np.zeros(3), 3)
        assert out.shape == (1, 3)

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError, match="columns"):
            check_matrix(np.zeros((4, 2)), 3)

    def test_3d_raises(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((2, 2, 2)), 2)

    def test_out_of_domain_raises(self):
        with pytest.raises(ValueError):
            check_matrix(np.full((2, 2), 3.0), 2)
