"""Statistical tests: every mechanism is an unbiased estimator with the
advertised variance.

Each check runs the mechanism on many copies of a fixed input and
compares the sample mean / variance against the closed form within a
z-score-style tolerance (generous enough to make flakes essentially
impossible at the fixed seed).
"""

import numpy as np
import pytest

from repro.core import get_mechanism

N = 120_000
INPUTS = (-1.0, -0.4, 0.0, 0.7, 1.0)
ALL_MECHANISMS = ("laplace", "scdf", "staircase", "duchi", "pm", "hm")


@pytest.mark.parametrize("name", ALL_MECHANISMS)
@pytest.mark.parametrize("t", INPUTS)
def test_unbiased(name, t, epsilon, rng):
    mech = get_mechanism(name, epsilon)
    out = mech.privatize(np.full(N, t), rng)
    # Allow 5 standard errors of slack.
    sem = np.sqrt(float(mech.variance(t)) / N)
    assert abs(out.mean() - t) < 5.0 * sem + 1e-12


@pytest.mark.parametrize("name", ALL_MECHANISMS)
@pytest.mark.parametrize("t", (0.0, 0.7, 1.0))
def test_variance_matches_closed_form(name, t, rng):
    epsilon = 1.0
    mech = get_mechanism(name, epsilon)
    out = mech.privatize(np.full(N, t), rng)
    want = float(mech.variance(t))
    got = float(np.var(out))
    assert got == pytest.approx(want, rel=0.05)


@pytest.mark.parametrize("name", ALL_MECHANISMS)
def test_mean_estimation_error_shrinks_with_n(name, rng):
    mech = get_mechanism(name, 1.0)
    values = rng.uniform(-1, 1, 50_000)
    small = mech.estimate_mean(mech.privatize(values[:500], rng))
    errors_small = abs(small - values[:500].mean())
    big = mech.estimate_mean(mech.privatize(values, rng))
    errors_big = abs(big - values.mean())
    # With 100x the users the error should drop clearly (10x in RMS).
    assert errors_big < errors_small + 0.2
