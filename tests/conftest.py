"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator; tests stay reproducible."""
    return np.random.default_rng(20190408)  # ICDE 2019 week


@pytest.fixture(params=[0.3, 0.61, 1.0, 1.29, 2.0, 4.0])
def epsilon(request):
    """A spread of privacy budgets covering every Table I regime."""
    return request.param
