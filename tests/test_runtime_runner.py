"""Shard-equivalence suite for the parallel runtime.

The runtime's contract: the result of a planned run depends only on the
plan — executor choice and worker count never change a single bit.
Count-based accumulators (frequency, histogram) must agree *bitwise*;
float-sum accumulators are also bitwise here because merge order is
fixed by shard index, with <= 1e-12 as the documented fallback bound.
"""

import numpy as np
import pytest

from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.protocol import Protocol
from repro.runtime import (
    ParallelRunner,
    ShardPlan,
    StreamingRunner,
    run_auto,
    run_inline,
    run_sharded,
)

N = 3_000
SEED = 2019


def _schema():
    return Schema(
        [
            NumericAttribute("age"),
            CategoricalAttribute("region", 6),
            NumericAttribute("income"),
        ]
    )


def _dataset(n=N):
    rng = np.random.default_rng(1)
    return Dataset(
        _schema(),
        {
            "age": rng.uniform(-1, 1, n),
            "region": rng.integers(0, 6, n),
            "income": rng.uniform(-1, 1, n),
        },
    )


def _workloads():
    rng = np.random.default_rng(0)
    return {
        "mean": (
            Protocol.numeric_mean(1.0, "hm"),
            rng.uniform(-1, 1, N),
        ),
        "frequency": (
            Protocol.frequency(1.0, domain=12, oracle="oue"),
            rng.integers(0, 12, N),
        ),
        "frequency-olh": (
            Protocol.frequency(1.0, domain=12, oracle="olh"),
            rng.integers(0, 12, N),
        ),
        "histogram": (
            Protocol.histogram(1.0, bins=8),
            rng.uniform(-1, 1, N),
        ),
        "multidim": (
            Protocol.multidim(4.0, d=5, mechanism="hm"),
            rng.uniform(-1, 1, (N, 5)),
        ),
        "mixed": (Protocol.multidim(4.0, schema=_schema()), _dataset()),
    }


def _estimate_arrays(estimate):
    """Flatten any protocol kind's estimate into comparable arrays."""
    if hasattr(estimate, "histogram"):
        return [estimate.histogram, estimate.raw]
    if hasattr(estimate, "means"):
        return [
            np.array([estimate.means[k] for k in sorted(estimate.means)]),
            *[estimate.frequencies[k] for k in sorted(estimate.frequencies)],
        ]
    return [np.atleast_1d(np.asarray(estimate, dtype=float))]


def _assert_same_estimates(a, b, bitwise=True):
    arrays_a, arrays_b = _estimate_arrays(a), _estimate_arrays(b)
    assert len(arrays_a) == len(arrays_b)
    for x, y in zip(arrays_a, arrays_b):
        if bitwise:
            assert np.array_equal(x, y)
        else:
            np.testing.assert_allclose(x, y, rtol=0, atol=1e-12)


@pytest.fixture(params=list(_workloads()))
def kind(request):
    return request.param


class TestExecutorEquivalence:
    """Same plan => same bits, whatever executes it."""

    def test_thread_workers_1_2_4_8_match_serial(self, kind):
        protocol, values = _workloads()[kind]
        plan = ShardPlan(n=N, num_shards=8, seed=SEED)
        reference = ParallelRunner("serial").run(protocol, values, plan)
        for workers in (1, 2, 4, 8):
            acc = ParallelRunner("thread", max_workers=workers).run(
                protocol, values, plan
            )
            assert acc.count == reference.count == N
            _assert_same_estimates(acc.estimate(), reference.estimate())

    def test_process_pool_matches_serial(self, kind):
        protocol, values = _workloads()[kind]
        plan = ShardPlan(n=N, num_shards=4, seed=SEED)
        reference = ParallelRunner("serial").run(protocol, values, plan)
        acc = ParallelRunner("process", max_workers=2).run(
            protocol, values, plan
        )
        assert acc.count == N
        _assert_same_estimates(acc.estimate(), reference.estimate())

    def test_sharded_matches_manual_shard_loop(self, kind):
        """The runner is exactly: encode each shard with its spawned
        stream, merge in shard order."""
        protocol, values = _workloads()[kind]
        plan = ShardPlan(n=N, num_shards=5, seed=SEED)
        encoder = protocol.client()
        manual = protocol.server()
        for shard in plan.shards():
            chunk = (
                values.subset(np.arange(shard.start, shard.stop))
                if hasattr(values, "subset")
                else values[shard.start : shard.stop]
            )
            manual.absorb(encoder.encode_batch(chunk, shard.rng()))
        runner_acc = ParallelRunner("serial").run(protocol, values, plan)
        _assert_same_estimates(runner_acc.estimate(), manual.estimate())

    def test_batch_size_bounds_memory_not_results_for_counts(self):
        """For OUE (one random matrix per batch, filled row-major) the
        encode stream is batching-invariant, so even different
        batch_size values agree bitwise."""
        protocol, values = _workloads()["frequency"]
        a = ShardPlan(n=N, num_shards=4, seed=SEED, batch_size=None)
        b = ShardPlan(n=N, num_shards=4, seed=SEED, batch_size=97)
        acc_a = ParallelRunner("serial").run(protocol, values, a)
        acc_b = ParallelRunner("thread", max_workers=4).run(
            protocol, values, b
        )
        _assert_same_estimates(acc_a.estimate(), acc_b.estimate())


class TestRunnerSurface:
    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner("mpi")
        with pytest.raises(ValueError):
            ParallelRunner("thread", max_workers=0)

    def test_run_sharded_requires_plan_or_num_shards(self):
        protocol, values = _workloads()["mean"]
        with pytest.raises(ValueError):
            run_sharded(protocol, values)

    def test_run_sharded_rejects_conflicting_shards(self):
        protocol, values = _workloads()["mean"]
        plan = ShardPlan(n=N, num_shards=4, seed=1)
        with pytest.raises(ValueError):
            run_sharded(protocol, values, plan=plan, num_shards=8)

    def test_run_sharded_rejects_conflicting_batch_size(self):
        protocol, values = _workloads()["mean"]
        plan = ShardPlan(n=N, num_shards=4, seed=1, batch_size=None)
        with pytest.raises(ValueError):
            run_sharded(protocol, values, plan=plan, batch_size=500)

    def test_run_sharded_rejects_seed_or_rng_with_plan(self):
        """An explicit plan owns all randomness — a seed/rng passed
        alongside it would be silently ignored, so it is an error."""
        protocol, values = _workloads()["mean"]
        plan = ShardPlan(n=N, num_shards=4, seed=1)
        with pytest.raises(ValueError, match="fixes all randomness"):
            run_sharded(protocol, values, plan=plan, seed=2)
        with pytest.raises(ValueError, match="fixes all randomness"):
            run_sharded(protocol, values, plan=plan, rng=2)

    def test_run_rejects_workload_plan_size_mismatch(self):
        protocol, values = _workloads()["mean"]
        plan = ShardPlan(n=N + 1, num_shards=4, seed=1)
        with pytest.raises(ValueError, match="plan covers"):
            ParallelRunner("serial").run(protocol, values, plan)

    def test_loader_callable_workload(self):
        """A loader callable (no __len__) serves chunks on demand."""
        protocol, values = _workloads()["mean"]

        def loader(start, stop):
            return values[start:stop]

        plan = ShardPlan(n=N, num_shards=4, seed=SEED)
        from_loader = ParallelRunner("thread", max_workers=2).run(
            protocol, loader, plan
        )
        from_array = ParallelRunner("serial").run(protocol, values, plan)
        _assert_same_estimates(
            from_loader.estimate(), from_array.estimate()
        )

    def test_run_sharded_with_seed_is_reproducible(self):
        protocol, values = _workloads()["frequency"]
        a = run_sharded(protocol, values, num_shards=4, seed=3)
        b = run_sharded(
            protocol, values, num_shards=4, seed=3, executor="thread",
            max_workers=4,
        )
        _assert_same_estimates(a.estimate(), b.estimate())

    def test_run_inline_matches_protocol_run(self, kind):
        """The inline path is bitwise-compatible with Protocol.run."""
        protocol, values = _workloads()[kind]
        inline = run_inline(protocol, values, rng=123).estimate()
        direct = protocol.run(values, rng=123)
        _assert_same_estimates(inline, direct)

    def test_run_auto_default_is_inline(self):
        """One serial shard consumes the rng exactly like run_inline."""
        protocol, values = _workloads()["multidim"]
        auto = run_auto(protocol, values, 123).estimate()
        inline = run_inline(protocol, values, rng=123).estimate()
        _assert_same_estimates(auto, inline)

    def test_run_auto_sharded_path_is_reproducible(self):
        protocol, values = _workloads()["frequency"]
        a = run_auto(protocol, values, 9, num_shards=4).estimate()
        b = run_auto(protocol, values, 9, num_shards=4,
                     executor="thread", max_workers=2).estimate()
        _assert_same_estimates(a, b)

    def test_empty_shards_are_noops(self):
        protocol, values = _workloads()["mean"]
        plan = ShardPlan(n=N, num_shards=N + 50, seed=SEED)
        acc = ParallelRunner("thread", max_workers=4).run(
            protocol, values, plan
        )
        assert acc.count == N

    def test_accumulator_count_is_total_users(self, kind):
        protocol, values = _workloads()[kind]
        acc = run_sharded(protocol, values, num_shards=3, seed=SEED)
        assert acc.count == N


class TestStreamingRunner:
    def _batches(self, values, size=500):
        return [
            values[lo : lo + size]
            if not hasattr(values, "subset")
            else values.subset(np.arange(lo, min(lo + size, len(values))))
            for lo in range(0, len(values), size)
        ]

    def test_matches_serial_reference(self, kind):
        protocol, values = _workloads()[kind]
        batches = self._batches(values)

        runner = StreamingRunner(protocol, seed=SEED, max_pending=2)
        for batch in batches:
            runner.submit(batch)
        streamed = runner.finish()

        root = np.random.SeedSequence(SEED)
        encoder = protocol.client()
        reference = protocol.server()
        for batch in batches:
            reference.absorb(
                encoder.encode_batch(
                    batch, np.random.default_rng(root.spawn(1)[0])
                )
            )
        assert streamed.count == reference.count == N
        _assert_same_estimates(streamed.estimate(), reference.estimate())

    def test_synchronous_mode_matches_pooled(self):
        protocol, values = _workloads()["frequency"]
        batches = self._batches(values)
        pooled = StreamingRunner(protocol, seed=1, max_pending=3)
        sync = StreamingRunner(protocol, seed=1, max_workers=0)
        for batch in batches:
            pooled.submit(batch)
            sync.submit(batch)
        _assert_same_estimates(
            pooled.finish().estimate(), sync.finish().estimate()
        )

    def test_pending_is_bounded(self):
        protocol, values = _workloads()["mean"]
        runner = StreamingRunner(protocol, seed=0, max_pending=2)
        for batch in self._batches(values, size=100):
            runner.submit(batch)
            assert len(runner._pending) <= 2
        runner.finish()

    def test_finish_is_idempotent_and_closes(self):
        protocol, values = _workloads()["mean"]
        runner = StreamingRunner(protocol, seed=0)
        runner.submit(values[:100])
        acc = runner.finish()
        assert runner.finish() is acc
        with pytest.raises(RuntimeError):
            runner.submit(values[:100])

    def test_context_manager(self):
        protocol, values = _workloads()["mean"]
        with StreamingRunner(protocol, seed=0) as runner:
            runner.submit(values[:200])
        assert runner.batches_submitted == 1
        assert runner.finish().count == 200

    def test_validation(self):
        protocol, _ = _workloads()["mean"]
        with pytest.raises(ValueError):
            StreamingRunner(protocol, max_pending=0)
        with pytest.raises(ValueError):
            StreamingRunner(protocol, max_workers=-1)
