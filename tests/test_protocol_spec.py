"""Tests for ProtocolSpec, the unified registry and spec round-trips."""

import json

import pytest

from repro.core.mechanism import NumericMechanism
from repro.data.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.frequency.oracle import FrequencyOracle
from repro.protocol import (
    SPEC_VERSION,
    Protocol,
    ProtocolSpec,
    available_primitives,
    get_primitive,
    primitive_kind,
    schema_from_dict,
    schema_to_dict,
)


def _schema():
    return Schema(
        [
            NumericAttribute("income", low=0.0, high=100_000.0),
            CategoricalAttribute("region", 5),
            NumericAttribute("age", low=18.0, high=90.0),
        ]
    )


class TestRegistry:
    def test_available_covers_both_families(self):
        prims = available_primitives()
        assert "pm" in prims["numeric"]
        assert "hm" in prims["numeric"]
        assert "oue" in prims["categorical"]
        assert "grr" in prims["categorical"]

    def test_kind_resolution(self):
        assert primitive_kind("pm") == "numeric"
        assert primitive_kind("oue") == "categorical"
        with pytest.raises(KeyError):
            primitive_kind("nope")

    def test_numeric_instantiation(self):
        mech = get_primitive("pm", 1.0)
        assert isinstance(mech, NumericMechanism)
        assert mech.epsilon == 1.0

    def test_categorical_instantiation(self):
        oracle = get_primitive("oue", 1.0, domain=8)
        assert isinstance(oracle, FrequencyOracle)
        assert oracle.k == 8

    def test_numeric_rejects_domain(self):
        with pytest.raises(ValueError):
            get_primitive("pm", 1.0, domain=8)

    def test_categorical_requires_domain(self):
        with pytest.raises(ValueError):
            get_primitive("oue", 1.0)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            get_primitive("pm", 1.0, kind="weird")


class TestSchemaSerialization:
    def test_round_trip(self):
        schema = _schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_json_round_trip(self):
        schema = _schema()
        payload = json.loads(json.dumps(schema_to_dict(schema)))
        assert schema_from_dict(payload) == schema

    def test_bad_attribute_type(self):
        with pytest.raises(ValueError):
            schema_from_dict({"attributes": [{"name": "x", "type": "blob"}]})


class TestProtocolSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSpec(kind="marginal", epsilon=1.0)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSpec(kind="mean", epsilon=-1.0, mechanism="pm")

    @pytest.mark.parametrize(
        "kind, missing",
        [
            ("mean", {}),
            ("frequency", {"oracle": "oue"}),
            ("multidim-numeric", {"mechanism": "hm"}),
            ("multidim-mixed", {"mechanism": "hm", "oracle": "oue"}),
        ],
    )
    def test_required_fields_enforced(self, kind, missing):
        with pytest.raises(ValueError):
            ProtocolSpec(kind=kind, epsilon=1.0, **missing)

    def test_to_dict_drops_none_fields(self):
        spec = ProtocolSpec(kind="mean", epsilon=1.0, mechanism="pm")
        assert spec.to_dict() == {
            "spec_version": SPEC_VERSION,
            "kind": "mean",
            "epsilon": 1.0,
            "mechanism": "pm",
        }

    def test_from_dict_ignores_unknown_minor_fields(self):
        # A future minor version may add keys; this reader drops them.
        spec = ProtocolSpec.from_dict(
            {
                "spec_version": "1.7",
                "kind": "mean",
                "epsilon": 1.0,
                "mechanism": "pm",
                "added_in_1_7": True,
            }
        )
        assert spec == ProtocolSpec(kind="mean", epsilon=1.0, mechanism="pm")

    def test_from_dict_rejects_unknown_fields_at_own_minor(self):
        # A typo'd field in a current-version payload is a mistake,
        # not forward-compatible growth.
        with pytest.raises(ValueError, match="unknown spec fields"):
            ProtocolSpec.from_dict(
                {
                    "spec_version": SPEC_VERSION,
                    "kind": "mean",
                    "epsilon": 1.0,
                    "mechanism": "pm",
                    "mechansim": "hm",  # typo: silently dropped otherwise
                }
            )

    def test_from_dict_accepts_unversioned_payloads(self):
        # Pre-versioning stored configs read as 1.0.
        spec = ProtocolSpec.from_dict(
            {"kind": "mean", "epsilon": 1.0, "mechanism": "pm"}
        )
        assert spec.kind == "mean"

    def test_from_dict_rejects_unknown_major(self):
        with pytest.raises(ValueError, match="major"):
            ProtocolSpec.from_dict(
                {
                    "spec_version": "2.0",
                    "kind": "mean",
                    "epsilon": 1.0,
                    "mechanism": "pm",
                }
            )

    def test_from_dict_rejects_malformed_version(self):
        with pytest.raises(ValueError, match="malformed"):
            ProtocolSpec.from_dict(
                {"spec_version": "new", "kind": "mean", "epsilon": 1.0,
                 "mechanism": "pm"}
            )


class TestFacadeSpecRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Protocol.numeric_mean(1.5, "pm"),
            lambda: Protocol.frequency(0.8, domain=6, oracle="grr"),
            lambda: Protocol.histogram(2.0, bins=8, oracle="oue"),
            lambda: Protocol.multidim(4.0, d=10, mechanism="hm"),
            lambda: Protocol.multidim(4.0, d=10, mechanism="pm", k=2),
            lambda: Protocol.multidim(2.0, schema=_schema(), mechanism="pm"),
        ],
    )
    def test_round_trip(self, factory):
        spec = factory().spec
        rebuilt = Protocol.from_spec(spec.to_dict())
        assert rebuilt.spec == spec

    def test_from_spec_accepts_spec_instance(self):
        spec = Protocol.numeric_mean(1.0).spec
        assert Protocol.from_spec(spec).spec == spec

    def test_json_round_trip_mixed(self):
        spec = Protocol.multidim(2.0, schema=_schema()).spec
        payload = json.loads(json.dumps(spec.to_dict()))
        assert Protocol.from_spec(payload).spec == spec

    def test_multidim_requires_exactly_one_shape(self):
        with pytest.raises(ValueError):
            Protocol.multidim(1.0)
        with pytest.raises(ValueError):
            Protocol.multidim(1.0, d=3, schema=_schema())

    def test_rebuilt_protocol_behaves_identically(self, rng):
        import numpy as np

        spec = Protocol.multidim(4.0, d=6, mechanism="hm").spec
        a = Protocol.from_spec(spec.to_dict())
        b = Protocol.from_spec(spec.to_dict())
        t = rng.uniform(-1, 1, (2_000, 6))
        est_a = a.run(t, np.random.default_rng(13))
        est_b = b.run(t, np.random.default_rng(13))
        assert np.array_equal(est_a, est_b)
