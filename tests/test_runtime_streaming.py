"""Regression tests for StreamingRunner error handling + checkpoints.

The bug: a batch whose *background* encode raised left the thread pool
running and the pending queue inconsistent — the error could surface
repeatedly (or never, if the caller stopped submitting before the
failed future was drained).  The contract now: the error propagates
exactly once from whichever ``submit()``/``finish()`` first observes
it, the pool is shut down and pending batches discarded, and later
calls raise a plain ``RuntimeError`` describing the earlier failure.
"""

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.runtime import StreamingRunner


class ExplodingEncoder:
    """Wraps a real encoder; raises on the ``fail_on``-th encode call."""

    def __init__(self, protocol, fail_on):
        self.inner = protocol.client()
        self.fail_on = fail_on
        self.calls = 0

    def encode_batch(self, values, rng=None):
        call = self.calls
        self.calls += 1
        if call == self.fail_on:
            raise ValueError("boom: encode failed")
        return self.inner.encode_batch(values, rng)

    def new_accumulator(self):
        return self.inner.new_accumulator()


def _batches(n_batches=6, size=50):
    rng = np.random.default_rng(3)
    return [rng.uniform(-1, 1, size) for _ in range(n_batches)]


class TestEncodeErrorPropagation:
    def test_error_propagates_exactly_once_then_runtime_error(self):
        encoder = ExplodingEncoder(Protocol.numeric_mean(1.0), fail_on=0)
        runner = StreamingRunner(encoder, seed=0, max_pending=2)
        with pytest.raises(ValueError, match="boom"):
            for batch in _batches():
                runner.submit(batch)
            runner.finish()
        # Pool shut down, queue drained/cleared — no leaked threads.
        assert runner._pool is None
        assert not runner._pending
        # The original error is not re-raised; later calls get a
        # RuntimeError that names it.
        with pytest.raises(RuntimeError, match="boom"):
            runner.finish()
        with pytest.raises(RuntimeError, match="boom"):
            runner.submit(_batches(1)[0])

    def test_error_surfaces_from_finish_when_queue_never_fills(self):
        encoder = ExplodingEncoder(Protocol.numeric_mean(1.0), fail_on=1)
        runner = StreamingRunner(encoder, seed=0, max_pending=8)
        for batch in _batches(3):
            runner.submit(batch)  # never exceeds max_pending
        with pytest.raises(ValueError, match="boom"):
            runner.finish()
        assert runner._pool is None
        assert not runner._pending

    def test_context_manager_does_not_mask_the_error(self):
        encoder = ExplodingEncoder(Protocol.numeric_mean(1.0), fail_on=0)
        with pytest.raises(ValueError, match="boom"):
            with StreamingRunner(encoder, seed=0, max_pending=1) as runner:
                for batch in _batches():
                    runner.submit(batch)

    def test_synchronous_mode_raises_directly_and_closes(self):
        encoder = ExplodingEncoder(Protocol.numeric_mean(1.0), fail_on=0)
        runner = StreamingRunner(encoder, seed=0, max_workers=0)
        with pytest.raises(ValueError, match="boom"):
            runner.submit(_batches(1)[0])
        # Same close-after-failure contract as the pooled path.
        with pytest.raises(RuntimeError, match="boom"):
            runner.submit(_batches(1)[0])
        with pytest.raises(RuntimeError, match="boom"):
            runner.finish()

    def test_healthy_run_unaffected(self):
        protocol = Protocol.numeric_mean(1.0)
        runner = StreamingRunner(protocol, seed=0, max_pending=2)
        batches = _batches()
        for batch in batches:
            runner.submit(batch)
        acc = runner.finish()
        assert acc.count == sum(len(b) for b in batches)


class TestCheckpointHook:
    def test_fires_every_n_absorbed_batches(self):
        protocol = Protocol.numeric_mean(1.0)
        seen = []
        runner = StreamingRunner(
            protocol,
            seed=0,
            max_workers=0,
            checkpoint_every=2,
            on_checkpoint=lambda acc, n: seen.append((n, acc.count)),
        )
        for batch in _batches(5, size=10):
            runner.submit(batch)
        runner.finish()
        assert [n for n, _ in seen] == [2, 4]
        assert [count for _, count in seen] == [20, 40]
        assert runner.batches_absorbed == 5

    def test_fires_in_pooled_mode_during_drain(self):
        protocol = Protocol.numeric_mean(1.0)
        seen = []
        runner = StreamingRunner(
            protocol,
            seed=0,
            max_pending=2,
            checkpoint_every=3,
            on_checkpoint=lambda acc, n: seen.append(n),
        )
        for batch in _batches(7, size=10):
            runner.submit(batch)
        runner.finish()
        assert seen == [3, 6]

    def test_checkpoint_state_is_absorb_consistent(self):
        # The callback sees a quiescent accumulator: restoring its
        # snapshot and continuing matches the uninterrupted run.
        protocol = Protocol.frequency(1.0, domain=8)
        rng = np.random.default_rng(0)
        batches = [rng.integers(0, 8, 40) for _ in range(4)]
        snapshots = {}
        runner = StreamingRunner(
            protocol,
            seed=5,
            max_workers=0,
            checkpoint_every=2,
            on_checkpoint=lambda acc, n: snapshots.update(
                {n: acc.state_dict()}
            ),
        )
        for batch in batches:
            runner.submit(batch)
        full = runner.finish()

        resumed = protocol.server().load_state(snapshots[2])
        root = np.random.SeedSequence(5)
        encoder = protocol.client()
        streams = [
            np.random.default_rng(root.spawn(1)[0]) for _ in batches
        ]
        for batch, stream in zip(batches[2:], streams[2:]):
            resumed.absorb(encoder.encode_batch(batch, stream))
        np.testing.assert_array_equal(
            resumed.estimate(), full.estimate()
        )

    def test_validation(self):
        protocol = Protocol.numeric_mean(1.0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            StreamingRunner(
                protocol, checkpoint_every=0, on_checkpoint=lambda a, n: None
            )
        with pytest.raises(ValueError, match="on_checkpoint"):
            StreamingRunner(protocol, checkpoint_every=2)
