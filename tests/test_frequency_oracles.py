"""Tests shared across all frequency oracles + oracle-specific checks."""

import math

import numpy as np
import pytest

from repro.frequency import (
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    available_oracles,
    get_oracle,
)
from repro.frequency.oracle import FrequencyOracle, register_oracle

ALL_ORACLES = ("grr", "olh", "oue", "sue")
N = 60_000
K = 6


def _skewed_values(rng, n=N, k=K):
    probs = np.arange(k, 0, -1, dtype=float)
    probs /= probs.sum()
    return rng.choice(k, size=n, p=probs), probs


class TestRegistry:
    def test_all_registered(self):
        assert available_oracles() == ALL_ORACLES

    def test_get_oracle(self):
        oracle = get_oracle("oue", 1.0, 5)
        assert oracle.k == 5 and oracle.epsilon == 1.0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_oracle("nope", 1.0, 5)

    def test_duplicate_name_rejected(self):
        class Dup(FrequencyOracle):
            name = "oue"

            def privatize(self, values, rng=None):
                raise NotImplementedError

            def support_counts(self, reports):
                raise NotImplementedError

            @property
            def support_probabilities(self):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_oracle(Dup)


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_domain_too_small_rejected(self, name):
        with pytest.raises(ValueError):
            get_oracle(name, 1.0, 1)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_bad_epsilon_rejected(self, name):
        with pytest.raises(ValueError):
            get_oracle(name, 0.0, 4)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_out_of_domain_value_rejected(self, name, rng):
        oracle = get_oracle(name, 1.0, 4)
        with pytest.raises(ValueError):
            oracle.privatize([4], rng)
        with pytest.raises(ValueError):
            oracle.privatize([-1], rng)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_non_integer_values_rejected(self, name, rng):
        oracle = get_oracle(name, 1.0, 4)
        with pytest.raises(ValueError):
            oracle.privatize([0.5], rng)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_support_probabilities_ordered(self, name, epsilon):
        oracle = get_oracle(name, epsilon, K)
        p, q = oracle.support_probabilities
        assert 0.0 < q < p <= 1.0

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_frequency_estimates_unbiased(self, name, rng, epsilon):
        oracle = get_oracle(name, epsilon, K)
        values, probs = _skewed_values(rng)
        truth = np.bincount(values, minlength=K) / N
        reports = oracle.privatize(values, rng)
        estimates = oracle.estimate_frequencies(reports)
        tolerance = 6.0 * math.sqrt(oracle.estimator_variance(N) + 1.0 / N)
        assert np.all(np.abs(estimates - truth) < tolerance)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_estimates_sum_near_one(self, name, rng):
        oracle = get_oracle(name, 2.0, K)
        values, _ = _skewed_values(rng)
        estimates = oracle.estimate_frequencies(oracle.privatize(values, rng))
        assert estimates.sum() == pytest.approx(1.0, abs=0.1)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_estimator_variance_empirical(self, name, rng):
        """Repeated estimation of a fixed value's frequency matches the
        advertised estimator variance."""
        oracle = get_oracle(name, 1.0, 4)
        n, trials = 3_000, 60
        values = np.zeros(n, dtype=np.int64)  # everyone holds value 0
        estimates = [
            oracle.estimate_frequencies(oracle.privatize(values, rng))[1]
            for _ in range(trials)
        ]
        want = oracle.estimator_variance(n, f=0.0)
        got = float(np.var(estimates))
        assert got == pytest.approx(want, rel=0.6)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_estimator_variance_validates_n(self, name):
        oracle = get_oracle(name, 1.0, 4)
        with pytest.raises(ValueError):
            oracle.estimator_variance(0)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_zero_reports_rejected(self, name, rng):
        oracle = get_oracle(name, 1.0, 4)
        reports = oracle.privatize(np.array([0, 1], dtype=np.int64), rng)
        empty = reports[:0] if not hasattr(reports, "seeds") else type(
            reports
        )(seeds=reports.seeds[:0], buckets=reports.buckets[:0])
        with pytest.raises(ValueError):
            oracle.estimate_frequencies(empty)


class TestGRR:
    def test_pmf_is_exact_ldp(self, epsilon):
        oracle = GeneralizedRandomizedResponse(epsilon, K)
        worst = 0.0
        for v in range(K):
            for v_prime in range(K):
                p = oracle.output_probabilities(v)
                q = oracle.output_probabilities(v_prime)
                worst = max(worst, float(np.max(p / q)))
        assert worst <= math.exp(epsilon) * (1 + 1e-12)
        assert worst == pytest.approx(math.exp(epsilon), rel=1e-9)

    def test_pmf_sums_to_one(self, epsilon):
        oracle = GeneralizedRandomizedResponse(epsilon, K)
        assert oracle.output_probabilities(2).sum() == pytest.approx(1.0)

    def test_keep_probability(self, rng):
        oracle = GeneralizedRandomizedResponse(2.0, 4)
        values = np.full(100_000, 2, dtype=np.int64)
        reports = oracle.privatize(values, rng)
        p, _ = oracle.support_probabilities
        assert np.mean(reports == 2) == pytest.approx(p, abs=0.01)

    def test_other_values_uniform(self, rng):
        oracle = GeneralizedRandomizedResponse(1.0, 4)
        values = np.full(200_000, 0, dtype=np.int64)
        reports = oracle.privatize(values, rng)
        _, q = oracle.support_probabilities
        for other in (1, 2, 3):
            assert np.mean(reports == other) == pytest.approx(q, abs=0.01)


class TestUnaryEncodings:
    def test_oue_probabilities(self, epsilon):
        oracle = OptimizedUnaryEncoding(epsilon, K)
        p, q = oracle.support_probabilities
        assert p == 0.5
        assert q == pytest.approx(1.0 / (math.exp(epsilon) + 1.0))

    def test_sue_probabilities(self, epsilon):
        oracle = SymmetricUnaryEncoding(epsilon, K)
        p, q = oracle.support_probabilities
        e_half = math.exp(epsilon / 2.0)
        assert p == pytest.approx(e_half / (e_half + 1.0))
        assert p + q == pytest.approx(1.0)

    @pytest.mark.parametrize("cls", [OptimizedUnaryEncoding, SymmetricUnaryEncoding])
    def test_per_user_ldp_via_bit_flips(self, cls, epsilon):
        """Two one-hot inputs differ in exactly two bits; the per-report
        probability ratio is (p(1-q))/(q(1-p)) over those bits, which
        must be <= e^eps."""
        oracle = cls(epsilon, K)
        p, q = oracle.support_probabilities
        ratio = (p * (1.0 - q)) / (q * (1.0 - p))
        assert ratio <= math.exp(epsilon) * (1 + 1e-9)

    def test_oue_ldp_is_tight(self, epsilon):
        oracle = OptimizedUnaryEncoding(epsilon, K)
        p, q = oracle.support_probabilities
        ratio = (p * (1.0 - q)) / (q * (1.0 - p))
        assert ratio == pytest.approx(math.exp(epsilon), rel=1e-9)

    def test_report_shape(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, K)
        reports = oracle.privatize(np.array([0, 1, 2]), rng)
        assert reports.shape == (3, K)
        assert set(np.unique(reports)) <= {0, 1}

    def test_true_bit_rate(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, 4)
        reports = oracle.privatize(np.zeros(100_000, dtype=np.int64), rng)
        p, q = oracle.support_probabilities
        assert reports[:, 0].mean() == pytest.approx(p, abs=0.01)
        assert reports[:, 1].mean() == pytest.approx(q, abs=0.01)

    def test_oue_worst_case_variance_formula(self):
        oracle = OptimizedUnaryEncoding(1.0, K)
        e = math.exp(1.0)
        assert oracle.worst_case_estimator_variance(1000) == pytest.approx(
            4.0 * e / (1000 * (e - 1.0) ** 2)
        )
        assert oracle.worst_case_estimator_variance(1000) == pytest.approx(
            oracle.estimator_variance(1000, f=0.0)
        )

    def test_oue_variance_beats_sue(self):
        """OUE's defining property (Wang et al.): lower variance than SUE
        at the same eps."""
        for eps in (0.5, 1.0, 2.0, 4.0):
            oue = OptimizedUnaryEncoding(eps, K).estimator_variance(1000)
            sue = SymmetricUnaryEncoding(eps, K).estimator_variance(1000)
            assert oue < sue

    def test_wrong_report_shape_rejected(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, K)
        with pytest.raises(ValueError):
            oracle.support_counts(np.zeros((5, K + 1)))


class TestOLH:
    def test_default_g(self):
        oracle = OptimizedLocalHashing(1.0, K)
        assert oracle.g == int(round(math.exp(1.0))) + 1

    def test_g_override(self):
        assert OptimizedLocalHashing(1.0, K, g=8).g == 8

    def test_bad_g_rejected(self):
        with pytest.raises(ValueError):
            OptimizedLocalHashing(1.0, K, g=1)

    def test_reports_structure(self, rng):
        oracle = OptimizedLocalHashing(1.0, K)
        reports = oracle.privatize(np.array([0, 1, 2]), rng)
        assert len(reports) == 3
        assert np.all(reports.buckets >= 0)
        assert np.all(reports.buckets < oracle.g)

    def test_hash_deterministic_in_seed(self):
        oracle = OptimizedLocalHashing(1.0, K)
        seeds = np.array([123456789, 987654321], dtype=np.uint64)
        values = np.array([3, 3], dtype=np.int64)
        a = oracle._hash(seeds, values)
        b = oracle._hash(seeds, values)
        assert np.array_equal(a, b)

    def test_hash_spreads_uniformly(self, rng):
        oracle = OptimizedLocalHashing(1.0, K)
        seeds = rng.integers(0, 2**63 - 1, size=50_000).astype(np.uint64)
        values = np.zeros(50_000, dtype=np.int64)
        buckets = oracle._hash(seeds, values)
        counts = np.bincount(buckets, minlength=oracle.g) / 50_000
        assert np.all(np.abs(counts - 1.0 / oracle.g) < 0.02)

    def test_support_counts_requires_reports_type(self):
        oracle = OptimizedLocalHashing(1.0, K)
        with pytest.raises(TypeError):
            oracle.support_counts(np.zeros((3, K)))

    def test_mismatched_report_arrays_rejected(self):
        from repro.frequency.olh import OLHReports

        with pytest.raises(ValueError):
            OLHReports(seeds=np.zeros(3, dtype=np.uint64),
                       buckets=np.zeros(4, dtype=np.int64))
