"""Sharded ingestion tier: mixed-fleet e2e, routing, backpressure.

These tests drive the v2 (columnar) wire format and the shard/merge
tier end-to-end: a v1 JSON client and a v2 columnar client ingesting
concurrently into the same campaign must land in the same aggregate,
bitwise; a kill-and-resume under a sharded server must match an
uninterrupted run; and a full shard queue must reject retryably (429 +
Retry-After) with nothing charged.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.service import (
    IngestionServer,
    ServiceClient,
    ServiceError,
    SnapshotStore,
    wire,
)
from repro.service.sharding import ShardRing, ShardWorker

SEED = 77
N = 400
DOMAIN = 32


def _protocol():
    return Protocol.frequency(1.0, domain=DOMAIN, oracle="oue")


def _values():
    return np.random.default_rng(4).integers(0, DOMAIN, N)


def _users(n, prefix="u"):
    return [f"{prefix}{i}" for i in range(n)]


@pytest.fixture
def serve():
    running = []

    def _boot(*args, **kwargs):
        server = IngestionServer(*args, **kwargs).run_in_thread()
        running.append(server)
        return server

    yield _boot
    for server in running:
        server.stop()


class TestNegotiation:
    def test_spec_offers_both_versions(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        spec = client.fetch_spec()
        # "wire_version": 1 stays for pre-negotiation clients that
        # equality-check it; the offer list is the new field.
        assert spec["wire_version"] == wire.WIRE_VERSION
        assert spec["wire_versions"] == list(wire.SUPPORTED_WIRE_VERSIONS)

    def test_sdk_negotiates_columnar_by_default(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        assert (
            client.negotiated_wire_version == wire.WIRE_VERSION_COLUMNAR
        )

    def test_forced_v1_sticks_and_submits_json(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port, wire_version=1)
        assert client.negotiated_wire_version == wire.WIRE_VERSION
        client.submit(_values()[:10], users=_users(10), rng=SEED)
        counts = client.healthz()["wire_versions"]
        assert counts == {"1": 1, "2": 0}

    def test_unsupported_forced_version_rejected_locally(self):
        with pytest.raises(ValueError):
            ServiceClient("127.0.0.1", 1, wire_version=3)

    def test_v1_only_server_falls_back(self, serve, monkeypatch):
        # Simulate a pre-negotiation server by stripping the offer
        # list from its /spec response: the SDK must fall back to the
        # single advertised version instead of assuming v2.
        server = serve(_protocol())
        real_request = ServiceClient._request

        def stripped(self, method, path, **kwargs):
            response = real_request(self, method, path, **kwargs)
            if path.startswith("/spec") and isinstance(response, dict):
                response = {
                    k: v
                    for k, v in response.items()
                    if k != "wire_versions"
                }
            return response

        monkeypatch.setattr(ServiceClient, "_request", stripped)
        client = ServiceClient("127.0.0.1", server.port)
        assert client.negotiated_wire_version == wire.WIRE_VERSION
        with pytest.raises(wire.WireFormatError):
            ServiceClient(
                "127.0.0.1",
                server.port,
                wire_version=wire.WIRE_VERSION_COLUMNAR,
            ).fetch_spec()


class TestMixedFleet:
    def test_v1_and_v2_clients_concurrently_bitwise_equal(self, serve):
        """The headline invariant: a mixed v1/v2 fleet ingesting
        concurrently into a sharded campaign reproduces a single local
        ``Protocol.run`` bitwise (frequency counts are integral, so
        arrival order cannot perturb them)."""
        protocol = _protocol()
        values = _values()
        # Encode the whole cohort ONCE with the run seed, then slice
        # the report matrix — absorbing the slices in any order sums
        # to exactly what Protocol.run computes.
        reports = protocol.client().encode_batch(
            values, np.random.default_rng(SEED)
        )
        chunks = np.array_split(np.asarray(reports), 8)
        users = _users(N)
        user_chunks, start = [], 0
        for chunk in chunks:
            user_chunks.append(users[start : start + len(chunk)])
            start += len(chunk)

        server = serve(protocol, shards=3)
        v1 = ServiceClient("127.0.0.1", server.port, wire_version=1)
        v2 = ServiceClient("127.0.0.1", server.port)
        assert v2.negotiated_wire_version == wire.WIRE_VERSION_COLUMNAR

        def drain(client, indices):
            for i in indices:
                client.submit_reports(chunks[i], users=user_chunks[i])

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(drain, v1, range(0, 8, 2)),
                pool.submit(drain, v2, range(1, 8, 2)),
            ]
            for future in futures:
                future.result()

        estimate = v2.estimate()
        np.testing.assert_array_equal(
            np.asarray(estimate),
            np.asarray(protocol.run(values, rng=SEED)),
        )

        health = v2.healthz()
        assert health["reports"] == N
        assert health["wire_versions"] == {"1": 4, "2": 4}
        assert health["shards"]["count"] == 3
        assert len(health["shards"]["queue_depths"]) == 3
        assert sum(health["shards"]["absorbed_batches"]) == 8
        assert health["shards"]["absorb_errors"] == [0, 0, 0]
        # /estimate flushed every shard before answering.
        assert health["shards"]["queue_depths"] == [0, 0, 0]

    def test_columnar_duplicate_detection(self, serve):
        protocol = _protocol()
        server = serve(protocol, lifetime_epsilon=10.0)
        client = ServiceClient("127.0.0.1", server.port)
        reports = protocol.client().encode_batch(
            _values()[:20], np.random.default_rng(SEED)
        )
        first = client.submit_reports(reports, users=_users(20))
        again = client.submit_reports(reports, users=_users(20))
        assert first["accepted"] == 20
        assert again["status"] == "duplicate"
        assert client.healthz()["reports"] == 20

    def test_columnar_invalid_batch_charges_nothing(self, serve):
        # A 1-D frequency batch with an out-of-domain value fails
        # validation BEFORE the ledger charge.
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        assert (
            client.negotiated_wire_version == wire.WIRE_VERSION_COLUMNAR
        )
        with pytest.raises(ServiceError):
            client.submit_reports(
                np.array([DOMAIN + 7]), users=["x1"]
            )
        assert client.healthz()["users_charged"] == 0

    def test_columnar_fingerprint_mismatch_409(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        block = wire.reports_to_columns(np.zeros((2, DOMAIN), dtype=int))
        frame = wire.pack_columns(
            block, "0" * 64, users=["a", "b"], idempotency_key="k"
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST",
                "/report",
                raw_body=frame,
                content_type=wire.COLUMNAR_CONTENT_TYPE,
            )
        assert excinfo.value.status == 409


class TestShardedDurability:
    def _batches(self, protocol, count=6, size=30):
        encoder = protocol.client()
        out = []
        for i in range(count):
            chunk = np.random.default_rng(100 + i).integers(
                0, DOMAIN, size
            )
            out.append(
                (
                    encoder.encode_batch(
                        chunk, np.random.default_rng(200 + i)
                    ),
                    _users(size, prefix=f"b{i}-"),
                )
            )
        return out

    def test_kill_and_resume_sharded_bitwise(self, serve, tmp_path):
        protocol = _protocol()
        batches = self._batches(protocol)

        # Uninterrupted twin: same shard count, same submission order.
        control = serve(protocol, shards=2)
        control_client = ServiceClient("127.0.0.1", control.port)
        for reports, users in batches:
            control_client.submit_reports(reports, users=users)

        first = serve(
            protocol,
            store=SnapshotStore(tmp_path),
            checkpoint_every=2,
            shards=2,
        )
        client = ServiceClient("127.0.0.1", first.port)
        for reports, users in batches[:4]:
            client.submit_reports(reports, users=users)
        first.stop()  # abrupt: crash-equivalent, no final checkpoint

        second = serve(
            protocol,
            store=SnapshotStore(tmp_path),
            checkpoint_every=2,
            shards=2,
        )
        assert second.port != first.port or True  # ports are ephemeral
        resumed = ServiceClient("127.0.0.1", second.port)
        assert resumed.healthz()["resumed_from_snapshot"] is not None
        # Replay everything: checkpointed batches answer as duplicates
        # (same derived idempotency keys), lost ones re-absorb.
        for reports, users in batches:
            resumed.submit_reports(reports, users=users)
        assert resumed.healthz()["duplicates"] > 0

        np.testing.assert_array_equal(
            np.asarray(resumed.estimate()),
            np.asarray(control_client.estimate()),
        )

    def test_resume_refuses_shard_count_mismatch(self, serve, tmp_path):
        protocol = _protocol()
        first = serve(
            protocol,
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
            shards=2,
        )
        client = ServiceClient("127.0.0.1", first.port)
        reports, users = self._batches(protocol, count=1)[0]
        client.submit_reports(reports, users=users)
        first.stop()

        with pytest.raises(ValueError, match="--shards"):
            IngestionServer(
                protocol,
                store=SnapshotStore(tmp_path),
                shards=3,
            )

    def test_single_shard_snapshot_loads_into_sharded_server(
        self, serve, tmp_path
    ):
        # A v1-era (single accumulator) snapshot restores into shard 0
        # of a sharded server; the merge over empty siblings is exact.
        protocol = _protocol()
        batches = self._batches(protocol)
        first = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client = ServiceClient("127.0.0.1", first.port)
        for reports, users in batches[:3]:
            client.submit_reports(reports, users=users)
        first.stop()

        second = serve(
            protocol,
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
            shards=3,
        )
        resumed = ServiceClient("127.0.0.1", second.port)
        for reports, users in batches[3:]:
            resumed.submit_reports(reports, users=users)

        reference = protocol.server()
        for reports, _ in batches:
            reference.absorb(reports)
        np.testing.assert_array_equal(
            np.asarray(resumed.estimate()),
            np.asarray(reference.estimate()),
        )


class TestBackpressure:
    def test_full_shard_queue_rejects_retryably(self):
        # Freeze the workers (stop them so nothing drains), then drive
        # the handler directly: the first batch fills the depth-1
        # queue, the second must bounce with 429/Retry-After and leave
        # the ledger and idempotency set untouched.
        protocol = _protocol()
        server = IngestionServer(protocol, shards=2, shard_queue_depth=1)
        server._stop_workers()
        encoder = protocol.client()

        def envelope(i, key):
            chunk = np.random.default_rng(i).integers(0, DOMAIN, 5)
            reports = encoder.encode_batch(
                chunk, np.random.default_rng(i)
            )
            return wire.pack(
                {
                    "users": _users(5, prefix=f"bp{i}-"),
                    "idempotency_key": key,
                    "reports": wire.encode_reports(reports),
                },
                server.fingerprint,
            )

        # Pick two keys that route to the same shard.
        target = server._ring.route("key-0")
        other = next(
            f"key-{i}"
            for i in range(1, 1000)
            if server._ring.route(f"key-{i}") == target
        )

        status, payload = server._handle_report(envelope(0, "key-0"))
        assert status == 200

        status, payload = server._handle_report(envelope(1, other))
        assert status == 429
        assert payload["error"] == "backpressure"
        assert payload["shard"] == target
        assert payload["retry_after"] >= 1
        # Nothing charged, key not burned: a retry is a fresh attempt.
        assert len(server.ledger.users()) == 5
        assert other not in server.registry.default.seen_keys

    def test_shard_ring_is_deterministic_and_covers_all_shards(self):
        ring = ShardRing(4)
        routes = [ring.route(f"k{i}") for i in range(1000)]
        assert routes == [ring.route(f"k{i}") for i in range(1000)]
        assert set(routes) == {0, 1, 2, 3}
        # Stable across instances (restart-stable routing).
        twin = ShardRing(4)
        assert routes[:50] == [twin.route(f"k{i}") for i in range(50)]

    def test_worker_capacity_and_flush(self):
        class FakeCampaign:
            def __init__(self):
                self.batches = []

            def absorb_shard(self, index, batch, round_=None):
                self.batches.append((index, batch))
                return 1

        worker = ShardWorker(0, queue_depth=2)
        campaign = FakeCampaign()
        worker.submit(campaign, "a")
        worker.submit(campaign, "b")
        assert not worker.has_capacity()
        assert worker.depth() == 2
        worker.start()
        worker.flush()
        assert worker.depth() == 0
        assert worker.absorbed_batches == 2
        assert campaign.batches == [(0, "a"), (0, "b")]
        worker.stop()
        worker.stop()  # idempotent


class TestHealthz:
    def test_fresh_sharded_server_shape(self, serve):
        server = serve(_protocol(), shards=2)
        health = ServiceClient("127.0.0.1", server.port).healthz()
        assert health["wire_versions"] == {"1": 0, "2": 0}
        shards = health["shards"]
        assert shards["count"] == 2
        assert shards["queue_depths"] == [0, 0]
        assert shards["absorbed_batches"] == [0, 0]
        assert shards["absorb_errors"] == [0, 0]

    def test_unsharded_server_reports_single_shard(self, serve):
        server = serve(_protocol())
        health = ServiceClient("127.0.0.1", server.port).healthz()
        assert health["shards"]["count"] == 1
        assert health["shards"]["queue_depths"] == []
