"""Tests for LDP mean + variance (second moment) estimation."""

import numpy as np
import pytest

from repro.core.moments import MomentEstimate, MomentsEstimator


class TestMomentEstimate:
    def test_variance_formula(self):
        est = MomentEstimate(mean=0.5, second_moment=0.35)
        assert est.variance == pytest.approx(0.1)
        assert est.std == pytest.approx(np.sqrt(0.1))

    def test_variance_clipped_at_zero(self):
        est = MomentEstimate(mean=0.9, second_moment=0.5)
        assert est.variance == 0.0


class TestMomentsEstimator:
    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            MomentsEstimator(1.0, strategy="thirds")

    def test_budget_assignment(self):
        assert MomentsEstimator(2.0, strategy="sample").mechanism.epsilon == 2.0
        assert MomentsEstimator(2.0, strategy="split").mechanism.epsilon == 1.0

    def test_square_transform_domain(self):
        t = np.linspace(-1, 1, 101)
        s = MomentsEstimator._square_transform(t)
        assert s.min() >= -1.0 and s.max() <= 1.0
        assert s[0] == 1.0 and s[50] == -1.0  # t=+-1 -> 1, t=0 -> -1

    @pytest.mark.parametrize("strategy", ["sample", "split"])
    def test_report_partitioning(self, strategy, rng):
        estimator = MomentsEstimator(2.0, strategy=strategy)
        mean_reports, square_reports = estimator.privatize(
            rng.uniform(-1, 1, 10_000), rng
        )
        if strategy == "split":
            assert len(mean_reports) == len(square_reports) == 10_000
        else:
            assert len(mean_reports) + len(square_reports) == 10_000
            assert abs(len(mean_reports) - 5_000) < 500

    @pytest.mark.parametrize("strategy", ["sample", "split"])
    @pytest.mark.parametrize("mechanism", ["pm", "hm", "duchi"])
    def test_recovers_moments(self, strategy, mechanism, rng):
        values = np.clip(rng.normal(0.2, 0.35, 200_000), -1, 1)
        estimator = MomentsEstimator(4.0, mechanism, strategy)
        estimate = estimator.collect(values, rng)
        assert estimate.mean == pytest.approx(values.mean(), abs=0.03)
        assert estimate.variance == pytest.approx(values.var(), abs=0.03)

    def test_uniform_variance(self, rng):
        values = rng.uniform(-1, 1, 300_000)
        estimate = MomentsEstimator(4.0).collect(values, rng)
        assert estimate.variance == pytest.approx(1.0 / 3.0, abs=0.03)

    def test_constant_data_zero_variance(self, rng):
        values = np.full(100_000, 0.5)
        estimate = MomentsEstimator(4.0).collect(values, rng)
        assert estimate.variance < 0.03

    def test_accuracy_improves_with_epsilon(self, rng):
        values = np.clip(rng.normal(0.0, 0.3, 60_000), -1, 1)

        def error(eps, seed):
            est = MomentsEstimator(eps).collect(
                values, np.random.default_rng(seed)
            )
            return abs(est.variance - values.var())

        loose = np.mean([error(0.5, s) for s in range(5)])
        tight = np.mean([error(8.0, s) for s in range(5)])
        assert tight < loose

    def test_empty_stream_rejected(self, rng):
        estimator = MomentsEstimator(1.0)
        with pytest.raises(ValueError):
            estimator.estimate(np.array([]), np.array([1.0]))

    def test_out_of_domain_rejected(self, rng):
        with pytest.raises(ValueError):
            MomentsEstimator(1.0).privatize([1.5], rng)
