"""Tests for the per-user privacy budget accountant."""

import pytest

from repro.analysis.accountant import (
    BudgetExceededError,
    PrivacyAccountant,
)


class TestCharging:
    def test_initial_state(self):
        acc = PrivacyAccountant(lifetime_epsilon=4.0)
        assert acc.spent("u1") == 0.0
        assert acc.remaining("u1") == 4.0

    def test_charge_accumulates(self):
        acc = PrivacyAccountant(4.0)
        acc.charge("u1", 1.0, "mean query")
        acc.charge("u1", 2.0, "freq query")
        assert acc.spent("u1") == pytest.approx(3.0)
        assert acc.remaining("u1") == pytest.approx(1.0)

    def test_overdraft_rejected_and_state_unchanged(self):
        acc = PrivacyAccountant(2.0)
        acc.charge("u1", 1.5)
        with pytest.raises(BudgetExceededError):
            acc.charge("u1", 1.0)
        assert acc.spent("u1") == pytest.approx(1.5)

    def test_exact_exhaustion_allowed(self):
        acc = PrivacyAccountant(2.0)
        acc.charge("u1", 2.0)
        assert acc.remaining("u1") == pytest.approx(0.0)
        assert "u1" in acc.exhausted_users()

    def test_users_independent(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("u1", 1.0)
        assert acc.can_charge("u2", 1.0)
        assert not acc.can_charge("u1", 0.5)

    def test_invalid_epsilon_rejected(self):
        acc = PrivacyAccountant(1.0)
        with pytest.raises(ValueError):
            acc.charge("u1", 0.0)
        with pytest.raises(ValueError):
            PrivacyAccountant(-1.0)


class TestGroupCharging:
    def test_only_funded_users_charged(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("u1", 1.0)  # exhausted
        charged = acc.charge_group(["u1", "u2", "u3"], 0.5, "sgd iter 1")
        assert charged == ("u2", "u3")

    def test_sgd_single_participation_pattern(self):
        """The Section V pattern: with lifetime = per-iteration eps,
        every user participates in exactly one iteration."""
        acc = PrivacyAccountant(1.0)
        users = [f"u{i}" for i in range(10)]
        first = acc.charge_group(users, 1.0, "iter 1")
        second = acc.charge_group(users, 1.0, "iter 2")
        assert len(first) == 10
        assert second == ()

    def test_atomic_group_all_funded(self):
        acc = PrivacyAccountant(2.0)
        charged = acc.charge_group(
            ["u1", "u2"], 1.0, "batch", atomic=True
        )
        assert charged == ("u1", "u2")
        assert acc.spent("u1") == pytest.approx(1.0)

    def test_atomic_group_partial_failure_rolls_back(self):
        """A user failing mid-group undoes every charge already made:
        the spent map AND the ledger end exactly as they began."""
        acc = PrivacyAccountant(2.0)
        acc.charge("u1", 1.0, "earlier")
        spent_before = {u: acc.spent(u) for u in ("u1", "u2", "u3")}
        ledger_before = acc.ledger
        # u2 and u3 are funded; u1 fails AFTER both were charged
        # (iteration order is list order), forcing a real rollback.
        with pytest.raises(BudgetExceededError):
            acc.charge_group(
                ["u2", "u3", "u1"], 1.5, "batch", atomic=True
            )
        assert acc.ledger == ledger_before
        for user, spent in spent_before.items():
            assert acc.spent(user) == pytest.approx(spent)
        # The accountant still works normally afterwards.
        assert acc.charge_group(["u2"], 1.5, atomic=True) == ("u2",)

    def test_atomic_group_duplicate_user_rolls_back(self):
        """Multiplicity inside one group: each listed occurrence is a
        charge, so a duplicate can overdraw even when a per-user
        precheck passes — exactly the case rollback must cover."""
        acc = PrivacyAccountant(1.0)
        with pytest.raises(BudgetExceededError):
            acc.charge_group(["dup", "dup"], 0.7, atomic=True)
        assert acc.spent("dup") == 0.0
        assert acc.ledger == ()
        assert acc.users() == ()

    def test_non_atomic_group_keeps_skip_semantics(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("u1", 1.0)
        charged = acc.charge_group(["u1", "u2"], 0.5, atomic=False)
        assert charged == ("u2",)
        assert acc.spent("u2") == pytest.approx(0.5)


class TestLedger:
    def test_ledger_records_everything(self):
        acc = PrivacyAccountant(4.0)
        acc.charge("u1", 1.0, "a")
        acc.charge("u2", 2.0, "b")
        assert len(acc.ledger) == 2
        assert acc.ledger[0].label == "a"
        assert acc.total_spent() == pytest.approx(3.0)

    def test_ledger_is_immutable_view(self):
        acc = PrivacyAccountant(4.0)
        acc.charge("u1", 1.0)
        ledger = acc.ledger
        assert isinstance(ledger, tuple)

    def test_spent_by_label_breakdown(self):
        acc = PrivacyAccountant(4.0)
        acc.charge("u1", 1.0, "campaign-a")
        acc.charge("u1", 0.5, "campaign-b")
        acc.charge("u1", 0.25, "campaign-a")
        acc.charge("u2", 2.0, "campaign-b")
        assert acc.spent_by_label("u1") == {
            "campaign-a": pytest.approx(1.25),
            "campaign-b": pytest.approx(0.5),
        }
        assert acc.spent_by_label("u2") == {
            "campaign-b": pytest.approx(2.0)
        }
        assert acc.spent_by_label("stranger") == {}

    def test_spent_by_label_preserves_first_charge_order(self):
        acc = PrivacyAccountant(4.0)
        acc.charge("u1", 1.0, "z-last-alphabetically")
        acc.charge("u1", 1.0, "a-first-alphabetically")
        assert list(acc.spent_by_label("u1")) == [
            "z-last-alphabetically",
            "a-first-alphabetically",
        ]


class TestSerialization:
    def _populated(self):
        acc = PrivacyAccountant(4.0)
        acc.charge("u1", 1.0, "mean query")
        acc.charge("u1", 0.5, "freq query")
        acc.charge("u2", 4.0, "sgd")
        return acc

    def test_round_trip_preserves_state(self):
        acc = self._populated()
        rebuilt = PrivacyAccountant.from_dict(acc.to_dict())
        assert rebuilt.lifetime_epsilon == acc.lifetime_epsilon
        assert rebuilt.spent("u1") == acc.spent("u1")
        assert rebuilt.spent("u2") == acc.spent("u2")
        assert rebuilt.ledger == acc.ledger
        assert rebuilt.users() == acc.users()

    def test_round_trip_survives_json(self):
        import json

        acc = self._populated()
        rebuilt = PrivacyAccountant.from_dict(
            json.loads(json.dumps(acc.to_dict()))
        )
        assert rebuilt.to_dict() == acc.to_dict()

    def test_rebuilt_accountant_keeps_enforcing(self):
        acc = self._populated()
        rebuilt = PrivacyAccountant.from_dict(acc.to_dict())
        # u2 is exhausted in the original; stays exhausted after reload.
        with pytest.raises(BudgetExceededError):
            rebuilt.charge("u2", 0.5)
        rebuilt.charge("u1", 2.5)  # exactly the remaining budget
        assert rebuilt.remaining("u1") == pytest.approx(0.0)

    def test_empty_accountant_round_trips(self):
        acc = PrivacyAccountant(2.0)
        rebuilt = PrivacyAccountant.from_dict(acc.to_dict())
        assert rebuilt.to_dict() == acc.to_dict()
        assert rebuilt.users() == ()
