"""Tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.plotting import ascii_plot, sparkline
from repro.experiments.results import Row


def _rows():
    return [
        Row("e", "a", 1.0, 1e-2),
        Row("e", "a", 2.0, 1e-3),
        Row("e", "b", 1.0, 1e-1),
        Row("e", "b", 2.0, 1e-2),
    ]


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        chart = ascii_plot(_rows(), title="T", x_label="eps")
        assert "T" in chart
        assert "o = a" in chart
        assert "x = b" in chart

    def test_log_axis_labels(self):
        chart = ascii_plot(_rows())
        assert "1e-1.0" in chart  # max
        assert "1e-3.0" in chart  # min

    def test_linear_axis(self):
        rows = [Row("e", "a", 1.0, 2.0), Row("e", "a", 2.0, 4.0)]
        chart = ascii_plot(rows, log_y=False)
        assert "4" in chart and "2" in chart

    def test_log_rejects_nonpositive(self):
        rows = [Row("e", "a", 1.0, 0.0)]
        with pytest.raises(ValueError):
            ascii_plot(rows, log_y=True)

    def test_empty(self):
        assert "(no data)" in ascii_plot([])

    def test_constant_series_no_crash(self):
        rows = [Row("e", "a", 1.0, 5.0), Row("e", "a", 2.0, 5.0)]
        chart = ascii_plot(rows, log_y=False)
        assert "o = a" in chart

    def test_x_tick_labels_present(self):
        chart = ascii_plot(_rows(), x_label="eps")
        assert "eps" in chart
        assert "1" in chart and "2" in chart

    def test_marker_count_matches_points(self):
        chart = ascii_plot(_rows())
        plot_area = "\n".join(
            line for line in chart.splitlines() if "│" in line
        )
        # Two series x two x-points; markers may overlap only if values
        # coincide, which they don't here.
        assert plot_area.count("o") == 2
        assert plot_area.count("x") == 2


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_shape(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant(self):
        assert sparkline([2, 2, 2]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_log_mode(self):
        line = sparkline([1e-4, 1e-3, 1e-2, 1e-1], log=True)
        assert line == "▁▃▆█"
