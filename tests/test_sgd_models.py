"""Tests for the model wrappers, metrics and cross-validation."""

import numpy as np
import pytest

from repro.sgd.crossval import cross_validate, k_fold_indices
from repro.sgd.metrics import (
    accuracy,
    mean_squared_error,
    misclassification_rate,
)
from repro.sgd.models import (
    LinearRegression,
    LogisticRegression,
    SupportVectorMachine,
)


def _classification_data(rng, n=8_000):
    x = rng.uniform(-1, 1, (n, 3))
    w = np.array([1.0, -0.8, 0.4])
    y = np.where(x @ w + rng.normal(0, 0.1, n) > 0, 1.0, -1.0)
    return x, y


class TestMetrics:
    def test_mse(self):
        assert mean_squared_error([1.0, 3.0], [0.0, 0.0]) == pytest.approx(5.0)

    def test_misclassification(self):
        assert misclassification_rate([1, -1, 1], [1, 1, 1]) == pytest.approx(
            1.0 / 3.0
        )

    def test_accuracy_complement(self):
        assert accuracy([1, -1], [1, 1]) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            misclassification_rate([1], [1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])
        with pytest.raises(ValueError):
            misclassification_rate([], [])


class TestModels:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_fit_returns_self(self, rng):
        x, y = _classification_data(rng, 500)
        model = SupportVectorMachine()
        assert model.fit(x, y, rng) is model

    def test_linear_regression_nonprivate(self, rng):
        x = rng.uniform(-1, 1, (5_000, 3))
        beta = np.array([0.4, -0.2, 0.1])
        y = np.clip(x @ beta + rng.normal(0, 0.05, 5_000), -1, 1)
        model = LinearRegression().fit(x, y, rng)
        assert model.score(x, y) < 0.02

    @pytest.mark.parametrize("cls", [LogisticRegression, SupportVectorMachine])
    def test_classifiers_nonprivate(self, cls, rng):
        x, y = _classification_data(rng)
        model = cls().fit(x, y, rng)
        assert model.score(x, y) < 0.2

    @pytest.mark.parametrize("cls", [LogisticRegression, SupportVectorMachine])
    def test_classifiers_private_beat_chance(self, cls, rng):
        x, y = _classification_data(rng, 30_000)
        model = cls(epsilon=4.0, method="hm").fit(x, y, rng)
        assert model.score(x, y) < 0.42

    def test_logistic_proba(self, rng):
        x, y = _classification_data(rng, 2_000)
        model = LogisticRegression().fit(x, y, rng)
        proba = model.predict_proba(x)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_private_flag_picks_trainer(self):
        from repro.sgd.trainer import LDPSGDTrainer, NonPrivateSGDTrainer

        assert isinstance(LinearRegression().trainer, NonPrivateSGDTrainer)
        assert isinstance(
            LinearRegression(epsilon=1.0).trainer, LDPSGDTrainer
        )

    def test_per_loss_default_eta(self):
        assert LogisticRegression.default_eta > SupportVectorMachine.default_eta
        assert SupportVectorMachine.default_eta > LinearRegression.default_eta


class TestKFold:
    def test_partition(self, rng):
        folds = k_fold_indices(100, 10, rng)
        assert len(folds) == 10
        united = np.concatenate(folds)
        assert sorted(united.tolist()) == list(range(100))

    def test_near_equal_sizes(self, rng):
        folds = k_fold_indices(103, 10, rng)
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_bad_k(self, rng):
        with pytest.raises(ValueError):
            k_fold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            k_fold_indices(3, 5, rng)


class TestCrossValidate:
    def test_score_count(self, rng):
        x, y = _classification_data(rng, 1_000)
        scores = cross_validate(
            lambda: SupportVectorMachine(), x, y, k=5, repeats=2, rng=rng
        )
        assert len(scores) == 10

    def test_scores_reasonable(self, rng):
        x, y = _classification_data(rng, 4_000)
        scores = cross_validate(
            lambda: SupportVectorMachine(), x, y, k=4, rng=rng
        )
        assert all(0.0 <= s <= 0.5 for s in scores)

    def test_xy_mismatch(self, rng):
        with pytest.raises(ValueError):
            cross_validate(
                lambda: SupportVectorMachine(),
                np.zeros((10, 2)),
                np.zeros(9),
                rng=rng,
            )
