"""Tests for the (LDP-)SGD trainers, schedules and helpers."""

import numpy as np
import pytest

from repro.sgd.schedules import constant, inverse_sqrt, inverse_time
from repro.sgd.trainer import (
    LDPSGDTrainer,
    NonPrivateSGDTrainer,
    clip_gradients,
    default_group_size,
)


def _linear_data(rng, n=6_000, p=4, noise=0.05):
    x = rng.uniform(-1, 1, (n, p))
    beta_true = np.array([0.5, -0.3, 0.2, 0.0])
    y = np.clip(x @ beta_true + rng.normal(0, noise, n), -1, 1)
    return x, y, beta_true


def _separable_data(rng, n=6_000, p=4):
    x = rng.uniform(-1, 1, (n, p))
    w = np.array([1.0, -1.0, 0.5, 0.0])
    y = np.where(x @ w > 0, 1.0, -1.0)
    return x, y


class TestSchedules:
    def test_inverse_sqrt_decay(self):
        schedule = inverse_sqrt(1.0)
        assert schedule(1) == 1.0
        assert schedule(4) == pytest.approx(0.5)

    def test_constant(self):
        schedule = constant(0.2)
        assert schedule(1) == schedule(100) == 0.2

    def test_inverse_time(self):
        schedule = inverse_time(1.0, 1.0)
        assert schedule(1) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "factory", [inverse_sqrt, constant, inverse_time]
    )
    def test_t_starts_at_one(self, factory):
        with pytest.raises(ValueError):
            factory()(0)

    def test_bad_eta(self):
        with pytest.raises(ValueError):
            inverse_sqrt(0.0)
        with pytest.raises(ValueError):
            constant(-1.0)
        with pytest.raises(ValueError):
            inverse_time(1.0, 0.0)


class TestHelpers:
    def test_clip_gradients(self):
        out = clip_gradients(np.array([-3.0, 0.5, 2.0]), 1.0)
        assert np.array_equal(out, [-1.0, 0.5, 1.0])

    def test_clip_bound_validated(self):
        with pytest.raises(ValueError):
            clip_gradients(np.zeros(3), 0.0)

    def test_default_group_size_monotone_in_d(self):
        # Small n so the d log d / eps^2 term dominates the n/50 floor.
        assert default_group_size(50, 1.0, 1_000) > default_group_size(
            5, 1.0, 1_000
        )

    def test_default_group_size_shrinks_with_eps(self):
        assert default_group_size(20, 4.0, 1_000) < default_group_size(
            20, 0.5, 1_000
        )

    def test_default_group_size_floor_at_scale(self):
        # At large n the n/50 floor keeps iteration noise manageable.
        assert default_group_size(5, 4.0, 10**6) == 20_000

    def test_default_group_size_capped_at_n(self):
        assert default_group_size(100, 0.1, 500) == 500


class TestNonPrivateTrainer:
    def test_recovers_linear_signal(self, rng):
        x, y, beta_true = _linear_data(rng)
        trainer = NonPrivateSGDTrainer("linear", regularization=0.0,
                                       schedule=inverse_sqrt(0.3))
        beta = trainer.fit(x, y, rng)
        assert np.allclose(beta, beta_true, atol=0.1)

    def test_separable_classification(self, rng):
        x, y = _separable_data(rng)
        trainer = NonPrivateSGDTrainer("svm", schedule=inverse_sqrt(1.0))
        beta = trainer.fit(x, y, rng)
        accuracy = np.mean(np.where(x @ beta >= 0, 1.0, -1.0) == y)
        assert accuracy > 0.95

    def test_binary_labels_validated(self, rng):
        trainer = NonPrivateSGDTrainer("logistic")
        with pytest.raises(ValueError, match="labels"):
            trainer.fit(np.zeros((10, 2)), np.linspace(0, 1, 10), rng)

    def test_history_recorded(self, rng):
        x, y, _ = _linear_data(rng, n=640)
        trainer = NonPrivateSGDTrainer(
            "linear", group_size=64, record_history=True
        )
        trainer.fit(x, y, rng)
        assert trainer.history.iterations == 10
        assert len(trainer.history.betas) == 10
        assert trainer.history.learning_rates[0] > (
            trainer.history.learning_rates[-1]
        )

    def test_empty_x_rejected(self, rng):
        trainer = NonPrivateSGDTrainer("linear")
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 3)), np.zeros(0), rng)

    def test_bad_group_size(self):
        with pytest.raises(ValueError):
            NonPrivateSGDTrainer("linear", group_size=0)

    def test_negative_regularization_rejected(self):
        with pytest.raises(ValueError):
            NonPrivateSGDTrainer("linear", regularization=-0.1)


class TestLDPTrainer:
    @pytest.mark.parametrize("method", ["pm", "hm", "duchi", "laplace"])
    def test_all_methods_run(self, method, rng):
        x, y, _ = _linear_data(rng, n=2_000)
        trainer = LDPSGDTrainer("linear", epsilon=4.0, method=method,
                                group_size=200)
        beta = trainer.fit(x, y, rng)
        assert beta.shape == (4,)
        assert np.all(np.isfinite(beta))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            LDPSGDTrainer("linear", epsilon=1.0, method="exponential")

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError):
            LDPSGDTrainer("linear", epsilon=-1.0)

    def test_bad_clip_bound_rejected(self):
        with pytest.raises(ValueError):
            LDPSGDTrainer("linear", epsilon=1.0, clip_bound=0.0)

    def test_learns_signal_at_large_eps(self, rng):
        x, y, beta_true = _linear_data(rng, n=40_000)
        trainer = LDPSGDTrainer(
            "linear", epsilon=8.0, method="hm", schedule=inverse_sqrt(0.3)
        )
        beta = trainer.fit(x, y, rng)
        # Direction of the solution should align with the truth.
        cosine = beta @ beta_true / (
            np.linalg.norm(beta) * np.linalg.norm(beta_true)
        )
        assert cosine > 0.8

    def test_noisier_at_smaller_eps(self, rng):
        """Final-model quality degrades monotonically-ish with eps; test
        the two extremes to avoid flakiness."""
        x, y, beta_true = _linear_data(rng, n=30_000)

        def error(eps):
            trainer = LDPSGDTrainer("linear", epsilon=eps, method="hm")
            beta = trainer.fit(x, y, np.random.default_rng(5))
            return float(np.linalg.norm(beta - beta_true))

        assert error(8.0) < error(0.2)

    def test_each_user_participates_once(self, rng):
        """n // group iterations exactly — users are never reused."""
        x, y, _ = _linear_data(rng, n=1_000)
        trainer = LDPSGDTrainer(
            "linear",
            epsilon=1.0,
            group_size=300,
            record_history=True,
        )
        trainer.fit(x, y, rng)
        assert trainer.history.iterations == 3  # 1000 // 300

    def test_group_size_default_used(self, rng):
        x, y, _ = _linear_data(rng, n=5_000)
        trainer = LDPSGDTrainer("linear", epsilon=1.0, record_history=True)
        trainer.fit(x, y, rng)
        expected = 5_000 // default_group_size(4, 1.0, 5_000)
        assert trainer.history.iterations == expected

    @pytest.mark.parametrize("method", ["pm", "hm", "duchi", "laplace"])
    def test_refit_with_different_dimension(self, method, rng):
        """Regression: the perturber was cached across fits, so a refit
        on data with a different p crashed pm/hm with a shape error and
        silently kept laplace's old epsilon/p per-coordinate budget."""
        trainer = LDPSGDTrainer(
            "linear", epsilon=4.0, method=method, group_size=200
        )
        x1, y1, _ = _linear_data(rng, n=1_000, p=4)
        assert trainer.fit(x1, y1, rng).shape == (4,)

        x2 = rng.uniform(-1, 1, (1_000, 2))
        y2 = np.clip(x2 @ np.array([0.4, -0.2]), -1, 1)
        beta2 = trainer.fit(x2, y2, rng)
        assert beta2.shape == (2,)
        assert np.all(np.isfinite(beta2))

    def test_refit_rebuilds_laplace_budget(self, rng):
        """The per-coordinate Laplace budget must be epsilon/p for the
        *current* p — keeping the stale value is a privacy-accounting
        bug (refit to smaller p would keep a too-small budget; larger p
        would overspend epsilon)."""
        trainer = LDPSGDTrainer(
            "linear", epsilon=2.0, method="laplace", group_size=200
        )
        x1, y1, _ = _linear_data(rng, n=600, p=4)
        trainer.fit(x1, y1, rng)
        assert trainer._collector.epsilon == pytest.approx(2.0 / 4)

        x2 = rng.uniform(-1, 1, (600, 2))
        y2 = np.clip(x2 @ np.array([0.4, -0.2]), -1, 1)
        trainer.fit(x2, y2, rng)
        assert trainer._collector.epsilon == pytest.approx(2.0 / 2)

    @pytest.mark.parametrize("method", ["pm", "hm"])
    def test_refit_rebuilds_collector_dimension(self, method, rng):
        trainer = LDPSGDTrainer(
            "linear", epsilon=4.0, method=method, group_size=200
        )
        x1, y1, _ = _linear_data(rng, n=600, p=4)
        trainer.fit(x1, y1, rng)
        assert trainer._collector.collector.d == 4

        x2 = rng.uniform(-1, 1, (600, 3))
        y2 = np.clip(x2 @ np.array([0.4, -0.2, 0.1]), -1, 1)
        trainer.fit(x2, y2, rng)
        assert trainer._collector.collector.d == 3

    def test_refit_rebuilds_duchi_dimension(self, rng):
        trainer = LDPSGDTrainer(
            "linear", epsilon=4.0, method="duchi", group_size=200
        )
        x1, y1, _ = _linear_data(rng, n=600, p=4)
        trainer.fit(x1, y1, rng)
        assert trainer._collector.d == 4

        x2 = rng.uniform(-1, 1, (600, 2))
        y2 = np.clip(x2 @ np.array([0.4, -0.2]), -1, 1)
        trainer.fit(x2, y2, rng)
        assert trainer._collector.d == 2

    def test_sharded_gradient_collection_runs(self, rng):
        """num_shards > 1 routes each iteration's collection through the
        sharded runtime and still trains."""
        x, y, _ = _linear_data(rng, n=1_200)
        trainer = LDPSGDTrainer(
            "linear", epsilon=4.0, method="hm", group_size=300,
            num_shards=3, executor="thread", max_workers=2,
        )
        beta = trainer.fit(x, y, rng)
        assert beta.shape == (4,)
        assert np.all(np.isfinite(beta))

    def test_runtime_knobs_validated(self):
        with pytest.raises(ValueError):
            LDPSGDTrainer("linear", epsilon=1.0, num_shards=0)
        with pytest.raises(ValueError):
            LDPSGDTrainer("linear", epsilon=1.0, executor="gpu")

    def test_default_inline_path_matches_pre_runtime_reference(self):
        """With the default knobs the trainer consumes the rng exactly
        as the pre-runtime implementation did, so seeded fits are
        reproducible across versions.  The reference below is the old
        _mean_gradient body verbatim (encode_batch + a fresh
        MultidimMeanAccumulator per iteration)."""
        from repro.protocol.accumulators import MultidimMeanAccumulator
        from repro.sgd.trainer import clip_gradients

        class PreRuntimeTrainer(LDPSGDTrainer):
            def _mean_gradient(self, beta, x, y, gen):
                grads = self._regularized_gradients(beta, x, y)
                clipped = (
                    clip_gradients(grads, self.clip_bound) / self.clip_bound
                )
                p = clipped.shape[1]
                if self._collector is None:
                    self._collector = self._build_perturber(p)
                reports = self._collector.encode_batch(clipped, gen)
                noisy_mean = (
                    MultidimMeanAccumulator(p).absorb(reports).estimate()
                )
                return self.clip_bound * noisy_mean

        rng = np.random.default_rng(8)
        x, y, _ = _linear_data(rng, n=1_000)
        new = LDPSGDTrainer(
            "linear", epsilon=4.0, method="hm", group_size=250
        ).fit(x, y, np.random.default_rng(77))
        reference = PreRuntimeTrainer(
            "linear", epsilon=4.0, method="hm", group_size=250
        ).fit(x, y, np.random.default_rng(77))
        assert np.array_equal(new, reference)

    def test_gradient_clipping_applied(self, rng):
        """With a huge initial residual the raw gradient exceeds 1; the
        perturbed mean gradient must stay bounded by the mechanism's
        output range times d/k."""
        x = np.ones((500, 2))
        y = -np.ones(500)
        trainer = LDPSGDTrainer(
            "linear", epsilon=1.0, method="pm", group_size=500
        )
        beta = trainer.fit(x, y, rng)
        assert np.all(np.isfinite(beta))
