"""Tests for the Section VI-A composition baseline and MixedEstimates."""

import numpy as np
import pytest

from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.multidim import (
    MixedEstimates,
    MixedMultidimCollector,
    SplitCompositionBaseline,
)
from repro.utils.rng import spawn_rngs


def _dataset(n, rng):
    schema = Schema(
        [
            NumericAttribute("a"),
            NumericAttribute("b"),
            CategoricalAttribute("c", 3),
            CategoricalAttribute("d", 5),
        ]
    )
    return Dataset(
        schema=schema,
        columns={
            "a": rng.uniform(-1, 1, n),
            "b": rng.uniform(-0.5, 0.5, n),
            "c": rng.choice(3, size=n, p=[0.5, 0.3, 0.2]),
            "d": rng.choice(5, size=n),
        },
    )


class TestSplitCompositionBaseline:
    def test_budget_split(self, rng):
        ds = _dataset(10, rng)
        base = SplitCompositionBaseline(ds.schema, 4.0, "laplace")
        assert base.per_attribute_budget == pytest.approx(1.0)
        assert base.numeric_budget == pytest.approx(2.0)

    def test_duchi_uses_joint_numeric_budget(self, rng):
        ds = _dataset(10, rng)
        base = SplitCompositionBaseline(ds.schema, 4.0, "duchi")
        assert base._duchi_md is not None
        assert base._duchi_md.epsilon == pytest.approx(2.0)
        assert base._duchi_md.d == 2

    @pytest.mark.parametrize(
        "method", ["laplace", "scdf", "staircase", "duchi", "pm", "hm"]
    )
    def test_unbiased(self, method, rng):
        ds = _dataset(80_000, rng)
        base = SplitCompositionBaseline(ds.schema, 4.0, method)
        est = base.collect(ds, rng)
        truth_means = ds.true_numeric_means()
        truth_freqs = ds.true_categorical_frequencies()
        for name, value in est.means.items():
            assert value == pytest.approx(truth_means[name], abs=0.1)
        for name, freqs in est.frequencies.items():
            assert np.all(np.abs(freqs - truth_freqs[name]) < 0.1)

    def test_schema_mismatch_rejected(self, rng):
        ds = _dataset(100, rng)
        base = SplitCompositionBaseline(ds.schema, 1.0)
        with pytest.raises(ValueError):
            base.collect(ds.select_attributes(["a", "c"]), rng)

    def test_proposed_beats_baseline_on_average(self, rng):
        """The paper's headline empirical claim, in miniature: over
        several runs, the Section IV-C collector's numeric MSE is below
        the Laplace-composition baseline's."""
        ds = _dataset(30_000, rng)
        truth = ds.true_numeric_means()
        eps = 1.0
        ours, theirs = [], []
        for child in spawn_rngs(7, 6):
            ours.append(
                MixedMultidimCollector(ds.schema, eps)
                .collect(ds, child)
                .mean_mse(truth)
            )
            theirs.append(
                SplitCompositionBaseline(ds.schema, eps, "laplace")
                .collect(ds, child)
                .mean_mse(truth)
            )
        assert np.mean(ours) < np.mean(theirs)


class TestMixedEstimates:
    def test_mean_mse(self):
        est = MixedEstimates(means={"a": 0.1, "b": -0.1})
        truth = {"a": 0.0, "b": 0.0}
        assert est.mean_mse(truth) == pytest.approx(0.01)

    def test_frequency_mse(self):
        est = MixedEstimates(
            frequencies={"c": np.array([0.5, 0.5]), "d": np.array([1.0, 0.0])}
        )
        truth = {"c": np.array([0.6, 0.4]), "d": np.array([1.0, 0.0])}
        assert est.frequency_mse(truth) == pytest.approx(
            (0.01 + 0.01 + 0 + 0) / 4
        )

    def test_max_mean_error(self):
        est = MixedEstimates(means={"a": 0.3, "b": -0.1})
        truth = {"a": 0.0, "b": 0.0}
        assert est.max_mean_error(truth) == pytest.approx(0.3)

    def test_missing_truth_raises(self):
        est = MixedEstimates(means={"a": 0.0})
        with pytest.raises(KeyError):
            est.mean_mse({"b": 0.0})

    def test_empty_estimates_raise(self):
        est = MixedEstimates()
        with pytest.raises(ValueError):
            est.mean_mse({})
        with pytest.raises(ValueError):
            est.frequency_mse({})
        with pytest.raises(ValueError):
            est.max_mean_error({})

    def test_frequency_shape_mismatch(self):
        est = MixedEstimates(frequencies={"c": np.array([0.5, 0.5])})
        with pytest.raises(ValueError):
            est.frequency_mse({"c": np.array([0.5, 0.3, 0.2])})

    def test_frequency_missing_attr(self):
        est = MixedEstimates(frequencies={"c": np.array([0.5, 0.5])})
        with pytest.raises(KeyError):
            est.frequency_mse({"x": np.array([0.5, 0.5])})
