"""Unit tests for repro.stream.heavy — top-k and churn detection."""

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.stream import HeavyHitterTracker, WindowConfig
from repro.stream.heavy import top_k


class TestTopK:
    def test_descending_order(self):
        assert top_k([0.1, 0.5, 0.3], k=3) == [1, 2, 0]

    def test_ties_break_by_index(self):
        assert top_k([0.2, 0.5, 0.2, 0.5], k=4) == [1, 3, 0, 2]

    def test_non_positive_excluded(self):
        assert top_k([0.0, -0.1, 0.2], k=3) == [2]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k([0.1], k=0)


class TestHeavyHitterTracker:
    def test_first_observation_has_no_churn(self):
        t = HeavyHitterTracker(k=2)
        h = t.update([0.4, 0.1, 0.3], round_=0)
        assert h.indices == [0, 2]
        assert h.entered == [] and h.exited == []
        assert h.round == 0

    def test_churn_between_rounds(self):
        t = HeavyHitterTracker(k=2)
        t.update([0.4, 0.1, 0.3, 0.0], round_=0)  # top {0, 2}
        h = t.update([0.1, 0.5, 0.05, 0.4], round_=1)  # top {1, 3}
        assert h.indices == [1, 3]
        assert h.entered == [1, 3]
        assert h.exited == [0, 2]

    def test_same_round_refresh_keeps_baseline(self):
        t = HeavyHitterTracker(k=2)
        t.update([0.4, 0.1, 0.3], round_=0)  # baseline will be {0, 2}
        t.update([0.1, 0.5, 0.4], round_=1)  # top {1, 2}
        h = t.update([0.5, 0.1, 0.4], round_=1)  # re-poll, top {0, 2}
        # churn is still measured against round 0's {0, 2}
        assert h.entered == [] and h.exited == []

    def test_rejects_backward_rounds(self):
        t = HeavyHitterTracker(k=2)
        t.update([0.5, 0.1], round_=3)
        with pytest.raises(ValueError):
            t.update([0.5, 0.1], round_=2)

    def test_roundless_updates_advance_baseline(self):
        t = HeavyHitterTracker(k=1)
        t.update([0.9, 0.1])
        h = t.update([0.1, 0.9])
        assert h.entered == [1] and h.exited == [0]

    def test_per_call_k_override(self):
        t = HeavyHitterTracker(k=3)
        h = t.update([0.4, 0.3, 0.2, 0.1], round_=0, k=2)
        assert h.indices == [0, 1] and h.k == 2

    def test_snapshot_round_trip(self):
        t = HeavyHitterTracker(k=2)
        t.update([0.4, 0.1, 0.3], round_=0)
        t.update([0.1, 0.5, 0.4], round_=1)
        clone = HeavyHitterTracker.from_dict(t.to_dict())
        assert clone.to_dict() == t.to_dict()
        # both trackers report identical churn for the next round
        freqs = [0.6, 0.1, 0.2]
        assert clone.update(freqs, round_=2).to_dict() == t.update(
            freqs, round_=2
        ).to_dict()

    def test_view_serializes_to_json_scalars(self):
        t = HeavyHitterTracker(k=2)
        h = t.update(np.array([0.4, 0.1, 0.3]), round_=0)
        payload = h.to_dict()
        assert payload["indices"] == [0, 2]
        assert all(isinstance(f, float) for f in payload["frequencies"])

    def test_k_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterTracker(k=0)


class TestTrackerOverWindowedOracle:
    def test_shift_detected_through_windowed_accumulator(self):
        proto = Protocol.frequency(epsilon=4.0, domain=6, oracle="grr")
        acc = WindowConfig(panes=1).build(proto.server)
        tracker = HeavyHitterTracker(k=2)

        rng = np.random.default_rng(0)
        skew_a = np.concatenate([np.full(400, 0), np.full(400, 1),
                                 rng.integers(0, 6, 100)])
        skew_b = np.concatenate([np.full(400, 4), np.full(400, 5),
                                 rng.integers(0, 6, 100)])

        acc.absorb_round(0, proto.client().encode_batch(
            skew_a, np.random.default_rng(1)
        ))
        h0 = tracker.update(acc.window_estimate(), round_=0)
        assert set(h0.indices) == {0, 1}

        acc.absorb_round(1, proto.client().encode_batch(
            skew_b, np.random.default_rng(2)
        ))
        h1 = tracker.update(acc.window_estimate(1), round_=1)
        assert set(h1.indices) == {4, 5}
        assert h1.entered == [4, 5] and h1.exited == [0, 1]
