"""Tests for frequency-estimate post-processing."""

import numpy as np
import pytest

from repro.frequency.postprocess import (
    METHODS,
    clip_and_normalize,
    least_squares_simplex,
    norm_sub,
    postprocess,
)

RAW_CASES = [
    np.array([0.5, -0.1, 0.4, 0.3]),
    np.array([-0.2, -0.1, 1.4]),
    np.array([0.25, 0.25, 0.25, 0.25]),
    np.array([1.5, -0.5, 0.0]),
    np.array([0.9]),
]

PROJECTIONS = [clip_and_normalize, norm_sub, least_squares_simplex]


class TestSimplexInvariants:
    @pytest.mark.parametrize("raw", RAW_CASES)
    @pytest.mark.parametrize("project", PROJECTIONS)
    def test_output_on_simplex(self, raw, project):
        out = project(raw)
        assert np.all(out >= 0.0)
        assert out.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("project", PROJECTIONS)
    def test_valid_distribution_unchanged(self, project):
        valid = np.array([0.1, 0.2, 0.3, 0.4])
        assert np.allclose(project(valid), valid)

    @pytest.mark.parametrize("project", PROJECTIONS)
    def test_all_negative_input(self, project):
        out = project(np.array([-0.5, -0.1, -0.4]))
        assert np.all(out >= 0.0)
        assert out.sum() == pytest.approx(1.0)

    def test_input_not_mutated(self):
        raw = np.array([0.5, -0.1, 0.6])
        copy = raw.copy()
        norm_sub(raw)
        assert np.array_equal(raw, copy)


class TestLeastSquares:
    def test_is_euclidean_projection(self):
        """No simplex point on a dense grid is closer to the raw vector
        than the computed projection (2-D check)."""
        raw = np.array([0.9, 0.6])
        projected = least_squares_simplex(raw)
        best = np.inf
        for p in np.linspace(0, 1, 201):
            candidate = np.array([p, 1.0 - p])
            best = min(best, float(np.sum((candidate - raw) ** 2)))
        assert np.sum((projected - raw) ** 2) == pytest.approx(best, abs=1e-4)

    def test_norm_sub_matches_least_squares_when_no_clipping_cascades(self):
        raw = np.array([0.6, 0.5, 0.1])  # sums to 1.2, all stay positive
        assert np.allclose(norm_sub(raw), least_squares_simplex(raw))


class TestDispatch:
    def test_registry_contains_all(self):
        assert set(METHODS) == {"clip", "norm-sub", "least-squares", "none"}

    def test_postprocess_dispatch(self):
        raw = np.array([0.5, -0.1, 0.6])
        assert np.allclose(postprocess(raw, "norm-sub"), norm_sub(raw))

    def test_none_passthrough(self):
        raw = np.array([0.5, -0.1, 0.6])
        assert np.allclose(postprocess(raw, "none"), raw)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            postprocess(np.array([1.0]), "bayes")

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            postprocess(np.array([[1.0]]))
        with pytest.raises(ValueError):
            postprocess(np.array([np.nan, 0.5]))


class TestAccuracyGain:
    @pytest.mark.parametrize("method", ["clip", "norm-sub", "least-squares"])
    def test_projection_never_hurts_on_noisy_estimates(self, method, rng):
        """Projection onto a convex set containing the truth cannot move
        the estimate farther from the truth (in L2)."""
        from repro.frequency import OptimizedUnaryEncoding, true_frequencies

        oracle = OptimizedUnaryEncoding(0.5, 8)
        values = rng.choice(8, size=3_000, p=[0.4, 0.2, 0.1, 0.1,
                                              0.08, 0.06, 0.04, 0.02])
        truth = true_frequencies(values, 8)
        raw = oracle.estimate_frequencies(oracle.privatize(values, rng))
        raw_err = float(np.sum((raw - truth) ** 2))
        post_err = float(np.sum((postprocess(raw, method) - truth) ** 2))
        # clip+rescale is not an exact projection, so allow equality
        # within a whisker; the exact projections must not be worse.
        slack = 1.10 if method == "clip" else 1.0 + 1e-12
        assert post_err <= raw_err * slack

    def test_least_squares_strictly_helps_at_small_eps(self, rng):
        from repro.frequency import OptimizedUnaryEncoding, true_frequencies

        oracle = OptimizedUnaryEncoding(0.25, 16)
        values = rng.choice(16, size=2_000)
        truth = true_frequencies(values, 16)
        gains = []
        for _ in range(10):
            raw = oracle.estimate_frequencies(oracle.privatize(values, rng))
            raw_err = float(np.sum((raw - truth) ** 2))
            post_err = float(
                np.sum((least_squares_simplex(raw) - truth) ** 2)
            )
            gains.append(raw_err - post_err)
        assert np.mean(gains) > 0.0
